//! Crash-matrix property test for §3.1's durability claim: "long locks
//! survive system crashes".
//!
//! A fixed workstation script (4 stations check out one robot each, edit,
//! half of them check in) is swept against a matrix of injected crashes —
//! every `CrashPoint` × several seeded journal-append positions. After each
//! crash the server is rebuilt over the same store and recovers from the
//! old journal medium. The invariant: every long lock *acknowledged* before
//! the crash is either fully recovered under its original owner or was
//! cleanly released by an acknowledged check-in — never half-present, never
//! leaked past a full round of post-crash aborts.
//!
//! Knobs: `COLOCK_CRASH_SEED` seeds the position schedule,
//! `COLOCK_RECOVERY_ROUNDS` sets the rounds per crash point.

use colock_core::authorization::{Authorization, Right};
use colock_core::{AccessMode, InstanceTarget, ResourcePath};
use colock_lockmgr::{Journal, TxnId};
use colock_nf2::Value;
use colock_sim::{build_cells_store, CellsConfig, Workstation};
use colock_testkit::{CrashPoint, FaultPlan, Rng};
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::Arc;

const STATIONS: usize = 4;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn server(store: &Arc<colock_storage::Store>) -> (TransactionManager, Arc<Journal<ResourcePath>>) {
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let mgr = TransactionManager::over_store(Arc::clone(store), authz, ProtocolKind::Proposed);
    let journal = Arc::new(Journal::<ResourcePath>::new());
    assert!(mgr.attach_journal(Arc::clone(&journal)));
    (mgr, journal)
}

fn robot(cell: usize) -> InstanceTarget {
    InstanceTarget::object("cells", format!("c{}", cell + 1)).elem("robots", "r1")
}

/// Per-workstation outcome of one scripted run, as seen by the *client*:
/// only operations whose acknowledgement arrived before the crash count.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Outcome {
    /// Checkout acknowledged, no check-in yet: the long lock is durable.
    HoldsLock(TxnId),
    /// Check-in (commit) acknowledged: everything released durably.
    CheckedIn,
    /// The crash hit before any acknowledgement for this station.
    Unacknowledged,
}

struct CellRun {
    outcomes: Vec<Outcome>,
    medium: String,
    appends: u64,
    crashed: bool,
}

/// Runs the fixed script against a fresh server over `store`, with an
/// optional armed fault plan, leaking every open session at the end (the
/// crash). Returns what each station knows plus the surviving medium.
fn run_script(store: &Arc<colock_storage::Store>, plan: Option<FaultPlan>) -> CellRun {
    let (mgr, journal) = server(store);
    if let Some(p) = plan {
        journal.arm(p);
    }
    let mut stations: Vec<Workstation<'_>> =
        (0..STATIONS).map(|i| Workstation::connect(&mgr, format!("ws{i}"))).collect();
    let mut outcomes = vec![Outcome::Unacknowledged; STATIONS];

    'script: {
        for i in 0..STATIONS {
            let ok = stations[i].checkout(&robot(i), AccessMode::Update).is_ok();
            if mgr.journal_crashed() || !ok {
                break 'script;
            }
            // Acked: this station durably holds its long lock (the real
            // session id is filled in at crash time below).
            outcomes[i] = Outcome::HoldsLock(TxnId(0));
            stations[i]
                .edit(&robot(i), |v| {
                    *v.field_mut("trajectory").unwrap() = Value::str(format!("edited-{i}"));
                })
                .unwrap();
        }
        // Half the stations check in before the crash window closes.
        for i in 0..STATIONS / 2 {
            let ok = stations[i].checkin_all().is_ok();
            if mgr.journal_crashed() || !ok {
                outcomes[i] = Outcome::Unacknowledged;
                break 'script;
            }
            outcomes[i] = Outcome::CheckedIn;
        }
    }
    // Crash: leak whatever is still open, then tear the server down.
    for (i, ws) in stations.iter_mut().enumerate() {
        match (ws.crash(), outcomes[i]) {
            (Some(id), Outcome::HoldsLock(_)) => outcomes[i] = Outcome::HoldsLock(id),
            (None, Outcome::HoldsLock(_)) => outcomes[i] = Outcome::Unacknowledged,
            _ => {}
        }
    }
    CellRun {
        outcomes,
        medium: journal.contents(),
        appends: journal.appends(),
        crashed: journal.crashed(),
    }
}

/// Recovers a fresh server from `run`'s medium and checks the invariant.
fn check_recovery(store: &Arc<colock_storage::Store>, run: &CellRun, label: &str) {
    let (mgr, _journal2) = server(store);
    let report = mgr.recover(&run.medium).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(report.dropped_tail <= 1, "{label}: at most the torn record drops");

    for (i, outcome) in run.outcomes.iter().enumerate() {
        match outcome {
            Outcome::HoldsLock(id) => {
                // Durably granted → fully recovered: the owner is back and
                // its X lock still excludes everyone else.
                assert!(report.owners.contains(id), "{label}: ws{i} owner lost");
                let probe = mgr.begin(TxnKind::Short);
                assert!(
                    probe.try_lock(&robot(i), AccessMode::Update).is_err(),
                    "{label}: ws{i}'s recovered lock does not exclude"
                );
                probe.abort().unwrap();
            }
            Outcome::CheckedIn => {
                // Durably released → cleanly gone: lockable immediately.
                let probe = mgr.begin(TxnKind::Short);
                assert!(
                    probe.try_lock(&robot(i), AccessMode::Update).is_ok(),
                    "{label}: ws{i} checked in but its lock survived"
                );
                probe.commit().unwrap();
            }
            Outcome::Unacknowledged => {
                // No ack: either fully recovered or cleanly absent — both
                // legal. The half-present case is caught below: an owner
                // that cannot be resumed or a lock no abort releases.
            }
        }
    }

    // Every recovered owner must be adoptable: resumable and abortable.
    for owner in &report.owners {
        let resumed = mgr
            .resume(*owner)
            .unwrap_or_else(|e| panic!("{label}: {owner:?} not resumable: {e}"));
        resumed.abort().unwrap_or_else(|e| panic!("{label}: {owner:?} abort failed: {e}"));
    }
    // After the final sweep nothing may linger: no leaked locks, no ghosts.
    assert_eq!(mgr.lock_manager().table_size(), 0, "{label}: leaked locks");
    assert_eq!(mgr.active_count(), 0, "{label}: leaked txn states");
    for i in 0..STATIONS {
        let probe = mgr.begin(TxnKind::Short);
        probe
            .try_lock(&robot(i), AccessMode::Update)
            .unwrap_or_else(|e| panic!("{label}: ws{i} target still blocked: {e}"));
        probe.commit().unwrap();
    }
}

#[test]
fn crash_matrix_every_point_every_position_recovers_exactly() {
    let seed = env_u64("COLOCK_CRASH_SEED", 0xC0_10CC);
    let rounds = env_u64("COLOCK_RECOVERY_ROUNDS", 4);

    // Dry run (no fault): learn the append count the script produces, and
    // verify the no-crash control — acked state only, nothing dropped.
    let store = build_cells_store(&CellsConfig::default());
    let dry = run_script(&store, None);
    assert!(!dry.crashed);
    assert!(dry.appends > 0, "script must journal long locks");
    check_recovery(&store, &dry, "control");

    let mut rng = Rng::seed_from_u64(seed);
    for point in CrashPoint::ALL {
        for round in 0..rounds {
            // Fresh store per cell: recovered data must not leak across.
            let store = build_cells_store(&CellsConfig::default());
            let nth = rng.gen_range(1..dry.appends + 1);
            let label = format!("{point}@{nth} round {round}");
            let run = run_script(&store, Some(FaultPlan::crash_at(point, nth)));
            assert!(run.crashed, "{label}: plan must fire within the schedule");
            check_recovery(&store, &run, &label);
        }
    }
}
