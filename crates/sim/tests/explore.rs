//! Tier-1 integration of the interleaving explorer: small, bounded
//! versions of the `stress_explore` scenarios so the gate proves the
//! lock-table yield points, the cooperative scheduler, and the per-schedule
//! certifier replay work together. The unbounded sweep lives in the
//! `stress_explore` harness.

use colock_core::authorization::Authorization;
use colock_core::{AccessMode, InstanceTarget};
use colock_nf2::value::build::{set, tup};
use colock_nf2::Value;
use colock_sim::{build_cells_store, CellsConfig};
use colock_testkit::explore::{explore, Explorable, ExploreConfig};
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn small_cells() -> CellsConfig {
    CellsConfig {
        n_cells: 2,
        c_objects_per_cell: 2,
        robots_per_cell: 1,
        n_effectors: 2,
        effectors_per_robot: 1,
        ..Default::default()
    }
}

fn manager(cfg: &CellsConfig) -> Arc<TransactionManager> {
    Arc::new(TransactionManager::over_store(
        build_cells_store(cfg),
        Authorization::allow_all(),
        ProtocolKind::Proposed,
    ))
}

fn verify_trace(mgr: &TransactionManager, mark: u64) -> Result<(), String> {
    let events = colock_trace::events_since(mark);
    let lint = colock_check::Linter::with_catalog(mgr.store().catalog()).lint(&events);
    if !lint.is_clean() {
        return Err(format!("protocol violations:\n{}", lint.render()));
    }
    let cert = colock_check::Certifier::new().certify(&events);
    if !cert.is_clean() {
        return Err(format!("not serializable:\n{}", cert.render_with_context(&events)));
    }
    Ok(())
}

/// Two writers inserting distinct robots into the same container: every
/// schedule must commit both and certify conflict-serializable.
struct TwoInserters {
    mgr: Option<Arc<TransactionManager>>,
    mark: u64,
}

impl Explorable for TwoInserters {
    fn reset(&mut self) {
        self.mark = colock_trace::current_seq();
        self.mgr = Some(manager(&small_cells()));
    }

    fn threads(&mut self) -> Vec<Box<dyn FnOnce() + Send + 'static>> {
        let mgr = self.mgr.as_ref().expect("reset ran").clone();
        (0..2)
            .map(|w| {
                let mgr = Arc::clone(&mgr);
                Box::new(move || {
                    let container = InstanceTarget::object("cells", "c1").attr("robots");
                    let robot = tup(vec![
                        ("robot_id", Value::str(format!("t-w{w}"))),
                        ("trajectory", Value::str("t")),
                        ("effectors", set(Vec::new())),
                    ]);
                    let t = mgr.begin(TxnKind::Short);
                    t.insert_element(&container, robot).expect("insert");
                    t.commit().expect("commit");
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect()
    }

    fn check(&mut self) -> Result<(), String> {
        let mgr = self.mgr.take().expect("reset ran");
        if mgr.active_count() != 0 {
            return Err("transactions survived".into());
        }
        verify_trace(&mgr, self.mark)
    }

    fn rescue(&self) {
        if let Some(mgr) = &self.mgr {
            mgr.lock_manager().begin_drain();
        }
    }
}

#[test]
fn explored_insert_schedules_certify_clean() {
    colock_trace::enable();
    let cfg = ExploreConfig { max_schedules: 64, ..ExploreConfig::default() };
    let mut scenario = TwoInserters { mgr: None, mark: 0 };
    let report = explore(&cfg, &mut scenario);
    if let Some(f) = &report.failure {
        panic!("schedule failed:\n{f}");
    }
    assert!(report.is_clean(), "{report}");
    assert!(report.distinct_schedules >= 2, "only one schedule explored: {report}");
}

/// Opposite-order X locks: the explorer must reach the deadlock and see it
/// resolved (one victim, one survivor) in every schedule that closes it.
struct OppositeOrder {
    mgr: Option<Arc<TransactionManager>>,
    mark: u64,
    outcomes: Arc<(AtomicU64, AtomicU64)>, // (committed, deadlock aborts)
    deadlock_schedules: u64,
}

impl Explorable for OppositeOrder {
    fn reset(&mut self) {
        self.mark = colock_trace::current_seq();
        self.mgr = Some(manager(&small_cells()));
        self.outcomes.0.store(0, Ordering::Relaxed);
        self.outcomes.1.store(0, Ordering::Relaxed);
    }

    fn threads(&mut self) -> Vec<Box<dyn FnOnce() + Send + 'static>> {
        let mgr = self.mgr.as_ref().expect("reset ran").clone();
        [("c1", "c2"), ("c2", "c1")]
            .into_iter()
            .map(|(first, second)| {
                let mgr = Arc::clone(&mgr);
                let outcomes = Arc::clone(&self.outcomes);
                Box::new(move || {
                    let t = mgr.begin(TxnKind::Short);
                    let a = InstanceTarget::object("cells", first);
                    let b = InstanceTarget::object("cells", second);
                    let locked = t
                        .lock(&a, AccessMode::Update)
                        .and_then(|_| t.lock(&b, AccessMode::Update));
                    match locked {
                        Ok(_) => {
                            t.commit().expect("survivor commit");
                            outcomes.0.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_deadlock() => {
                            let _ = t.abort();
                            outcomes.1.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected lock failure: {e}"),
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect()
    }

    fn check(&mut self) -> Result<(), String> {
        let mgr = self.mgr.take().expect("reset ran");
        let committed = self.outcomes.0.load(Ordering::Relaxed);
        let aborted = self.outcomes.1.load(Ordering::Relaxed);
        if committed + aborted != 2 || committed == 0 {
            return Err(format!("not live: {committed} committed, {aborted} aborted"));
        }
        if aborted > 0 {
            self.deadlock_schedules += 1;
        }
        if mgr.active_count() != 0 {
            return Err("transactions survived".into());
        }
        verify_trace(&mgr, self.mark)
    }

    fn rescue(&self) {
        if let Some(mgr) = &self.mgr {
            mgr.lock_manager().begin_drain();
        }
    }
}

#[test]
fn explored_deadlocks_are_resolved_and_certify_clean() {
    colock_trace::enable();
    let cfg = ExploreConfig { max_schedules: 64, ..ExploreConfig::default() };
    let mut scenario = OppositeOrder {
        mgr: None,
        mark: 0,
        outcomes: Arc::new((AtomicU64::new(0), AtomicU64::new(0))),
        deadlock_schedules: 0,
    };
    let report = explore(&cfg, &mut scenario);
    if let Some(f) = &report.failure {
        panic!("schedule failed:\n{f}");
    }
    assert!(report.is_clean(), "{report}");
    assert!(
        scenario.deadlock_schedules > 0,
        "no explored schedule reached the deadlock: {report}"
    );
}
