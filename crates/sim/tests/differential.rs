//! Differential equivalence harness for the optimistic intent fast path.
//!
//! The same seeded workload is executed twice through the full stack
//! (protocol engine → lock manager → storage): once with the summary-word
//! fast path enabled, once forced down the classic shard-mutex path. The
//! two runs must be *observationally identical* — same commit/abort sets,
//! same read/write history, same final storage state — and both must
//! produce traces the protocol conformance linter accepts, plus summary
//! words that re-derive cleanly from the shard maps. Divergence shrinks the
//! workload (drop scripts, then drop operations) toward a minimal
//! counterexample.
//!
//! The scripted driver is single-threaded and deterministic, so any
//! difference between the runs is the fast path changing an admission
//! decision — exactly the bug class this harness exists to catch.

use colock_check::Linter;
use colock_core::authorization::Authorization;
use colock_core::{InstanceTarget, TargetStep};
use colock_sim::consistency::{run_scripted, History, HOp};
use colock_sim::{build_cells_store, CellsConfig};
use colock_testkit::prop::Shrink;
use colock_testkit::{ensure, ensure_eq, forall, Rng};
use colock_trace as trace;
use colock_txn::{ProtocolKind, TransactionManager};

fn cfg() -> CellsConfig {
    CellsConfig {
        n_cells: 2,
        c_objects_per_cell: 2,
        robots_per_cell: 3,
        n_effectors: 3,
        effectors_per_robot: 2,
        seed: 5,
    }
}

fn random_scripts(seed: u64, workers: usize, ops: usize, c: &CellsConfig) -> Vec<Vec<HOp>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..workers)
        .map(|_| {
            (0..ops)
                .map(|_| {
                    let cell = rng.gen_range(0..c.n_cells);
                    let robot = rng.gen_range(0..c.robots_per_cell);
                    let effector = rng.gen_range(0..c.n_effectors);
                    match rng.gen_range(0..4) {
                        0 => HOp::ReadRobot { cell, robot },
                        1 => HOp::WriteRobot { cell, robot },
                        2 => HOp::WriteEffector { effector },
                        _ => HOp::ReadEffectorViaRobot { cell, robot },
                    }
                })
                .collect()
        })
        .collect()
}

/// A multi-worker workload. Unlike the opaque serializability workloads,
/// this one shrinks: divergence drops whole scripts first, then single
/// operations, homing in on the smallest schedule that still diverges.
#[derive(Debug, Clone)]
struct Workload(Vec<Vec<HOp>>);

impl Shrink for Workload {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for i in 0..self.0.len() {
            let mut v = self.0.clone();
            v.remove(i);
            if !v.is_empty() {
                out.push(Workload(v));
            }
        }
        for i in 0..self.0.len() {
            for j in 0..self.0[i].len() {
                let mut v = self.0.clone();
                v[i].remove(j);
                if v[i].is_empty() {
                    v.remove(i);
                }
                if !v.is_empty() {
                    out.push(Workload(v));
                }
            }
        }
        out
    }
}

/// Everything observable about one run, in comparable form.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    committed: Vec<u64>,
    aborted: Vec<u64>,
    history: String,
    storage: String,
}

fn observe(history: &History, mgr: &TransactionManager) -> Observation {
    let mut committed: Vec<u64> = history.committed.iter().map(|t| t.0).collect();
    let mut aborted: Vec<u64> = history.aborted.iter().map(|t| t.0).collect();
    committed.sort_unstable();
    aborted.sort_unstable();
    Observation {
        committed,
        aborted,
        history: format!("{:?}", history.events),
        storage: storage_fingerprint(mgr),
    }
}

/// Final values of every item the workload can touch: all robot
/// trajectories and all effector tools.
fn storage_fingerprint(mgr: &TransactionManager) -> String {
    use std::fmt::Write;
    let c = cfg();
    let store = mgr.store();
    let mut out = String::new();
    for cell in 0..c.n_cells {
        for robot in 0..c.robots_per_cell {
            let v = store
                .get_at(
                    "cells",
                    &CellsConfig::cell_key(cell),
                    &[
                        TargetStep::elem("robots", CellsConfig::robot_key(robot)),
                        TargetStep::attr("trajectory"),
                    ],
                )
                .expect("robot trajectory");
            let _ = writeln!(out, "cells/{cell}/robots/{robot}/trajectory = {v:?}");
        }
    }
    for e in 0..c.n_effectors {
        let v = store
            .get_at("effectors", &CellsConfig::effector_key(e), &[TargetStep::attr("tool")])
            .expect("effector tool");
        let _ = writeln!(out, "effectors/{e}/tool = {v:?}");
    }
    out
}

/// Runs the workload once on a fresh store with the fast path forced on or
/// off, lints the trace window it produced, and re-derives the summary
/// words. The scripted runs are sequential within the test, so each gets a
/// disjoint `events_since` window of the process-global ring.
fn run_one(w: &Workload, fastpath: bool) -> Result<Observation, String> {
    let mgr = TransactionManager::over_store(
        build_cells_store(&cfg()),
        Authorization::allow_all(),
        ProtocolKind::Proposed,
    );
    mgr.lock_manager().set_fastpath(fastpath);
    trace::enable();
    let mark = trace::current_seq();
    let history = run_scripted(&mgr, w.0.clone());
    let events = trace::events_since(mark);
    let report = Linter::with_catalog(mgr.store().catalog()).lint(&events);
    if !report.violations.is_empty() {
        return Err(format!("fastpath={fastpath}: trace not lint-clean:\n{}", report.render()));
    }
    mgr.lock_manager()
        .check_summary_consistency()
        .map_err(|e| format!("fastpath={fastpath}: summary inconsistent: {e}"))?;
    let stats = mgr.lock_manager().stats().snapshot();
    if stats.intent_acquires != stats.fastpath_hits + stats.fastpath_fallbacks {
        return Err(format!("fastpath={fastpath}: gate identity broken: {stats:?}"));
    }
    if !fastpath && stats.intent_acquires != 0 {
        return Err(format!("disabled gate still counted: {stats:?}"));
    }
    Ok(observe(&history, &mgr))
}

#[test]
fn optimistic_and_pessimistic_paths_are_observationally_equivalent() {
    let c = cfg();
    forall!(cases: 24, |rng| Workload(random_scripts(rng.next_u64(), 4, 4, &c)), |w: &Workload| {
        let optimistic = run_one(w, true)?;
        let pessimistic = run_one(w, false)?;
        ensure_eq!(optimistic.committed, pessimistic.committed, "commit sets diverge");
        ensure_eq!(optimistic.aborted, pessimistic.aborted, "abort sets diverge");
        ensure!(
            optimistic.history == pessimistic.history,
            "histories diverge:\n  fast: {}\n  slow: {}",
            optimistic.history,
            pessimistic.history
        );
        ensure!(
            optimistic.storage == pessimistic.storage,
            "final storage diverges:\n  fast:\n{}\n  slow:\n{}",
            optimistic.storage,
            pessimistic.storage
        );
        Ok(())
    });
}

/// Runs the writer workload, then a quiesced read-only transaction over
/// every item the workload can touch — once through the multiversion
/// overlay, once through the S-locking fallback. Returns the writer-phase
/// observation, the reader-phase results, and the `reads_elided` delta of
/// the reader phase. Both phases must be lint-clean (the snapshot rules
/// check the reader trace: no lock events from "readonly" transactions,
/// no snapshot reads outside them).
fn run_mvcc(w: &Workload, mvcc: bool) -> Result<(Observation, String, u64), String> {
    use std::fmt::Write;
    let mgr = TransactionManager::over_store(
        build_cells_store(&cfg()),
        Authorization::allow_all(),
        ProtocolKind::Proposed,
    );
    mgr.set_mvcc(mvcc);
    trace::enable();
    let mark = trace::current_seq();
    let history = run_scripted(&mgr, w.0.clone());
    let writer_obs = observe(&history, &mgr);

    let c = cfg();
    let before = mgr.lock_manager().stats().snapshot();
    let reader = mgr.begin_readonly();
    let mut results = String::new();
    for cell in 0..c.n_cells {
        for robot in 0..c.robots_per_cell {
            let t = InstanceTarget::object("cells", CellsConfig::cell_key(cell))
                .elem("robots", CellsConfig::robot_key(robot))
                .attr("trajectory");
            let v = reader.snapshot_read(&t).map_err(|e| format!("mvcc={mvcc}: {e}"))?;
            let _ = writeln!(results, "{t} = {v:?}");
        }
    }
    for e in 0..c.n_effectors {
        let t = InstanceTarget::object("effectors", CellsConfig::effector_key(e)).attr("tool");
        let v = reader.snapshot_read(&t).map_err(|e| format!("mvcc={mvcc}: {e}"))?;
        let _ = writeln!(results, "{t} = {v:?}");
    }
    reader.commit().map_err(|e| format!("mvcc={mvcc}: reader commit: {e}"))?;
    let elided = mgr.lock_manager().stats().snapshot().since(&before).reads_elided;

    let events = trace::events_since(mark);
    let report = Linter::with_catalog(mgr.store().catalog()).lint(&events);
    if !report.violations.is_empty() {
        return Err(format!("mvcc={mvcc}: trace not lint-clean:\n{}", report.render()));
    }
    Ok((writer_obs, results, elided))
}

/// The multiversion overlay must be invisible to writers and to reader
/// *results*: seeded workloads with a read-only phase produce identical
/// commit/abort sets, histories, final storage, and reader values whether
/// snapshots or S locks serve the reads. Only the mechanism differs —
/// every overlay read is lock-elided, every fallback read is not.
#[test]
fn mvcc_overlay_and_locking_reads_are_observationally_equivalent() {
    let c = cfg();
    forall!(cases: 16, |rng| Workload(random_scripts(rng.next_u64(), 4, 4, &c)), |w: &Workload| {
        let (on_obs, on_reads, on_elided) = run_mvcc(w, true)?;
        let (off_obs, off_reads, off_elided) = run_mvcc(w, false)?;
        ensure_eq!(on_obs, off_obs, "writer phase diverges under MVCC");
        ensure!(
            on_reads == off_reads,
            "reader results diverge:\n  mvcc:\n{}\n  locking:\n{}",
            on_reads,
            off_reads
        );
        let expected = (cfg().n_cells * cfg().robots_per_cell + cfg().n_effectors) as u64;
        ensure_eq!(on_elided, expected, "every overlay read must elide its lock");
        ensure_eq!(off_elided, 0, "fallback readers must go through the lock table");
        Ok(())
    });
}

#[test]
fn equivalence_holds_under_write_heavy_contention() {
    // Write-heavy single-cell workloads maximize drains, conversions and
    // aborted victims — the paths must still agree event for event.
    let c = CellsConfig { n_cells: 1, ..cfg() };
    forall!(cases: 12, |rng| {
        let mut scripts = random_scripts(rng.next_u64(), 3, 3, &c);
        for s in &mut scripts {
            s.push(HOp::WriteRobot { cell: 0, robot: 0 });
        }
        Workload(scripts)
    }, |w: &Workload| {
        let optimistic = run_one(w, true)?;
        let pessimistic = run_one(w, false)?;
        ensure_eq!(optimistic, pessimistic, "write-heavy divergence");
        Ok(())
    });
}
