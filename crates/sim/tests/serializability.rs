//! Serializability validation: the proposed protocol always produces
//! conflict-serializable histories; the relaxed naive protocol (§3.2.2)
//! provably does not — the paper's inconsistency claim made mechanical.

use colock_core::authorization::Authorization;
use colock_sim::consistency::{run_scripted, HOp, Violation};
use colock_sim::{build_cells_store, CellsConfig};
use colock_txn::{ProtocolKind, TransactionManager};
use colock_testkit::{ensure, forall, Rng};

fn cfg() -> CellsConfig {
    CellsConfig {
        n_cells: 2,
        c_objects_per_cell: 2,
        robots_per_cell: 3,
        n_effectors: 3,
        effectors_per_robot: 2,
        seed: 5,
    }
}

fn manager(protocol: ProtocolKind) -> TransactionManager {
    // Everyone may update everything: the from-the-side writes must be
    // *authorized* — the protocol alone decides whether they are safe.
    TransactionManager::over_store(build_cells_store(&cfg()), Authorization::allow_all(), protocol)
}

/// The hand-crafted §3.2.2 anomaly:
///
/// * T1 reads effector e via robot r1 (S on the robot), then writes robot
///   r1's trajectory;
/// * T2 writes effector e from the side, then reads robot r1.
///
/// Under the relaxed naive protocol the interleaving commits with a
/// precedence cycle T1 → T2 → T1; the proposed protocol's entry-point locks
/// force a serial order.
fn anomaly_scripts() -> Vec<Vec<HOp>> {
    vec![
        vec![
            HOp::ReadEffectorViaRobot { cell: 0, robot: 0 },
            // Spacer on an unrelated robot so T2's read of robot (0,0) lands
            // *before* T1's write of it under round-robin scheduling.
            HOp::ReadRobot { cell: 1, robot: 0 },
            HOp::WriteRobot { cell: 0, robot: 0 },
        ],
        vec![
            // The effector index written is the one robot (0,0) references
            // first — resolved dynamically below.
            HOp::WriteEffector { effector: usize::MAX /* patched */ },
            HOp::ReadRobot { cell: 0, robot: 0 },
        ],
    ]
}

/// Finds which effector robot (cell, robot) references first.
fn first_effector_index(mgr: &TransactionManager, cell: usize, robot: usize) -> usize {
    let v = mgr
        .store()
        .get_at(
            "cells",
            &CellsConfig::cell_key(cell),
            &[colock_core::TargetStep::elem("robots", CellsConfig::robot_key(robot))],
        )
        .unwrap();
    let mut refs = Vec::new();
    v.collect_refs(&mut refs);
    let key = refs[0].key.to_string();
    key.trim_start_matches('e').parse::<usize>().unwrap() - 1
}

#[test]
fn relaxed_naive_produces_a_precedence_cycle() {
    let mgr = manager(ProtocolKind::NaiveRelaxed);
    let mut scripts = anomaly_scripts();
    let e = first_effector_index(&mgr, 0, 0);
    scripts[1][0] = HOp::WriteEffector { effector: e };
    let history = run_scripted(&mgr, scripts);
    assert_eq!(history.committed.len(), 2, "both must commit for the anomaly");
    let err = history.check().unwrap_err();
    assert!(matches!(err, Violation::NotSerializable { .. }), "{err}");
}

#[test]
fn proposed_protocol_serializes_the_same_scripts() {
    let mgr = manager(ProtocolKind::Proposed);
    let mut scripts = anomaly_scripts();
    let e = first_effector_index(&mgr, 0, 0);
    scripts[1][0] = HOp::WriteEffector { effector: e };
    let history = run_scripted(&mgr, scripts);
    assert!(history.check().is_ok(), "proposed must be serializable");
}

#[test]
fn full_naive_dag_also_serializes_the_anomaly() {
    // The all-parents variant detects the conflict (expensively).
    let mgr = manager(ProtocolKind::NaiveDag);
    let mut scripts = anomaly_scripts();
    let e = first_effector_index(&mgr, 0, 0);
    scripts[1][0] = HOp::WriteEffector { effector: e };
    let history = run_scripted(&mgr, scripts);
    assert!(history.check().is_ok());
}

fn random_scripts(seed: u64, workers: usize, txns: usize, ops: usize, c: &CellsConfig) -> Vec<Vec<HOp>> {
    // One long script per worker: several back-to-back transactions are
    // modeled as separate run_scripted calls; here each worker runs ONE
    // transaction of `ops` operations, repeated over `txns` rounds by the
    // caller.
    let _ = txns;
    let mut rng = Rng::seed_from_u64(seed);
    (0..workers)
        .map(|_| {
            (0..ops)
                .map(|_| {
                    let cell = rng.gen_range(0..c.n_cells);
                    let robot = rng.gen_range(0..c.robots_per_cell);
                    let effector = rng.gen_range(0..c.n_effectors);
                    match rng.gen_range(0..4) {
                        0 => HOp::ReadRobot { cell, robot },
                        1 => HOp::WriteRobot { cell, robot },
                        2 => HOp::WriteEffector { effector },
                        _ => HOp::ReadEffectorViaRobot { cell, robot },
                    }
                })
                .collect()
        })
        .collect()
}

/// A full multi-worker workload; opaque to shrinking (replay by seed).
#[derive(Debug, Clone)]
struct Workload(Vec<Vec<HOp>>);

colock_testkit::no_shrink!(Workload);

#[test]
fn proposed_is_serializable_on_random_workloads() {
    let c = cfg();
    forall!(cases: 30, |rng| Workload(random_scripts(rng.next_u64(), 4, 1, 4, &c)), |w: &Workload| {
        let mgr = manager(ProtocolKind::Proposed);
        let history = run_scripted(&mgr, w.0.clone());
        if let Err(v) = history.check() {
            return Err(format!("{v}"));
        }
        Ok(())
    });
}

#[test]
fn whole_object_and_tuple_level_are_serializable_on_random_workloads() {
    let c = cfg();
    forall!(cases: 15, |rng| Workload(random_scripts(rng.next_u64(), 4, 1, 3, &c)), |w: &Workload| {
        for protocol in [ProtocolKind::WholeObject, ProtocolKind::TupleLevel] {
            let mgr = manager(protocol);
            let history = run_scripted(&mgr, w.0.clone());
            if let Err(v) = history.check() {
                return Err(format!("{protocol:?}: {v}"));
            }
        }
        Ok(())
    });
}

#[test]
fn relaxed_naive_fails_some_random_workload() {
    // Over enough seeds the §3.2.2 anomaly appears "in the wild" too.
    let c = cfg();
    let mut violations = 0;
    for seed in 0..60 {
        let mgr = manager(ProtocolKind::NaiveRelaxed);
        let scripts = random_scripts(seed, 4, 1, 4, &c);
        let history = run_scripted(&mgr, scripts);
        if history.check().is_err() {
            violations += 1;
        }
    }
    assert!(violations > 0, "relaxed naive must eventually violate serializability");
}

#[test]
fn aborted_transactions_never_leak_writes() {
    // Deadlock victims in the scripted runner stay aborted; committed
    // readers must never observe their versions (atomicity).
    let c = cfg();
    forall!(cases: 30, |rng| Workload(random_scripts(rng.next_u64(), 4, 1, 4, &c)), |w: &Workload| {
        let mgr = manager(ProtocolKind::Proposed);
        let history = run_scripted(&mgr, w.0.clone());
        match history.check() {
            Ok(()) => {}
            Err(Violation::DirtyRead { .. }) => ensure!(false, "dirty read"),
            Err(Violation::NotSerializable { cycle }) => ensure!(false, "cycle: {cycle:?}"),
        }
        Ok(())
    });
}
