//! Operation mixes: the per-transaction operations drawn by the drivers.

use crate::workload::cells::CellsConfig;
use colock_core::{AccessMode, InstanceTarget};
use colock_nf2::Value;
use colock_testkit::Rng;

/// One operation of a simulated transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Read the c_objects of a cell (Q1 shape).
    ReadParts {
        /// Cell index.
        cell: usize,
    },
    /// Update one robot of a cell (Q2/Q3 shape).
    UpdateRobot {
        /// Cell index.
        cell: usize,
        /// Robot index within the cell.
        robot: usize,
    },
    /// Read one robot.
    ReadRobot {
        /// Cell index.
        cell: usize,
        /// Robot index.
        robot: usize,
    },
    /// Check out a whole cell (long X).
    CheckoutCell {
        /// Cell index.
        cell: usize,
    },
    /// Check out a single robot (long X on the element — only possible with
    /// sub-object granules; coarse protocols widen it to the whole cell).
    CheckoutRobot {
        /// Cell index.
        cell: usize,
        /// Robot index.
        robot: usize,
    },
    /// Read a whole cell.
    ReadCell {
        /// Cell index.
        cell: usize,
    },
    /// Update one effector of the library directly.
    UpdateEffector {
        /// Effector index.
        effector: usize,
    },
    /// Read one effector directly.
    ReadEffector {
        /// Effector index.
        effector: usize,
    },
}

impl Op {
    /// The lock target and access of this operation.
    pub fn target(&self) -> (InstanceTarget, AccessMode) {
        match self {
            Op::ReadParts { cell } => (
                InstanceTarget::object("cells", CellsConfig::cell_key(*cell)).attr("c_objects"),
                AccessMode::Read,
            ),
            Op::UpdateRobot { cell, robot } => (
                InstanceTarget::object("cells", CellsConfig::cell_key(*cell))
                    .elem("robots", CellsConfig::robot_key(*robot)),
                AccessMode::Update,
            ),
            Op::ReadRobot { cell, robot } => (
                InstanceTarget::object("cells", CellsConfig::cell_key(*cell))
                    .elem("robots", CellsConfig::robot_key(*robot)),
                AccessMode::Read,
            ),
            Op::CheckoutCell { cell } | Op::ReadCell { cell } => (
                InstanceTarget::object("cells", CellsConfig::cell_key(*cell)),
                if matches!(self, Op::CheckoutCell { .. }) {
                    AccessMode::Update
                } else {
                    AccessMode::Read
                },
            ),
            Op::CheckoutRobot { cell, robot } => (
                InstanceTarget::object("cells", CellsConfig::cell_key(*cell))
                    .elem("robots", CellsConfig::robot_key(*robot)),
                AccessMode::Update,
            ),
            Op::UpdateEffector { effector } => (
                InstanceTarget::object("effectors", CellsConfig::effector_key(*effector)),
                AccessMode::Update,
            ),
            Op::ReadEffector { effector } => (
                InstanceTarget::object("effectors", CellsConfig::effector_key(*effector)),
                AccessMode::Read,
            ),
        }
    }

    /// The value an updating op writes (None for reads).
    pub fn update_payload(&self, tick: u64) -> Option<(InstanceTarget, Value)> {
        match self {
            Op::UpdateRobot { cell, robot } => Some((
                InstanceTarget::object("cells", CellsConfig::cell_key(*cell))
                    .elem("robots", CellsConfig::robot_key(*robot))
                    .attr("trajectory"),
                Value::str(format!("traj-{tick}")),
            )),
            Op::UpdateEffector { effector } => Some((
                InstanceTarget::object("effectors", CellsConfig::effector_key(*effector))
                    .attr("tool"),
                Value::str(format!("tool-{tick}")),
            )),
            _ => None,
        }
    }
}

/// Relative weights of the operation kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryMix {
    /// Weight of `ReadParts`.
    pub read_parts: u32,
    /// Weight of `UpdateRobot`.
    pub update_robot: u32,
    /// Weight of `ReadRobot`.
    pub read_robot: u32,
    /// Weight of `CheckoutCell`.
    pub checkout_cell: u32,
    /// Weight of `ReadCell`.
    pub read_cell: u32,
    /// Weight of `UpdateEffector`.
    pub update_effector: u32,
    /// Weight of `ReadEffector`.
    pub read_effector: u32,
}

impl QueryMix {
    /// The paper's motivating mix: mostly partial reads and robot updates on
    /// cells, rare library updates ("common data … updated infrequently").
    pub fn engineering() -> Self {
        QueryMix {
            read_parts: 30,
            update_robot: 25,
            read_robot: 25,
            checkout_cell: 5,
            read_cell: 10,
            update_effector: 1,
            read_effector: 4,
        }
    }

    /// Read-only mix.
    pub fn read_only() -> Self {
        QueryMix {
            read_parts: 40,
            update_robot: 0,
            read_robot: 30,
            checkout_cell: 0,
            read_cell: 20,
            update_effector: 0,
            read_effector: 10,
        }
    }

    /// Update-heavy mix (stresses shared data).
    pub fn update_heavy() -> Self {
        QueryMix {
            read_parts: 10,
            update_robot: 50,
            read_robot: 10,
            checkout_cell: 10,
            read_cell: 5,
            update_effector: 10,
            read_effector: 5,
        }
    }

    fn total(&self) -> u32 {
        self.read_parts
            + self.update_robot
            + self.read_robot
            + self.checkout_cell
            + self.read_cell
            + self.update_effector
            + self.read_effector
    }
}

/// Deterministic generator of operations from a mix.
#[derive(Debug)]
pub struct OpGenerator {
    cfg: CellsConfig,
    mix: QueryMix,
    rng: Rng,
    /// Percentage (0–100) of cell-targeting draws redirected to cell 0 (the
    /// "hot" cell). 0 keeps the uniform draw. Models the skewed access the
    /// load generator uses to provoke contention.
    hot_spot_pct: u32,
}

impl OpGenerator {
    /// Creates a generator.
    pub fn new(cfg: CellsConfig, mix: QueryMix, seed: u64) -> Self {
        OpGenerator { cfg, mix, rng: Rng::seed_from_u64(seed), hot_spot_pct: 0 }
    }

    /// Makes `pct` % of cell-targeting operations hit cell 0 instead of a
    /// uniformly drawn cell (hot-spot skew; values > 100 are clamped).
    pub fn with_hot_spot(mut self, pct: u32) -> Self {
        self.hot_spot_pct = pct.min(100);
        self
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let total = self.mix.total().max(1);
        let mut roll = self.rng.gen_range(0..total);
        let mut cell = self.rng.gen_range(0..self.cfg.n_cells.max(1));
        if self.hot_spot_pct > 0 && self.rng.gen_range(0..100) < self.hot_spot_pct {
            cell = 0;
        }
        let robot = self.rng.gen_range(0..self.cfg.robots_per_cell.max(1));
        let effector = self.rng.gen_range(0..self.cfg.n_effectors.max(1));

        let buckets = [
            (self.mix.read_parts, 0u8),
            (self.mix.update_robot, 1),
            (self.mix.read_robot, 2),
            (self.mix.checkout_cell, 3),
            (self.mix.read_cell, 4),
            (self.mix.update_effector, 5),
            (self.mix.read_effector, 6),
        ];
        for (w, kind) in buckets {
            if roll < w {
                return match kind {
                    0 => Op::ReadParts { cell },
                    1 => Op::UpdateRobot { cell, robot },
                    2 => Op::ReadRobot { cell, robot },
                    3 => Op::CheckoutCell { cell },
                    4 => Op::ReadCell { cell },
                    5 => Op::UpdateEffector { effector },
                    _ => Op::ReadEffector { effector },
                };
            }
            roll -= w;
        }
        Op::ReadCell { cell }
    }

    /// Draws a transaction of `len` operations.
    pub fn next_txn(&mut self, len: usize) -> Vec<Op> {
        (0..len).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = CellsConfig::default();
        let a: Vec<Op> =
            OpGenerator::new(cfg, QueryMix::engineering(), 1).next_txn(20);
        let b: Vec<Op> =
            OpGenerator::new(cfg, QueryMix::engineering(), 1).next_txn(20);
        assert_eq!(a, b);
    }

    #[test]
    fn read_only_mix_never_updates() {
        let cfg = CellsConfig::default();
        let mut g = OpGenerator::new(cfg, QueryMix::read_only(), 2);
        for _ in 0..200 {
            let op = g.next_op();
            assert!(
                !matches!(op, Op::UpdateRobot { .. } | Op::UpdateEffector { .. } | Op::CheckoutCell { .. } | Op::CheckoutRobot { .. }),
                "{op:?}"
            );
        }
    }

    #[test]
    fn full_hot_spot_pins_every_cell_draw() {
        let cfg = CellsConfig::default();
        let mut g = OpGenerator::new(cfg, QueryMix::engineering(), 3).with_hot_spot(100);
        for _ in 0..100 {
            match g.next_op() {
                Op::ReadParts { cell }
                | Op::UpdateRobot { cell, .. }
                | Op::ReadRobot { cell, .. }
                | Op::CheckoutCell { cell }
                | Op::CheckoutRobot { cell, .. }
                | Op::ReadCell { cell } => assert_eq!(cell, 0),
                Op::UpdateEffector { .. } | Op::ReadEffector { .. } => {}
            }
        }
    }

    #[test]
    fn targets_are_well_formed() {
        let (t, m) = Op::UpdateRobot { cell: 0, robot: 1 }.target();
        assert_eq!(t.to_string(), "cells[c1].robots[r2]");
        assert_eq!(m, AccessMode::Update);
        let (t, m) = Op::ReadEffector { effector: 2 }.target();
        assert_eq!(t.to_string(), "effectors[e3]");
        assert_eq!(m, AccessMode::Read);
    }

    #[test]
    fn update_payloads_only_for_updates() {
        assert!(Op::UpdateRobot { cell: 0, robot: 0 }.update_payload(1).is_some());
        assert!(Op::ReadCell { cell: 0 }.update_payload(1).is_none());
    }
}
