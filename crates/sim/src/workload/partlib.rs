//! The part-library workload: *nested* common data (§2: "Common data may
//! again contain common data"). Assemblies reference parts; parts reference
//! materials — two levels of inner units, exercising transitive downward
//! propagation.

use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
use colock_nf2::types::shorthand::{self, real_, ref_, str_};
use colock_nf2::value::build::{set, tup};
use colock_nf2::{Catalog, DatabaseSchema, ObjectKey, Value};
use colock_storage::stats::catalog_with_stats;
use colock_storage::Store;
use colock_testkit::Rng;
use std::sync::Arc;

/// Parameters of the part-library database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartLibConfig {
    /// Number of assemblies.
    pub n_assemblies: usize,
    /// Parts referenced per assembly.
    pub parts_per_assembly: usize,
    /// Size of the parts library.
    pub n_parts: usize,
    /// Size of the materials library.
    pub n_materials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PartLibConfig {
    fn default() -> Self {
        PartLibConfig {
            n_assemblies: 8,
            parts_per_assembly: 5,
            n_parts: 20,
            n_materials: 4,
            seed: 7,
        }
    }
}

/// The part-library schema: `assemblies -> parts -> materials`.
pub fn partlib_schema() -> DatabaseSchema {
    DatabaseBuilder::new("plant")
        .segment("design")
        .segment("library")
        .relation(
            RelationBuilder::new("assemblies", "design")
                .attr("asm_id", str_())
                .attr("name", str_())
                .attr("parts", shorthand::set(ref_("parts")))
                .finish(),
        )
        .relation(
            RelationBuilder::new("parts", "library")
                .attr("part_id", str_())
                .attr("weight", real_())
                .attr("material", ref_("materials"))
                .finish(),
        )
        .relation(
            RelationBuilder::new("materials", "library")
                .attr("mat_id", str_())
                .attr("density", real_())
                .finish(),
        )
        .finish()
        .expect("partlib schema")
}

/// Part key by index.
pub fn part_key(i: usize) -> ObjectKey {
    ObjectKey::Str(format!("p{}", i + 1))
}

/// Assembly key by index.
pub fn assembly_key(i: usize) -> ObjectKey {
    ObjectKey::Str(format!("a{}", i + 1))
}

/// Material key by index.
pub fn material_key(i: usize) -> ObjectKey {
    ObjectKey::Str(format!("m{}", i + 1))
}

/// Builds a populated store with measured statistics.
pub fn build_partlib_store(cfg: &PartLibConfig) -> Arc<Store> {
    let base = Arc::new(Catalog::new(partlib_schema()).expect("schema"));
    let staging = Store::new(base);
    let mut rng = Rng::seed_from_u64(cfg.seed);

    for m in 0..cfg.n_materials {
        staging
            .insert(
                "materials",
                tup(vec![
                    ("mat_id", Value::str(material_key(m).to_string())),
                    ("density", Value::Real(1.0 + m as f64)),
                ]),
            )
            .expect("material");
    }
    for p in 0..cfg.n_parts {
        let m = rng.gen_range(0..cfg.n_materials);
        staging
            .insert(
                "parts",
                tup(vec![
                    ("part_id", Value::str(part_key(p).to_string())),
                    ("weight", Value::Real(0.1 * (p + 1) as f64)),
                    ("material", Value::reference("materials", material_key(m).to_string())),
                ]),
            )
            .expect("part");
    }
    for a in 0..cfg.n_assemblies {
        let mut chosen: Vec<usize> = Vec::new();
        while chosen.len() < cfg.parts_per_assembly.min(cfg.n_parts) {
            let p = rng.gen_range(0..cfg.n_parts);
            if !chosen.contains(&p) {
                chosen.push(p);
            }
        }
        staging
            .insert(
                "assemblies",
                tup(vec![
                    ("asm_id", Value::str(assembly_key(a).to_string())),
                    ("name", Value::str(format!("assembly-{a}"))),
                    (
                        "parts",
                        set(chosen
                            .into_iter()
                            .map(|p| Value::reference("parts", part_key(p).to_string()))
                            .collect()),
                    ),
                ]),
            )
            .expect("assembly");
    }

    let catalog = Arc::new(catalog_with_stats(&staging));
    let store = Arc::new(Store::new(catalog));
    for rel in ["materials", "parts", "assemblies"] {
        for (_, v) in staging.snapshot(rel).expect("snapshot").objects() {
            store.insert(rel, v).expect("reinsert");
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::authorization::Authorization;
    use colock_core::{AccessMode, InstanceTarget, ProtocolEngine, ProtocolOptions};
    use colock_lockmgr::{LockManager, LockMode, TxnId};

    #[test]
    fn schema_has_two_levels_of_common_data() {
        let schema = partlib_schema();
        let common: Vec<_> = schema.common_data_relations().iter().map(|r| r.name.clone()).collect();
        assert_eq!(common, vec!["parts", "materials"]);
    }

    #[test]
    fn reading_an_assembly_locks_parts_and_materials() {
        let store = build_partlib_store(&PartLibConfig::default());
        let engine = ProtocolEngine::new(Arc::clone(store.catalog()));
        let lm = LockManager::new();
        let report = engine
            .lock_proposed(
                &lm,
                TxnId(1),
                &*store,
                &Authorization::allow_all(),
                &InstanceTarget::object("assemblies", assembly_key(0)),
                AccessMode::Read,
                ProtocolOptions::default(),
            )
            .unwrap();
        // 5 parts + their (≤5 distinct) materials, all S-locked.
        assert!(report.entry_points_locked >= 6, "{}", report.entry_points_locked);
        let any_material = report
            .acquired
            .iter()
            .any(|(r, m)| r.relation_name() == Some("materials") && *m == LockMode::S && r.object_key().is_some());
        assert!(any_material, "materials entry points locked:\n{}", report.render());
    }

    #[test]
    fn build_deterministic() {
        let a = build_partlib_store(&PartLibConfig::default());
        let b = build_partlib_store(&PartLibConfig::default());
        assert_eq!(
            a.snapshot("assemblies").unwrap().objects(),
            b.snapshot("assemblies").unwrap().objects()
        );
    }
}
