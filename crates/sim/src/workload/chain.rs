//! Reference-chain workload: common data nested to configurable depth.
//!
//! `top → lib1 → lib2 → … → libD`: each relation's objects reference one
//! object of the next level. §5's closing claim — "the deeper complex
//! objects are structured and/or the more abundant common data exist …
//! the higher the benefit of the proposed technique promises to be" — is
//! measured over this workload (experiment E9).

use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
use colock_nf2::types::shorthand::{ref_, str_};
use colock_nf2::value::build::tup;
use colock_nf2::{Catalog, DatabaseSchema, ObjectKey, Value};
use colock_storage::Store;
use std::sync::Arc;

/// Parameters of the chain database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainConfig {
    /// Number of library levels below `top` (depth 0 = disjoint objects).
    pub depth: usize,
    /// Objects per relation.
    pub objects_per_level: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig { depth: 3, objects_per_level: 4 }
    }
}

/// Relation name of level `i` (level 0 is `top`).
pub fn level_relation(i: usize) -> String {
    if i == 0 {
        "top".to_string()
    } else {
        format!("lib{i}")
    }
}

/// Object key `j` of any level.
pub fn level_key(level: usize, j: usize) -> ObjectKey {
    ObjectKey::Str(format!("L{level}o{j}"))
}

/// The chain schema for a given depth.
pub fn chain_schema(cfg: &ChainConfig) -> DatabaseSchema {
    let mut db = DatabaseBuilder::new("chaindb").segment("s");
    for level in (0..=cfg.depth).rev() {
        let name = level_relation(level);
        let mut rel = RelationBuilder::new(&name, "s").attr(format!("{name}_id"), str_());
        rel = rel.attr("payload", str_());
        if level < cfg.depth {
            rel = rel.attr("next", ref_(level_relation(level + 1)));
        }
        db = db.relation(rel.finish());
    }
    db.finish().expect("chain schema valid")
}

/// Builds the populated chain store: object `j` of level `i` references
/// object `j` of level `i+1` (so every chain is `depth` long).
pub fn build_chain_store(cfg: &ChainConfig) -> Arc<Store> {
    let catalog = Arc::new(Catalog::new(chain_schema(cfg)).expect("catalog"));
    let store = Arc::new(Store::new(catalog));
    for level in (0..=cfg.depth).rev() {
        let name = level_relation(level);
        for j in 0..cfg.objects_per_level {
            let mut fields = vec![
                (format!("{name}_id"), Value::str(level_key(level, j).to_string())),
                ("payload".to_string(), Value::str(format!("data-{level}-{j}"))),
            ];
            if level < cfg.depth {
                fields.push((
                    "next".to_string(),
                    Value::reference(level_relation(level + 1), level_key(level + 1, j).to_string()),
                ));
            }
            store
                .insert(&name, tup(fields.iter().map(|(n, v)| (n.as_str(), v.clone())).collect()))
                .expect("insert chain object");
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::authorization::Authorization;
    use colock_core::{AccessMode, InstanceTarget, ProtocolEngine, ProtocolOptions};
    use colock_lockmgr::{LockManager, TxnId};

    #[test]
    fn schema_depth_matches_config() {
        let cfg = ChainConfig { depth: 4, objects_per_level: 2 };
        let schema = chain_schema(&cfg);
        assert_eq!(schema.relations.len(), 5);
        let common: Vec<String> =
            schema.common_data_relations().iter().map(|r| r.name.clone()).collect();
        assert_eq!(common.len(), 4, "{common:?}");
    }

    #[test]
    fn reading_top_locks_the_whole_chain() {
        let cfg = ChainConfig { depth: 3, objects_per_level: 2 };
        let store = build_chain_store(&cfg);
        let engine = ProtocolEngine::new(Arc::clone(store.catalog()));
        let lm = LockManager::new();
        let report = engine
            .lock_proposed(
                &lm,
                TxnId(1),
                &*store,
                &Authorization::allow_all(),
                &InstanceTarget::object("top", level_key(0, 0)),
                AccessMode::Read,
                ProtocolOptions::default(),
            )
            .unwrap();
        // One entry point per level below top.
        assert_eq!(report.entry_points_locked, 3);
    }

    #[test]
    fn depth_zero_is_fully_disjoint() {
        let cfg = ChainConfig { depth: 0, objects_per_level: 3 };
        let store = build_chain_store(&cfg);
        assert!(store.catalog().schema().common_data_relations().is_empty());
    }
}
