//! Workload generators.

pub mod cells;
pub mod chain;
pub mod mix;
pub mod partlib;
