//! The manufacturing-cells workload (Fig. 1): cells with c_objects and
//! robots; robots share effectors from a library ("one effector may be used
//! (shared) by different robots", §2).

use colock_core::fixtures::fig1_schema;
use colock_nf2::value::build::{list, set, tup};
use colock_nf2::{Catalog, ObjectKey, Value};
use colock_storage::stats::catalog_with_stats;
use colock_storage::Store;
use colock_testkit::Rng;
use std::sync::Arc;

/// Parameters of the cells/effectors database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellsConfig {
    /// Number of cells.
    pub n_cells: usize,
    /// c_objects per cell (the paper: "one cell may contain hundreds").
    pub c_objects_per_cell: usize,
    /// Robots per cell.
    pub robots_per_cell: usize,
    /// Size of the effectors library.
    pub n_effectors: usize,
    /// Effector references per robot (sharing degree rises as
    /// `n_cells * robots_per_cell * effectors_per_robot / n_effectors`).
    pub effectors_per_robot: usize,
    /// RNG seed for reference assignment.
    pub seed: u64,
}

impl Default for CellsConfig {
    fn default() -> Self {
        CellsConfig {
            n_cells: 4,
            c_objects_per_cell: 50,
            robots_per_cell: 4,
            n_effectors: 8,
            effectors_per_robot: 2,
            seed: 42,
        }
    }
}

impl CellsConfig {
    /// Average number of robots sharing one effector.
    pub fn sharing_degree(&self) -> f64 {
        (self.n_cells * self.robots_per_cell * self.effectors_per_robot) as f64
            / self.n_effectors.max(1) as f64
    }

    /// Cell key by index.
    pub fn cell_key(i: usize) -> ObjectKey {
        ObjectKey::Str(format!("c{}", i + 1))
    }

    /// Robot key by index (robot ids are per-cell: `r1`, `r2`, …).
    pub fn robot_key(i: usize) -> ObjectKey {
        ObjectKey::Str(format!("r{}", i + 1))
    }

    /// Effector key by index.
    pub fn effector_key(i: usize) -> ObjectKey {
        ObjectKey::Str(format!("e{}", i + 1))
    }
}

/// Builds a populated store (with measured catalog statistics) for the
/// configuration. Deterministic for a given seed.
pub fn build_cells_store(cfg: &CellsConfig) -> Arc<Store> {
    let base = Arc::new(Catalog::new(fig1_schema()).expect("fig1 schema"));
    let staging = Store::new(base);
    let mut rng = Rng::seed_from_u64(cfg.seed);

    for e in 0..cfg.n_effectors {
        staging
            .insert(
                "effectors",
                tup(vec![
                    ("eff_id", Value::str(CellsConfig::effector_key(e).to_string())),
                    ("tool", Value::str(format!("tool-{e}"))),
                ]),
            )
            .expect("effector insert");
    }
    for c in 0..cfg.n_cells {
        let cell_id = CellsConfig::cell_key(c).to_string();
        let c_objects: Vec<Value> = (0..cfg.c_objects_per_cell)
            .map(|o| {
                tup(vec![
                    ("obj_id", Value::str(format!("{cell_id}-o{o}"))),
                    ("obj_name", Value::str(format!("part-{o}"))),
                ])
            })
            .collect();
        let robots: Vec<Value> = (0..cfg.robots_per_cell)
            .map(|r| {
                let mut chosen: Vec<usize> = Vec::new();
                while chosen.len() < cfg.effectors_per_robot.min(cfg.n_effectors) {
                    let e = rng.gen_range(0..cfg.n_effectors);
                    if !chosen.contains(&e) {
                        chosen.push(e);
                    }
                }
                tup(vec![
                    ("robot_id", Value::str(CellsConfig::robot_key(r).to_string())),
                    ("trajectory", Value::str(format!("traj-{cell_id}-r{r}"))),
                    (
                        "effectors",
                        set(chosen
                            .into_iter()
                            .map(|e| {
                                Value::reference(
                                    "effectors",
                                    CellsConfig::effector_key(e).to_string(),
                                )
                            })
                            .collect()),
                    ),
                ])
            })
            .collect();
        staging
            .insert(
                "cells",
                tup(vec![
                    ("cell_id", Value::str(cell_id)),
                    ("c_objects", set(c_objects)),
                    ("robots", list(robots)),
                ]),
            )
            .expect("cell insert");
    }

    // Rebuild under a stats-bearing catalog so the §4.5 optimizer sees real
    // cardinalities.
    let catalog = Arc::new(catalog_with_stats(&staging));
    let store = Arc::new(Store::new(catalog));
    for rel in ["effectors", "cells"] {
        for (_, v) in staging.snapshot(rel).expect("snapshot").objects() {
            store.insert(rel, v).expect("reinsert");
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let cfg = CellsConfig::default();
        let a = build_cells_store(&cfg);
        let b = build_cells_store(&cfg);
        assert_eq!(
            a.snapshot("cells").unwrap().objects(),
            b.snapshot("cells").unwrap().objects()
        );
    }

    #[test]
    fn cardinalities_match_config() {
        let cfg = CellsConfig { n_cells: 3, c_objects_per_cell: 7, ..Default::default() };
        let s = build_cells_store(&cfg);
        assert_eq!(s.len("cells").unwrap(), 3);
        assert_eq!(s.len("effectors").unwrap(), cfg.n_effectors);
        let cat = s.catalog();
        assert_eq!(cat.relation_stats("cells").cardinality, 3);
        let c_objects = cat
            .estimated_instances("cells", &colock_nf2::AttrPath::parse("c_objects"))
            .unwrap();
        assert_eq!(c_objects, 7.0);
    }

    #[test]
    fn sharing_degree_formula() {
        let cfg = CellsConfig {
            n_cells: 4,
            robots_per_cell: 4,
            effectors_per_robot: 2,
            n_effectors: 8,
            ..Default::default()
        };
        assert_eq!(cfg.sharing_degree(), 4.0);
    }

    #[test]
    fn every_robot_has_distinct_effectors() {
        let cfg = CellsConfig::default();
        let s = build_cells_store(&cfg);
        for (_, cell) in s.snapshot("cells").unwrap().objects() {
            for robot in cell.field("robots").unwrap().elements().unwrap() {
                let effs = robot.field("effectors").unwrap().elements().unwrap();
                let mut keys: Vec<String> = effs.iter().map(|e| e.to_string()).collect();
                keys.sort_unstable();
                keys.dedup();
                assert_eq!(keys.len(), cfg.effectors_per_robot);
            }
        }
    }
}
