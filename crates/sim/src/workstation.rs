//! Workstation–server check-out/check-in (§1).
//!
//! "Different users or user groups may check-out complex objects of a
//! central database onto workstations. Data which are checked out can be
//! regarded (at least temporarily) as private, local databases. A check-in
//! back into the central database may be done for data which have been
//! changed on a workstation." This module models exactly that: a
//! [`Workstation`] runs one long transaction against the server
//! (a [`TransactionManager`]), keeps private copies of everything it checked
//! out, edits them locally, and checks the changes back in atomically.
//! The long locks guarantee the private copies stay in a "well-known state"
//! with the central database throughout.

use colock_core::{AccessMode, InstanceTarget};
use colock_lockmgr::TxnId;
use colock_nf2::Value;
use colock_txn::{Result, Transaction, TransactionManager, TxnError, TxnKind};
use std::collections::HashMap;

/// A workstation with a private local database of checked-out subobjects.
pub struct Workstation<'m> {
    server: &'m TransactionManager,
    name: String,
    session: Option<Transaction<'m>>,
    private: HashMap<String, (InstanceTarget, Value, AccessMode)>,
}

impl<'m> Workstation<'m> {
    /// Connects a named workstation to the server.
    pub fn connect(server: &'m TransactionManager, name: impl Into<String>) -> Self {
        Workstation { server, name: name.into(), session: None, private: HashMap::new() }
    }

    /// The workstation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of checked-out subobjects in the private database.
    pub fn private_size(&self) -> usize {
        self.private.len()
    }

    fn session(&mut self) -> &Transaction<'m> {
        if self.session.is_none() {
            self.session = Some(self.server.begin(TxnKind::Long));
        }
        self.session.as_ref().expect("session just created")
    }

    /// Checks out a subobject: takes a long lock (S for read, X for update)
    /// and copies the data into the private database.
    pub fn checkout(&mut self, target: &InstanceTarget, access: AccessMode) -> Result<&Value> {
        let txn = self.session();
        let value = txn.checkout(target, access)?;
        let key = target.to_string();
        self.private.insert(key.clone(), (target.clone(), value, access));
        Ok(&self.private[&key].1)
    }

    /// Reads a private copy (no server round-trip).
    pub fn local(&self, target: &InstanceTarget) -> Option<&Value> {
        self.private.get(&target.to_string()).map(|(_, v, _)| v)
    }

    /// Edits a private copy in place. Fails if the target was not checked
    /// out for update.
    pub fn edit(
        &mut self,
        target: &InstanceTarget,
        f: impl FnOnce(&mut Value),
    ) -> Result<()> {
        let entry = self
            .private
            .get_mut(&target.to_string())
            .ok_or_else(|| TxnError::NotCheckedOut(target.to_string()))?;
        if entry.2 != AccessMode::Update {
            return Err(TxnError::NotCheckedOut(format!(
                "{target} was checked out read-only"
            )));
        }
        f(&mut entry.1);
        Ok(())
    }

    /// Checks all modified subobjects back into the central database and
    /// commits the session, releasing the long locks. Returns the number of
    /// subobjects written back.
    pub fn checkin_all(&mut self) -> Result<usize> {
        let Some(txn) = self.session.take() else {
            return Ok(0);
        };
        let mut written = 0;
        for (_, (target, value, access)) in self.private.drain() {
            if access == AccessMode::Update {
                txn.checkin(&target, value)?;
                written += 1;
            }
        }
        txn.commit()?;
        Ok(written)
    }

    /// Abandons the session: private copies are discarded, nothing reaches
    /// the central database, all locks are released.
    pub fn abandon(&mut self) -> Result<()> {
        self.private.clear();
        if let Some(txn) = self.session.take() {
            txn.abort()?;
        }
        Ok(())
    }

    /// Whether a session (long transaction) is currently open.
    pub fn has_session(&self) -> bool {
        self.session.is_some()
    }

    /// Simulates a workstation crash: the private database vanishes and the
    /// open session is leaked *without* releasing its long locks — they stay
    /// held on the server, which is exactly the state
    /// `TransactionManager::recover` re-adopts after a server restart.
    /// Returns the leaked session's id, or `None` if no session was open.
    pub fn crash(&mut self) -> Option<TxnId> {
        self.private.clear();
        self.session.take().map(|txn| {
            let id = txn.id();
            txn.leak();
            id
        })
    }

    /// Reconnects to a (possibly rebuilt) server and resumes a crashed
    /// session by id. The private database starts empty — the local copies
    /// died with the crash — but the session's long locks are still held,
    /// so every target can be re-read in the same well-known state.
    pub fn restart(
        server: &'m TransactionManager,
        name: impl Into<String>,
        session: TxnId,
    ) -> Result<Self> {
        let txn = server.resume(session)?;
        Ok(Workstation {
            server,
            name: name.into(),
            session: Some(txn),
            private: HashMap::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::cells::{build_cells_store, CellsConfig};
    use colock_core::authorization::{Authorization, Right};
    use colock_nf2::Value;
    use colock_txn::ProtocolKind;

    fn server() -> TransactionManager {
        let store = build_cells_store(&CellsConfig::default());
        let mut authz = Authorization::allow_all();
        authz.set_relation_default("effectors", Right::Read);
        TransactionManager::over_store(store, authz, ProtocolKind::Proposed)
    }

    fn robot(cell: &str, robot: &str) -> InstanceTarget {
        InstanceTarget::object("cells", cell).elem("robots", robot)
    }

    #[test]
    fn checkout_edit_checkin_roundtrip() {
        let srv = server();
        let mut ws = Workstation::connect(&srv, "ws1");
        ws.checkout(&robot("c1", "r1"), AccessMode::Update).unwrap();
        ws.edit(&robot("c1", "r1"), |v| {
            *v.field_mut("trajectory").unwrap() = Value::str("edited-on-ws1");
        })
        .unwrap();
        // The central database still shows the old value.
        let central = srv
            .store()
            .get_at(
                "cells",
                &colock_nf2::ObjectKey::from("c1"),
                &robot("c1", "r1").steps,
            )
            .unwrap();
        assert_ne!(central.field("trajectory"), Some(&Value::str("edited-on-ws1")));

        assert_eq!(ws.checkin_all().unwrap(), 1);
        let central = srv
            .store()
            .get_at(
                "cells",
                &colock_nf2::ObjectKey::from("c1"),
                &robot("c1", "r1").steps,
            )
            .unwrap();
        assert_eq!(central.field("trajectory"), Some(&Value::str("edited-on-ws1")));
        assert!(!ws.has_session());
        assert_eq!(srv.lock_manager().table_size(), 0);
    }

    #[test]
    fn two_workstations_on_different_robots_work_in_parallel() {
        let srv = server();
        let mut ws1 = Workstation::connect(&srv, "ws1");
        let mut ws2 = Workstation::connect(&srv, "ws2");
        ws1.checkout(&robot("c1", "r1"), AccessMode::Update).unwrap();
        ws2.checkout(&robot("c1", "r2"), AccessMode::Update).unwrap();
        ws1.edit(&robot("c1", "r1"), |v| {
            *v.field_mut("trajectory").unwrap() = Value::str("a");
        })
        .unwrap();
        ws2.edit(&robot("c1", "r2"), |v| {
            *v.field_mut("trajectory").unwrap() = Value::str("b");
        })
        .unwrap();
        assert_eq!(ws1.checkin_all().unwrap(), 1);
        assert_eq!(ws2.checkin_all().unwrap(), 1);
    }

    #[test]
    fn abandon_discards_local_edits() {
        let srv = server();
        let mut ws = Workstation::connect(&srv, "ws1");
        ws.checkout(&robot("c1", "r1"), AccessMode::Update).unwrap();
        ws.edit(&robot("c1", "r1"), |v| {
            *v.field_mut("trajectory").unwrap() = Value::str("never-lands");
        })
        .unwrap();
        ws.abandon().unwrap();
        assert_eq!(ws.private_size(), 0);
        let central = srv
            .store()
            .get_at(
                "cells",
                &colock_nf2::ObjectKey::from("c1"),
                &robot("c1", "r1").steps,
            )
            .unwrap();
        assert_ne!(central.field("trajectory"), Some(&Value::str("never-lands")));
        assert_eq!(srv.lock_manager().table_size(), 0);
    }

    #[test]
    fn read_only_checkout_cannot_be_edited() {
        let srv = server();
        let mut ws = Workstation::connect(&srv, "ws1");
        ws.checkout(&robot("c1", "r1"), AccessMode::Read).unwrap();
        let err = ws.edit(&robot("c1", "r1"), |_| {}).unwrap_err();
        assert!(matches!(err, TxnError::NotCheckedOut(_)));
        // Read-only checkouts are not written back.
        assert_eq!(ws.checkin_all().unwrap(), 0);
    }

    #[test]
    fn local_reads_do_not_touch_the_server() {
        let srv = server();
        let mut ws = Workstation::connect(&srv, "ws1");
        ws.checkout(&robot("c1", "r1"), AccessMode::Read).unwrap();
        let before = srv.lock_manager().stats().snapshot().requests;
        for _ in 0..10 {
            assert!(ws.local(&robot("c1", "r1")).is_some());
        }
        assert!(ws.local(&robot("c1", "r2")).is_none());
        assert_eq!(srv.lock_manager().stats().snapshot().requests, before);
        ws.abandon().unwrap();
    }

    #[test]
    fn crash_keeps_locks_and_restart_resumes_the_session() {
        let srv = server();
        let mut ws = Workstation::connect(&srv, "ws1");
        ws.checkout(&robot("c1", "r1"), AccessMode::Update).unwrap();
        let id = ws.crash().expect("session was open");
        assert!(!ws.has_session());
        assert_eq!(ws.private_size(), 0);
        // The long locks survived the workstation crash on the live server.
        let probe = srv.begin(TxnKind::Short);
        assert!(probe.try_lock(&robot("c1", "r1"), AccessMode::Update).is_err());
        probe.abort().unwrap();
        // A rebooted workstation resumes the session and releases cleanly.
        let mut ws2 = Workstation::restart(&srv, "ws1-rebooted", id).unwrap();
        assert!(ws2.has_session());
        ws2.abandon().unwrap();
        assert_eq!(srv.lock_manager().table_size(), 0);
    }

    #[test]
    fn conflicting_checkout_blocks_until_checkin() {
        let srv = server();
        let mut ws1 = Workstation::connect(&srv, "ws1");
        ws1.checkout(&robot("c1", "r1"), AccessMode::Update).unwrap();
        // A second station cannot check out the same robot (try-lock via a
        // short probe transaction).
        let probe = srv.begin(TxnKind::Short);
        assert!(probe.try_lock(&robot("c1", "r1"), AccessMode::Update).is_err());
        probe.abort().unwrap();
        ws1.checkin_all().unwrap();
        let probe = srv.begin(TxnKind::Short);
        assert!(probe.try_lock(&robot("c1", "r1"), AccessMode::Update).is_ok());
        probe.commit().unwrap();
    }
}
