//! Measured quantities and report formatting.

use colock_lockmgr::StatsSnapshot;
use colock_trace::WaitHistogram;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate metrics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Committed transactions.
    pub committed: u64,
    /// Transactions aborted as deadlock victims (and retried).
    pub deadlock_aborts: u64,
    /// Ticks (or lock attempts) spent blocked.
    pub blocked_ticks: u64,
    /// Total ticks the run took (tick driver) — lower = more concurrency.
    pub total_ticks: u64,
    /// Wall-clock milliseconds (thread driver).
    pub wall_ms: u64,
    /// Lock-manager counter deltas for the run.
    pub locks: StatsSnapshot,
    /// Complex objects visited by reverse scans.
    pub scan_visits: u64,
    /// Per-resource wait-time histograms, keyed by resource path. Populated
    /// by the thread driver only when tracing is enabled (empty otherwise).
    pub wait_hists: BTreeMap<String, WaitHistogram>,
    /// Wait time of read-only transactions' individual reads. In the tick
    /// driver the unit is *ticks spent blocked per read* (0 for every
    /// snapshot read — they cannot block); in the thread driver it is
    /// microseconds of wall clock per read.
    pub reader_waits: WaitHistogram,
}

impl Metrics {
    /// Committed transactions per 1000 ticks (tick driver throughput).
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.total_ticks == 0 {
            0.0
        } else {
            self.committed as f64 * 1000.0 / self.total_ticks as f64
        }
    }

    /// Transaction attempts: committed plus deadlock-aborted (each abort is
    /// retried as a fresh attempt, so the sum counts every execution).
    pub fn attempts(&self) -> u64 {
        self.committed + self.deadlock_aborts
    }

    /// Lock requests per committed transaction (administration overhead as
    /// the application sees it: the price of one unit of useful work).
    ///
    /// The numerator includes requests made by aborted-and-retried attempts,
    /// so under deadlock storms this figure is inflated by doomed work; use
    /// [`Metrics::locks_per_attempt`] for the per-execution cost.
    pub fn locks_per_txn(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.locks.requests as f64 / self.committed as f64
        }
    }

    /// Lock requests per transaction *attempt* (committed or aborted), i.e.
    /// the protocol's administration overhead per execution, unskewed by
    /// retries.
    ///
    /// ```
    /// use colock_sim::Metrics;
    /// let mut m = Metrics { committed: 10, deadlock_aborts: 10, ..Default::default() };
    /// m.locks.requests = 100;
    /// assert_eq!(m.attempts(), 20);
    /// assert_eq!(m.locks_per_txn(), 10.0);     // inflated by doomed retries
    /// assert_eq!(m.locks_per_attempt(), 5.0);  // true per-execution cost
    /// ```
    pub fn locks_per_attempt(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            0.0
        } else {
            self.locks.requests as f64 / attempts as f64
        }
    }

    /// Fraction of lock attempts that blocked.
    pub fn block_rate(&self) -> f64 {
        let attempts = self.locks.requests.max(1);
        self.blocked_ticks as f64 / attempts as f64
    }

    /// One merged wait histogram over all resources.
    pub fn total_wait_hist(&self) -> WaitHistogram {
        let mut total = WaitHistogram::default();
        for h in self.wait_hists.values() {
            total.merge(h);
        }
        total
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "committed={} deadlocks={} attempts={} blocked={} ticks={} locks/txn={:.1} locks/attempt={:.1} conflict_tests={} max_table={} scans={}",
            self.committed,
            self.deadlock_aborts,
            self.attempts(),
            self.blocked_ticks,
            self.total_ticks,
            self.locks_per_txn(),
            self.locks_per_attempt(),
            self.locks.conflict_tests,
            self.locks.max_table_entries,
            self.scan_visits,
        )
    }
}

/// Renders aligned result tables for the experiment binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_rates() {
        let m = Metrics { committed: 50, total_ticks: 1000, ..Default::default() };
        assert_eq!(m.throughput_per_kilotick(), 50.0);
        assert_eq!(Metrics::default().throughput_per_kilotick(), 0.0);
        assert_eq!(Metrics::default().locks_per_txn(), 0.0);
    }

    #[test]
    fn attempts_separate_retries_from_commits() {
        let m = Metrics {
            committed: 10,
            deadlock_aborts: 10,
            locks: StatsSnapshot { requests: 100, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(m.attempts(), 20);
        // Per committed txn the overhead looks doubled by the doomed retries…
        assert_eq!(m.locks_per_txn(), 10.0);
        // …while per attempt it reports the true per-execution cost.
        assert_eq!(m.locks_per_attempt(), 5.0);
    }

    #[test]
    fn total_wait_hist_merges_resources() {
        let mut m = Metrics::default();
        let mut h1 = WaitHistogram::default();
        h1.record(100);
        let mut h2 = WaitHistogram::default();
        h2.record(5000);
        m.wait_hists.insert("a".into(), h1);
        m.wait_hists.insert("b".into(), h2);
        let total = m.total_wait_hist();
        assert_eq!(total.count(), 2);
        assert_eq!(total.max_us(), 5000);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["proto", "committed"]);
        t.row(vec!["proposed".into(), "120".into()]);
        t.row(vec!["whole-object".into(), "7".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("proto"));
        assert!(lines[3].trim_start().starts_with("whole-object"));
    }

    #[test]
    fn display_is_one_line() {
        let m = Metrics { committed: 3, ..Default::default() };
        assert_eq!(m.to_string().lines().count(), 1);
    }
}
