#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # `colock-sim` — workloads and concurrency drivers
//!
//! The paper evaluates qualitatively and names "simulations with regard to
//! the efficiency of the proposed technique" as future work (§5). This crate
//! performs those simulations:
//!
//! * [`workload`] — generators for the paper's two motivating data shapes:
//!   manufacturing **cells/effectors** (Fig. 1, parameterized by object
//!   count, fan-outs and sharing degree) and a **part library** with *nested*
//!   common data (assemblies → parts → materials);
//! * [`driver::ticks`] — a deterministic round-robin scheduler: every
//!   transaction advances one operation per tick, blocked transactions burn
//!   "blocked ticks", and an all-blocked round aborts the youngest
//!   transaction (deadlock resolution). Deterministic across runs → used by
//!   the experiment harness for reproducible numbers;
//! * [`driver::threads`] — a real multithreaded driver over the blocking
//!   lock manager, for wall-clock throughput;
//! * [`metrics`] — the measured quantities: committed/aborted transactions,
//!   blocked ticks, lock requests, conflict tests, lock-table high-water
//!   marks, reverse-scan costs.

pub mod consistency;
pub mod driver;
pub mod metrics;
pub mod workload;
pub mod workstation;

pub use driver::ticks::{ScriptOutcome, TickDriver, TickReport};
pub use driver::threads::{run_threads, ThreadConfig, ThreadReport};
pub use metrics::Metrics;
pub use workload::cells::{build_cells_store, CellsConfig};
pub use workload::mix::{Op, OpGenerator, QueryMix};
pub use workload::partlib::{build_partlib_store, PartLibConfig};
pub use workstation::Workstation;
