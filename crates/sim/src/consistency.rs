//! History recording and conflict-serializability checking.
//!
//! The strongest validation of a lock protocol: record the reads and writes
//! of concurrently executed transactions (each write installs a globally
//! unique version, so reads identify exactly which write they observed),
//! build the precedence graph over the committed transactions — wr, ww and
//! rw conflicts — and check it is acyclic. Strict 2PL over the proposed
//! protocol must always pass; the *relaxed* naive protocol (§3.2.2: implicit
//! locks invisible from the side) produces provably non-serializable
//! histories, which is the paper's inconsistency claim made mechanical.

use crate::workload::cells::CellsConfig;
use colock_core::{AccessMode, InstanceTarget};
use colock_lockmgr::TxnId;
use colock_nf2::Value;
use colock_txn::{Transaction, TransactionManager, TxnKind};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A versioned data item (robot trajectory or effector tool).
pub type Item = String;

/// A version tag: who wrote it (`None` = initial load).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Version(pub Option<(TxnId, u64)>);

impl Version {
    fn parse(v: &Value) -> Version {
        match v {
            Value::Str(s) => {
                let mut parts = s.split(':');
                if parts.next() == Some("w") {
                    let txn = parts.next().and_then(|t| t.parse().ok());
                    let seq = parts.next().and_then(|t| t.parse().ok());
                    if let (Some(txn), Some(seq)) = (txn, seq) {
                        return Version(Some((TxnId(txn), seq)));
                    }
                }
                Version(None)
            }
            _ => Version(None),
        }
    }

    fn encode(txn: TxnId, seq: u64) -> Value {
        Value::str(format!("w:{}:{}", txn.0, seq))
    }
}

/// One operation of a history transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HOp {
    /// S-lock one robot, read its trajectory.
    ReadRobot {
        /// Cell index.
        cell: usize,
        /// Robot index.
        robot: usize,
    },
    /// X-lock one robot, overwrite its trajectory.
    WriteRobot {
        /// Cell index.
        cell: usize,
        /// Robot index.
        robot: usize,
    },
    /// X-lock one effector directly ("from the side"), overwrite its tool.
    WriteEffector {
        /// Effector index.
        effector: usize,
    },
    /// S-lock a robot, then read the tool of its first referenced effector
    /// *without further locks* — trusting the protocol's implicit coverage
    /// of common data. Exactly the access §3.2.2 worries about.
    ReadEffectorViaRobot {
        /// Cell index.
        cell: usize,
        /// Robot index.
        robot: usize,
    },
}

/// A recorded event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A committed-transaction read observing a version.
    Read {
        /// Reader.
        txn: TxnId,
        /// Item read.
        item: Item,
        /// The version observed.
        observed: Version,
    },
    /// A write installing a version.
    Write {
        /// Writer.
        txn: TxnId,
        /// Item written.
        item: Item,
        /// The installed version.
        version: Version,
    },
}

/// A recorded history.
#[derive(Debug, Default)]
pub struct History {
    /// All events, in wall order.
    pub events: Vec<Event>,
    /// Committed transactions.
    pub committed: HashSet<TxnId>,
    /// Aborted transactions.
    pub aborted: HashSet<TxnId>,
}

/// Why a history is bad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A committed transaction read a version written by an aborted one.
    DirtyRead {
        /// The reader.
        reader: TxnId,
        /// The aborted writer.
        writer: TxnId,
        /// On which item.
        item: Item,
    },
    /// The precedence graph has a cycle.
    NotSerializable {
        /// A cycle of committed transactions.
        cycle: Vec<TxnId>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DirtyRead { reader, writer, item } => {
                write!(f, "{reader} read aborted {writer}'s write of `{item}`")
            }
            Violation::NotSerializable { cycle } => {
                let c: Vec<String> = cycle.iter().map(|t| t.to_string()).collect();
                write!(f, "precedence cycle: {}", c.join(" -> "))
            }
        }
    }
}

impl History {
    /// Checks conflict-serializability of the committed transactions.
    pub fn check(&self) -> Result<(), Violation> {
        // Per-item committed write order (wall order of committed writes).
        let mut write_log: HashMap<&str, Vec<(TxnId, Version)>> = HashMap::new();
        for e in &self.events {
            if let Event::Write { txn, item, version } = e {
                if self.committed.contains(txn) {
                    write_log.entry(item).or_default().push((*txn, version.clone()));
                }
            }
        }
        let mut edges: HashMap<TxnId, HashSet<TxnId>> = HashMap::new();
        let mut add = |from: TxnId, to: TxnId| {
            if from != to {
                edges.entry(from).or_default().insert(to);
            }
        };
        // ww edges along each item's write log.
        for log in write_log.values() {
            for pair in log.windows(2) {
                add(pair[0].0, pair[1].0);
            }
        }
        // wr and rw edges from reads.
        for e in &self.events {
            let Event::Read { txn, item, observed } = e else {
                continue;
            };
            if !self.committed.contains(txn) {
                continue;
            }
            if let Version(Some((writer, _))) = observed {
                if self.aborted.contains(writer) {
                    return Err(Violation::DirtyRead {
                        reader: *txn,
                        writer: *writer,
                        item: item.clone(),
                    });
                }
                add(*writer, *txn); // wr
            }
            // rw: reader precedes the next committed writer of the item.
            if let Some(log) = write_log.get(item.as_str()) {
                let idx = match observed {
                    Version(Some(_)) => log.iter().position(|(_, v)| v == observed),
                    Version(None) => None,
                };
                let next = match idx {
                    Some(i) => log.get(i + 1),
                    // Observed the initial version: every committed writer
                    // comes after the read.
                    None => log.first(),
                };
                if let Some((next_writer, _)) = next {
                    add(*txn, *next_writer);
                }
            }
        }
        // Cycle detection (DFS, three colors).
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let nodes: Vec<TxnId> = self.committed.iter().copied().collect();
        let mut marks: HashMap<TxnId, Mark> = nodes.iter().map(|&n| (n, Mark::White)).collect();
        fn dfs(
            node: TxnId,
            edges: &HashMap<TxnId, HashSet<TxnId>>,
            marks: &mut HashMap<TxnId, Mark>,
            stack: &mut Vec<TxnId>,
        ) -> Option<Vec<TxnId>> {
            marks.insert(node, Mark::Grey);
            stack.push(node);
            for &next in edges.get(&node).into_iter().flatten() {
                match marks.get(&next).copied().unwrap_or(Mark::Black) {
                    Mark::Grey => {
                        let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
                        let mut cycle = stack[pos..].to_vec();
                        cycle.push(next);
                        return Some(cycle);
                    }
                    Mark::White => {
                        if let Some(c) = dfs(next, edges, marks, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
            stack.pop();
            marks.insert(node, Mark::Black);
            None
        }
        for &n in &nodes {
            if marks[&n] == Mark::White {
                if let Some(cycle) = dfs(n, &edges, &mut marks, &mut Vec::new()) {
                    return Err(Violation::NotSerializable { cycle });
                }
            }
        }
        Ok(())
    }
}

fn robot_item(cell: usize, robot: usize) -> Item {
    format!("cells/{}/robots/{}/trajectory", CellsConfig::cell_key(cell), CellsConfig::robot_key(robot))
}

fn effector_item(key: &colock_nf2::ObjectKey) -> Item {
    format!("effectors/{key}/tool")
}

/// Runs scripted transactions (one op per round-robin turn) against the
/// manager and records the history. Blocked operations retry; a full stall
/// aborts the youngest transaction (it is *not* retried — its events are
/// kept and marked aborted).
pub fn run_scripted(mgr: &TransactionManager, scripts: Vec<Vec<HOp>>) -> History {
    let mut history = History::default();
    let mut seq: u64 = 0;
    struct W<'m> {
        txn: Option<Transaction<'m>>,
        ops: Vec<HOp>,
        pos: usize,
        done: bool,
        blocked: bool,
    }
    let mut workers: Vec<W<'_>> = scripts
        .into_iter()
        .map(|ops| W { txn: None, ops, pos: 0, done: false, blocked: false })
        .collect();
    let mut guard = 0;
    loop {
        guard += 1;
        assert!(guard < 100_000, "scripted history did not terminate");
        let mut all_done = true;
        let mut progress = false;
        for w in workers.iter_mut() {
            if w.done {
                continue;
            }
            all_done = false;
            if w.txn.is_none() {
                w.txn = Some(mgr.begin(TxnKind::Short));
            }
            let txn = w.txn.as_ref().expect("begun");
            match step(mgr, txn, w.ops[w.pos], &mut seq, &mut history) {
                StepResult::Done => {
                    w.pos += 1;
                    w.blocked = false;
                    progress = true;
                    if w.pos == w.ops.len() {
                        let t = w.txn.take().expect("txn");
                        history.committed.insert(t.id());
                        t.commit().expect("commit");
                        w.done = true;
                    }
                }
                StepResult::Blocked => {
                    w.blocked = true;
                }
            }
        }
        if all_done {
            break;
        }
        if !progress {
            // Abort the youngest blocked transaction; it stays aborted.
            let victim = workers
                .iter_mut()
                .filter(|w| w.blocked && w.txn.is_some())
                .max_by_key(|w| w.txn.as_ref().map(|t| t.id()).expect("txn"));
            if let Some(w) = victim {
                let t = w.txn.take().expect("txn");
                history.aborted.insert(t.id());
                t.abort().expect("abort");
                w.done = true;
            } else {
                panic!("stall without blocked transaction");
            }
        }
    }
    history
}

enum StepResult {
    Done,
    Blocked,
}

fn step(
    mgr: &TransactionManager,
    txn: &Transaction<'_>,
    op: HOp,
    seq: &mut u64,
    history: &mut History,
) -> StepResult {
    let store = mgr.store();
    match op {
        HOp::ReadRobot { cell, robot } => {
            let target = InstanceTarget::object("cells", CellsConfig::cell_key(cell))
                .elem("robots", CellsConfig::robot_key(robot));
            if txn.try_lock(&target, AccessMode::Read).is_err() {
                return StepResult::Blocked;
            }
            let v = store
                .get_at(
                    "cells",
                    &CellsConfig::cell_key(cell),
                    &target.clone().attr("trajectory").steps,
                )
                .expect("read trajectory");
            history.events.push(Event::Read {
                txn: txn.id(),
                item: robot_item(cell, robot),
                observed: Version::parse(&v),
            });
            StepResult::Done
        }
        HOp::WriteRobot { cell, robot } => {
            let target = InstanceTarget::object("cells", CellsConfig::cell_key(cell))
                .elem("robots", CellsConfig::robot_key(robot));
            if txn.try_lock(&target, AccessMode::Update).is_err() {
                return StepResult::Blocked;
            }
            *seq += 1;
            let version = Version(Some((txn.id(), *seq)));
            txn.update(&target.attr("trajectory"), Version::encode(txn.id(), *seq))
                .expect("write under held lock");
            history.events.push(Event::Write {
                txn: txn.id(),
                item: robot_item(cell, robot),
                version,
            });
            StepResult::Done
        }
        HOp::WriteEffector { effector } => {
            let key = CellsConfig::effector_key(effector);
            let target = InstanceTarget::object("effectors", key.clone());
            if txn.try_lock(&target, AccessMode::Update).is_err() {
                return StepResult::Blocked;
            }
            *seq += 1;
            let version = Version(Some((txn.id(), *seq)));
            txn.update(&target.attr("tool"), Version::encode(txn.id(), *seq))
                .expect("write effector");
            history.events.push(Event::Write {
                txn: txn.id(),
                item: effector_item(&key),
                version,
            });
            StepResult::Done
        }
        HOp::ReadEffectorViaRobot { cell, robot } => {
            let target = InstanceTarget::object("cells", CellsConfig::cell_key(cell))
                .elem("robots", CellsConfig::robot_key(robot));
            if txn.try_lock(&target, AccessMode::Read).is_err() {
                return StepResult::Blocked;
            }
            // Follow the first reference WITHOUT further lock requests —
            // the protocol's downward propagation (or its absence) decides
            // whether this is safe.
            let robot_val = store
                .get_at("cells", &CellsConfig::cell_key(cell), &target.steps)
                .expect("robot");
            let mut refs = Vec::new();
            robot_val.collect_refs(&mut refs);
            let eff = (*refs.first().expect("robot has an effector")).clone();
            let tool = store
                .get_at(&eff.relation, &eff.key, &[colock_core::TargetStep::attr("tool")])
                .expect("tool");
            history.events.push(Event::Read {
                txn: txn.id(),
                item: effector_item(&eff.key),
                observed: Version::parse(&tool),
            });
            StepResult::Done
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(txn: u64, seq: u64) -> Version {
        Version(Some((TxnId(txn), seq)))
    }

    #[test]
    fn empty_history_is_serializable() {
        assert!(History::default().check().is_ok());
    }

    #[test]
    fn simple_wr_chain_is_serializable() {
        let mut h = History::default();
        h.committed.extend([TxnId(1), TxnId(2)]);
        h.events.push(Event::Write { txn: TxnId(1), item: "x".into(), version: v(1, 1) });
        h.events.push(Event::Read { txn: TxnId(2), item: "x".into(), observed: v(1, 1) });
        assert!(h.check().is_ok());
    }

    #[test]
    fn classic_rw_cycle_is_detected() {
        // T1 reads x@init then T2 writes x; T2 reads y@init then T1 writes y.
        let mut h = History::default();
        h.committed.extend([TxnId(1), TxnId(2)]);
        h.events.push(Event::Read { txn: TxnId(1), item: "x".into(), observed: Version(None) });
        h.events.push(Event::Read { txn: TxnId(2), item: "y".into(), observed: Version(None) });
        h.events.push(Event::Write { txn: TxnId(2), item: "x".into(), version: v(2, 1) });
        h.events.push(Event::Write { txn: TxnId(1), item: "y".into(), version: v(1, 2) });
        let err = h.check().unwrap_err();
        assert!(matches!(err, Violation::NotSerializable { .. }));
    }

    #[test]
    fn dirty_read_is_detected() {
        let mut h = History::default();
        h.committed.insert(TxnId(2));
        h.aborted.insert(TxnId(1));
        h.events.push(Event::Write { txn: TxnId(1), item: "x".into(), version: v(1, 1) });
        h.events.push(Event::Read { txn: TxnId(2), item: "x".into(), observed: v(1, 1) });
        assert!(matches!(h.check().unwrap_err(), Violation::DirtyRead { .. }));
    }

    #[test]
    fn aborted_writes_are_excluded_from_ww_order() {
        let mut h = History::default();
        h.committed.extend([TxnId(2), TxnId(3)]);
        h.aborted.insert(TxnId(1));
        // T1's write never committed; T2 and T3 order normally.
        h.events.push(Event::Write { txn: TxnId(1), item: "x".into(), version: v(1, 1) });
        h.events.push(Event::Write { txn: TxnId(2), item: "x".into(), version: v(2, 2) });
        h.events.push(Event::Read { txn: TxnId(3), item: "x".into(), observed: v(2, 2) });
        assert!(h.check().is_ok());
    }

    #[test]
    fn version_parse_roundtrip() {
        let val = Version::encode(TxnId(7), 42);
        assert_eq!(Version::parse(&val), v(7, 42));
        assert_eq!(Version::parse(&Value::str("anything")), Version(None));
        assert_eq!(Version::parse(&Value::Int(3)), Version(None));
    }
}
