//! Deterministic tick-based scheduler.
//!
//! Every simulated transaction advances at most one operation per tick, in
//! round-robin order; an operation that cannot get its locks (try-lock
//! returns would-block) retries on the next tick and the blocked tick is
//! counted. If a full round passes with every active transaction blocked,
//! the youngest is aborted and restarted — deterministic deadlock
//! resolution. Identical seeds → identical schedules → identical metrics,
//! which is what the experiment tables are built from.

use crate::metrics::Metrics;
use crate::workload::mix::Op;
use colock_core::AccessMode;
use colock_testkit::Rng;
use colock_txn::{TransactionManager, Transaction, TxnKind};

/// Configuration of a tick run.
#[derive(Debug, Clone, Copy)]
pub struct TickConfig {
    /// Transactions each worker must commit before the run ends.
    pub txns_per_worker: usize,
    /// Extra ticks a checkout (long transaction) holds its locks.
    pub hold_ticks_after_checkout: u64,
    /// Safety valve: abort the run after this many ticks.
    pub max_ticks: u64,
    /// Seed of the deadlock-abort backoff jitter. A constant rest period
    /// lets two workers that deadlock, back off, and restart in lockstep
    /// deadlock again on the same tick forever; jitter breaks the symmetry
    /// while identical seeds keep runs reproducible.
    pub jitter_seed: u64,
    /// Run all-read scripts as read-only snapshot transactions: they begin
    /// via [`TransactionManager::begin_readonly`] and read through the
    /// multiversion overlay instead of S locks. Per-read blocked-tick counts
    /// land in [`Metrics::reader_waits`] (always 0 while MVCC is on — the
    /// whole point; under the `COLOCK_NO_MVCC` ablation they lock and wait).
    pub snapshot_readers: bool,
}

impl Default for TickConfig {
    fn default() -> Self {
        TickConfig {
            txns_per_worker: 10,
            hold_ticks_after_checkout: 0,
            max_ticks: 1_000_000,
            jitter_seed: 0x5EED,
            snapshot_readers: false,
        }
    }
}

/// Outcome classification of one worker script (used by tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOutcome {
    /// All transactions committed.
    Completed,
    /// Run hit the tick limit first.
    TimedOut,
}

/// Report of one tick run.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// Aggregate metrics.
    pub metrics: Metrics,
    /// Outcome.
    pub outcome: ScriptOutcome,
}

enum Step {
    Do(Op),
    Hold(u64),
}

struct Worker<'m> {
    txn: Option<Transaction<'m>>,
    scripts: Vec<Vec<Op>>,
    script_idx: usize,
    step_idx: usize,
    steps: Vec<Step>,
    committed: usize,
    blocked_now: bool,
    /// Backoff after a deadlock abort: the worker rests until this tick so
    /// the surviving transactions can drain the cycle (prevents the
    /// restart-and-reblock livelock).
    sleep_until: u64,
    /// Current transaction is a read-only snapshot transaction.
    readonly: bool,
    /// Ticks the current operation has spent blocked (flushed into
    /// `Metrics::reader_waits` when a read-only op finally succeeds).
    op_blocked: u64,
}

/// The deterministic driver.
pub struct TickDriver<'m> {
    mgr: &'m TransactionManager,
    cfg: TickConfig,
}

impl<'m> TickDriver<'m> {
    /// Creates a driver over a manager.
    pub fn new(mgr: &'m TransactionManager, cfg: TickConfig) -> Self {
        TickDriver { mgr, cfg }
    }

    /// Runs the given per-worker scripts (`scripts[w][t]` = ops of worker
    /// `w`'s `t`-th transaction) to completion and reports metrics.
    pub fn run(&self, scripts: Vec<Vec<Vec<Op>>>) -> TickReport {
        let start_stats = self.mgr.lock_manager().stats().snapshot();
        let start_scans = self.mgr.store().scan_visits();
        let mut metrics = Metrics::default();
        let mut workers: Vec<Worker<'m>> = scripts
            .into_iter()
            .map(|scripts| Worker {
                txn: None,
                scripts,
                script_idx: 0,
                step_idx: 0,
                steps: Vec::new(),
                committed: 0,
                blocked_now: false,
                sleep_until: 0,
                readonly: false,
                op_blocked: 0,
            })
            .collect();

        let mut jitter = Rng::seed_from_u64(self.cfg.jitter_seed);
        let mut tick: u64 = 0;
        loop {
            if tick >= self.cfg.max_ticks {
                metrics.total_ticks = tick;
                metrics.locks = self
                    .mgr
                    .lock_manager()
                    .stats()
                    .snapshot()
                    .since(&start_stats);
                metrics.scan_visits = self.mgr.store().scan_visits() - start_scans;
                for w in &mut workers {
                    if let Some(t) = w.txn.take() {
                        let _ = t.abort();
                    }
                }
                return TickReport { metrics, outcome: ScriptOutcome::TimedOut };
            }
            let mut all_done = true;
            let mut any_progress = false;
            let mut any_active = false;
            for w in workers.iter_mut() {
                if w.script_idx >= w.scripts.len() {
                    continue;
                }
                all_done = false;
                if tick < w.sleep_until {
                    // Resting after a deadlock abort: neither active nor
                    // progressing, so a persisting cycle among the others is
                    // still detected below.
                    continue;
                }
                any_active = true;
                if self.step_worker(w, tick, &mut metrics) {
                    any_progress = true;
                }
            }
            if all_done {
                break;
            }
            if !any_progress && any_active {
                // Every awake worker blocked: abort the youngest txn and put
                // its worker to sleep so the cycle can drain.
                self.resolve_stall(&mut workers, &mut metrics, tick, &mut jitter);
            }
            tick += 1;
        }
        metrics.total_ticks = tick;
        metrics.locks = self.mgr.lock_manager().stats().snapshot().since(&start_stats);
        metrics.scan_visits = self.mgr.store().scan_visits() - start_scans;
        TickReport { metrics, outcome: ScriptOutcome::Completed }
    }

    /// Advances one worker by one step; returns `true` on progress.
    fn step_worker(&self, w: &mut Worker<'m>, tick: u64, metrics: &mut Metrics) -> bool {
        if w.txn.is_none() {
            let script = &w.scripts[w.script_idx];
            let long = script
                .iter()
                .any(|op| matches!(op, Op::CheckoutCell { .. } | Op::CheckoutRobot { .. }));
            w.readonly = self.cfg.snapshot_readers
                && script.iter().all(|op| op.target().1 == AccessMode::Read);
            w.txn = Some(if w.readonly {
                self.mgr.begin_readonly()
            } else {
                self.mgr.begin(if long { TxnKind::Long } else { TxnKind::Short })
            });
            w.op_blocked = 0;
            w.steps = script
                .iter()
                .flat_map(|op| {
                    let mut v = vec![Step::Do(op.clone())];
                    if matches!(op, Op::CheckoutCell { .. } | Op::CheckoutRobot { .. })
                        && self.cfg.hold_ticks_after_checkout > 0
                    {
                        v.push(Step::Hold(self.cfg.hold_ticks_after_checkout));
                    }
                    v
                })
                .collect();
            w.step_idx = 0;
        }
        let txn = w.txn.as_ref().expect("txn just ensured");
        match &mut w.steps[w.step_idx] {
            Step::Hold(remaining) => {
                *remaining -= 1;
                if *remaining == 0 {
                    w.step_idx += 1;
                }
                // Holding is progress (the txn is deliberately idle).
                w.blocked_now = false;
                self.maybe_finish(w, metrics);
                true
            }
            Step::Do(op) => {
                let (target, access) = op.target();
                if w.readonly {
                    return match txn.try_snapshot_read(&target) {
                        Ok(_) => {
                            metrics.reader_waits.record(w.op_blocked);
                            w.op_blocked = 0;
                            w.step_idx += 1;
                            w.blocked_now = false;
                            self.maybe_finish(w, metrics);
                            true
                        }
                        Err(e) if e.is_would_block() => {
                            // Only the S-locking ablation can get here: a
                            // snapshot read never blocks.
                            metrics.blocked_ticks += 1;
                            w.op_blocked += 1;
                            w.blocked_now = true;
                            false
                        }
                        Err(_) => {
                            w.op_blocked = 0;
                            w.step_idx += 1;
                            w.blocked_now = false;
                            self.maybe_finish(w, metrics);
                            true
                        }
                    };
                }
                match txn.try_lock(&target, access) {
                    Ok(_) => {
                        if let Some((t, v)) = op.update_payload(tick) {
                            // The data touch; locks are already held.
                            txn.update(&t, v).expect("update under held lock");
                        }
                        w.step_idx += 1;
                        w.blocked_now = false;
                        self.maybe_finish(w, metrics);
                        true
                    }
                    Err(e) if e.is_would_block() => {
                        metrics.blocked_ticks += 1;
                        w.blocked_now = true;
                        false
                    }
                    Err(_) => {
                        // Unauthorized or storage error: skip this op.
                        w.step_idx += 1;
                        w.blocked_now = false;
                        self.maybe_finish(w, metrics);
                        true
                    }
                }
            }
        }
    }

    fn maybe_finish(&self, w: &mut Worker<'m>, metrics: &mut Metrics) {
        if w.step_idx >= w.steps.len() {
            if let Some(t) = w.txn.take() {
                t.commit().expect("commit");
            }
            metrics.committed += 1;
            w.committed += 1;
            w.script_idx += 1;
        }
    }

    fn resolve_stall(
        &self,
        workers: &mut [Worker<'m>],
        metrics: &mut Metrics,
        tick: u64,
        jitter: &mut Rng,
    ) {
        let base = workers.len() as u64 + 2;
        let backoff = base + jitter.gen_range(0..base);
        // Youngest = highest TxnId among blocked actives.
        let victim = workers
            .iter_mut()
            .filter(|w| w.blocked_now && w.txn.is_some() && tick >= w.sleep_until)
            .max_by_key(|w| w.txn.as_ref().map(|t| t.id()).expect("txn present"));
        if let Some(w) = victim {
            if let Some(t) = w.txn.take() {
                let _ = t.abort();
            }
            metrics.deadlock_aborts += 1;
            w.step_idx = 0; // restart the same script after the backoff
            w.blocked_now = false;
            w.op_blocked = 0;
            w.sleep_until = tick + backoff;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::cells::{build_cells_store, CellsConfig};
    use colock_core::authorization::{Authorization, Right};
    use colock_txn::ProtocolKind;

    fn manager(protocol: ProtocolKind) -> TransactionManager {
        let store = build_cells_store(&CellsConfig::default());
        let mut authz = Authorization::allow_all();
        authz.set_relation_default("effectors", Right::Read);
        TransactionManager::over_store(store, authz, protocol)
    }

    #[test]
    fn disjoint_updates_finish_without_blocking() {
        let mgr = manager(ProtocolKind::Proposed);
        let driver = TickDriver::new(&mgr, TickConfig::default());
        let scripts = vec![
            vec![vec![Op::UpdateRobot { cell: 0, robot: 0 }]],
            vec![vec![Op::UpdateRobot { cell: 0, robot: 1 }]],
        ];
        let report = driver.run(scripts);
        assert_eq!(report.outcome, ScriptOutcome::Completed);
        assert_eq!(report.metrics.committed, 2);
        assert_eq!(report.metrics.blocked_ticks, 0);
        assert_eq!(report.metrics.deadlock_aborts, 0);
    }

    #[test]
    fn whole_object_blocks_where_proposed_does_not() {
        let scripts = || {
            vec![
                vec![vec![Op::ReadParts { cell: 0 }, Op::ReadParts { cell: 0 }]],
                vec![vec![Op::UpdateRobot { cell: 0, robot: 0 }]],
            ]
        };
        let mgr_p = manager(ProtocolKind::Proposed);
        let p = TickDriver::new(&mgr_p, TickConfig::default()).run(scripts());
        let mgr_w = manager(ProtocolKind::WholeObject);
        let w = TickDriver::new(&mgr_w, TickConfig::default()).run(scripts());
        assert_eq!(p.metrics.blocked_ticks, 0, "proposed: no blocking");
        assert!(w.metrics.blocked_ticks > 0, "whole-object must block");
    }

    #[test]
    fn deadlock_is_resolved_and_run_completes() {
        let mgr = manager(ProtocolKind::Proposed);
        let driver = TickDriver::new(&mgr, TickConfig::default());
        // Classic crossing order on two robots.
        let scripts = vec![
            vec![vec![
                Op::UpdateRobot { cell: 0, robot: 0 },
                Op::UpdateRobot { cell: 0, robot: 1 },
            ]],
            vec![vec![
                Op::UpdateRobot { cell: 0, robot: 1 },
                Op::UpdateRobot { cell: 0, robot: 0 },
            ]],
        ];
        let report = driver.run(scripts);
        assert_eq!(report.outcome, ScriptOutcome::Completed);
        assert_eq!(report.metrics.committed, 2);
        assert!(report.metrics.deadlock_aborts >= 1);
    }

    #[test]
    fn determinism_same_seeded_scripts_same_metrics() {
        let run = || {
            let mgr = manager(ProtocolKind::Proposed);
            let driver = TickDriver::new(&mgr, TickConfig::default());
            let mut gen = crate::workload::mix::OpGenerator::new(
                CellsConfig::default(),
                crate::workload::mix::QueryMix::engineering(),
                99,
            );
            let scripts: Vec<Vec<Vec<Op>>> =
                (0..4).map(|_| (0..5).map(|_| gen.next_txn(3)).collect()).collect();
            driver.run(scripts).metrics
        };
        let a = run();
        let b = run();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.blocked_ticks, b.blocked_ticks);
        assert_eq!(a.total_ticks, b.total_ticks);
        assert_eq!(a.deadlock_aborts, b.deadlock_aborts);
    }

    /// With `snapshot_readers` on, an all-read script rides the multiversion
    /// overlay and finishes instantly even while a long checkout holds the
    /// whole cell under X — the exact scenario that blocks for the full hold
    /// period in `hold_ticks_stretch_checkouts` below.
    #[test]
    fn snapshot_readers_never_wait_behind_checkouts() {
        let mgr = manager(ProtocolKind::Proposed);
        let cfg = TickConfig {
            hold_ticks_after_checkout: 10,
            snapshot_readers: true,
            ..Default::default()
        };
        let driver = TickDriver::new(&mgr, cfg);
        let scripts = vec![
            vec![vec![Op::CheckoutCell { cell: 0 }]],
            vec![vec![Op::ReadRobot { cell: 0, robot: 0 }, Op::ReadParts { cell: 0 }]],
        ];
        let report = driver.run(scripts);
        assert_eq!(report.metrics.committed, 2);
        assert_eq!(report.metrics.blocked_ticks, 0, "snapshot reads never block");
        assert_eq!(report.metrics.reader_waits.count(), 2);
        assert_eq!(report.metrics.reader_waits.max_us(), 0);
        assert_eq!(report.metrics.locks.reads_elided, 2);
        // The ablation turns the same scripts back into waiting S readers.
        mgr.set_mvcc(false);
        let driver = TickDriver::new(&mgr, cfg);
        let report = driver.run(vec![
            vec![vec![Op::CheckoutCell { cell: 0 }]],
            vec![vec![Op::ReadRobot { cell: 0, robot: 0 }, Op::ReadParts { cell: 0 }]],
        ]);
        assert_eq!(report.metrics.committed, 2);
        assert!(report.metrics.blocked_ticks >= 8, "{}", report.metrics.blocked_ticks);
        assert!(report.metrics.reader_waits.max_us() >= 8);
        assert_eq!(report.metrics.locks.reads_elided, 0);
    }

    #[test]
    fn hold_ticks_stretch_checkouts() {
        let mgr = manager(ProtocolKind::Proposed);
        let cfg = TickConfig { hold_ticks_after_checkout: 10, ..Default::default() };
        let driver = TickDriver::new(&mgr, cfg);
        let scripts = vec![
            vec![vec![Op::CheckoutCell { cell: 0 }]],
            vec![vec![Op::ReadRobot { cell: 0, robot: 0 }]],
        ];
        let report = driver.run(scripts);
        assert_eq!(report.metrics.committed, 2);
        // The reader must have been blocked for roughly the hold period.
        assert!(report.metrics.blocked_ticks >= 8, "{}", report.metrics.blocked_ticks);
    }
}
