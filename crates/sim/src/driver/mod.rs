//! Concurrency drivers.

pub mod ticks;
pub mod threads;
