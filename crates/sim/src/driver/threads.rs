//! Real multithreaded driver: wall-clock throughput over the blocking lock
//! manager.

use crate::metrics::Metrics;
use crate::workload::cells::CellsConfig;
use crate::workload::mix::{OpGenerator, QueryMix};
use colock_testkit::Rng;
use colock_trace::WaitHistogram;
use colock_txn::{TransactionManager, TxnKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

/// Configuration of a threaded run.
#[derive(Debug, Clone, Copy)]
pub struct ThreadConfig {
    /// Worker threads.
    pub workers: usize,
    /// Transactions each worker commits.
    pub txns_per_worker: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Operation mix.
    pub mix: QueryMix,
    /// Base RNG seed (worker `w` uses `seed + w`).
    pub seed: u64,
    /// Workload shape (for drawing op parameters).
    pub cells: CellsConfig,
    /// Percentage (0–100) of transactions run as read-only snapshot
    /// transactions: they draw from [`QueryMix::read_only`], begin via
    /// [`TransactionManager::begin_readonly`], and read through the
    /// multiversion overlay (or S locks when MVCC is disabled). Their
    /// per-read wall-clock latency lands in [`Metrics::reader_waits`].
    pub readonly_pct: u8,
}

impl Default for ThreadConfig {
    fn default() -> Self {
        ThreadConfig {
            workers: 4,
            txns_per_worker: 25,
            ops_per_txn: 3,
            mix: QueryMix::engineering(),
            seed: 1,
            cells: CellsConfig::default(),
            readonly_pct: 0,
        }
    }
}

/// Report of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Aggregate metrics (wall_ms set; ticks unused).
    pub metrics: Metrics,
    /// Committed transactions per second.
    pub throughput_per_sec: f64,
}

/// Runs the workload on real threads; deadlock victims abort and retry until
/// every worker has committed its quota.
pub fn run_threads(mgr: &Arc<TransactionManager>, cfg: &ThreadConfig) -> ThreadReport {
    let start_stats = mgr.lock_manager().stats().snapshot();
    let start_scans = mgr.store().scan_visits();
    // COLOCK_CHECK=1 turns every threaded run into a conformance check: the
    // trace ring is drained through the protocol linter afterwards and any
    // violation aborts the run loudly.
    let checking = colock_check::enabled_from_env();
    if checking {
        colock_trace::enable();
    }
    // When tracing is on, remember where the event stream stood so the
    // histograms and the linter below cover exactly this run.
    let trace_start = colock_trace::current_seq();
    let deadlocks = AtomicU64::new(0);
    let committed = AtomicU64::new(0);
    let reader_hist = Mutex::new(WaitHistogram::default());
    let started = Instant::now();

    thread::scope(|scope| {
        for w in 0..cfg.workers {
            let mgr = Arc::clone(mgr);
            let deadlocks = &deadlocks;
            let committed = &committed;
            let reader_hist = &reader_hist;
            let cfg = *cfg;
            scope.spawn(move || {
                let mut gen = OpGenerator::new(cfg.cells, cfg.mix, cfg.seed + w as u64);
                // Readers draw from an independent stream so turning them on
                // (or off) never perturbs the writer workload of a seed.
                let mut ro_gen = OpGenerator::new(
                    cfg.cells,
                    QueryMix::read_only(),
                    cfg.seed ^ 0x5eed_0000 ^ w as u64,
                );
                let mut ro_rng = Rng::seed_from_u64(cfg.seed.wrapping_mul(31) + w as u64);
                let mut local_hist = WaitHistogram::default();
                let mut done = 0usize;
                while done < cfg.txns_per_worker {
                    if cfg.readonly_pct > 0
                        && ro_rng.gen_range(0..100u32) < cfg.readonly_pct as u32
                    {
                        let ops = ro_gen.next_txn(cfg.ops_per_txn);
                        let txn = mgr.begin_readonly();
                        let mut failed = false;
                        for op in &ops {
                            let (target, _) = op.target();
                            let t0 = Instant::now();
                            match txn.snapshot_read(&target) {
                                Err(e) if e.is_deadlock() => {
                                    // Only possible on the S-locking fallback
                                    // path (MVCC off); retry like a writer.
                                    deadlocks.fetch_add(1, Ordering::Relaxed);
                                    failed = true;
                                    break;
                                }
                                // Unauthorized/absent targets still cost a
                                // read attempt; the txn continues.
                                _ => local_hist.record(t0.elapsed().as_micros() as u64),
                            }
                        }
                        if failed {
                            let _ = txn.abort();
                            continue;
                        }
                        txn.commit().expect("commit");
                        committed.fetch_add(1, Ordering::Relaxed);
                        done += 1;
                        continue;
                    }
                    let ops = gen.next_txn(cfg.ops_per_txn);
                    let long = ops
                        .iter()
                        .any(|o| matches!(o, crate::workload::mix::Op::CheckoutCell { .. } | crate::workload::mix::Op::CheckoutRobot { .. }));
                    let txn =
                        mgr.begin(if long { TxnKind::Long } else { TxnKind::Short });
                    let mut failed = false;
                    for (i, op) in ops.iter().enumerate() {
                        let (target, access) = op.target();
                        match txn.lock(&target, access) {
                            Ok(_) => {
                                if let Some((t, v)) = op.update_payload(i as u64) {
                                    if txn.update(&t, v).is_err() {
                                        failed = true;
                                        break;
                                    }
                                }
                            }
                            Err(e) if e.is_deadlock() => {
                                deadlocks.fetch_add(1, Ordering::Relaxed);
                                failed = true;
                                break;
                            }
                            Err(_) => {
                                // Unauthorized op: skip it, txn continues.
                            }
                        }
                    }
                    if failed {
                        let _ = txn.abort();
                        continue; // retry with a fresh transaction
                    }
                    txn.commit().expect("commit");
                    committed.fetch_add(1, Ordering::Relaxed);
                    done += 1;
                }
                if local_hist.count() > 0 {
                    reader_hist.lock().unwrap().merge(&local_hist);
                }
            });
        }
    });

    let elapsed = started.elapsed();
    let events = if colock_trace::is_enabled() {
        colock_trace::events_since(trace_start)
    } else {
        Vec::new()
    };
    if checking {
        let report = colock_check::Linter::with_catalog(mgr.store().catalog()).lint(&events);
        assert!(
            report.is_clean(),
            "COLOCK_CHECK: protocol violations in threaded run:\n{}",
            report.render_with_context(&events)
        );
    }
    if colock_check::certify_enabled_from_env() && !events.is_empty() {
        let cert = colock_check::Certifier::new().certify(&events);
        if !cert.is_clean() {
            // Persist the raw trace so the failure can be replayed offline
            // with `colock_check --certify <file>`.
            let path = std::env::temp_dir().join("colock_certify_fail.trace");
            let lines: String = events.iter().map(|e| format!("{}\n", e.to_line())).collect();
            let saved = std::fs::write(&path, lines).map(|_| path.display().to_string());
            panic!(
                "COLOCK_CERTIFY: threaded run not conflict-serializable \
                 (trace saved: {saved:?}):\n{}",
                cert.render_with_context(&events)
            );
        }
    }
    let wait_hists = if events.is_empty() {
        Default::default()
    } else {
        colock_trace::wait_histograms(&events)
    };
    let metrics = Metrics {
        committed: committed.load(Ordering::Relaxed),
        deadlock_aborts: deadlocks.load(Ordering::Relaxed),
        blocked_ticks: 0,
        total_ticks: 0,
        wall_ms: elapsed.as_millis() as u64,
        locks: mgr.lock_manager().stats().snapshot().since(&start_stats),
        scan_visits: mgr.store().scan_visits() - start_scans,
        wait_hists,
        reader_waits: reader_hist.into_inner().unwrap(),
    };
    let throughput = metrics.committed as f64 / elapsed.as_secs_f64().max(1e-9);
    ThreadReport { metrics, throughput_per_sec: throughput }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::cells::build_cells_store;
    use colock_core::authorization::{Authorization, Right};
    use colock_txn::ProtocolKind;

    #[test]
    fn threaded_run_commits_quota() {
        let store = build_cells_store(&CellsConfig::default());
        let mut authz = Authorization::allow_all();
        authz.set_relation_default("effectors", Right::Read);
        let mgr = Arc::new(TransactionManager::over_store(store, authz, ProtocolKind::Proposed));
        let cfg = ThreadConfig { workers: 4, txns_per_worker: 10, ..Default::default() };
        let report = run_threads(&mgr, &cfg);
        assert_eq!(report.metrics.committed, 40);
        assert!(report.throughput_per_sec > 0.0);
        // Everything released at the end.
        assert_eq!(mgr.lock_manager().table_size(), 0);
    }

    /// Seeded random workloads must produce protocol-conformant traces
    /// under every shipped protocol — the linter stays silent — and every
    /// trace must certify conflict-serializable (acyclic conflict graph).
    #[test]
    fn random_workloads_lint_clean() {
        colock_trace::enable();
        for (seed, protocol) in
            [(1, ProtocolKind::Proposed), (7, ProtocolKind::Proposed), (42, ProtocolKind::WholeObject)]
        {
            let store = build_cells_store(&CellsConfig::default());
            let linter = colock_check::Linter::with_catalog(store.catalog());
            let mut authz = Authorization::allow_all();
            authz.set_relation_default("effectors", Right::Read);
            let mgr = Arc::new(TransactionManager::over_store(store, authz, protocol));
            let mark = colock_trace::current_seq();
            let cfg = ThreadConfig { workers: 4, txns_per_worker: 8, seed, ..Default::default() };
            run_threads(&mgr, &cfg);
            let events = colock_trace::events_since(mark);
            let report = linter.lint(&events);
            assert!(
                report.is_clean(),
                "seed {seed} {protocol:?}:\n{}",
                report.render_with_context(&events)
            );
            assert!(report.grants_checked > 0, "seed {seed}: no grants seen");
            let cert = colock_check::Certifier::new().certify(&events);
            assert!(
                cert.is_clean(),
                "seed {seed} {protocol:?} not conflict-serializable:\n{}",
                cert.render_with_context(&events)
            );
            assert!(cert.txns_committed > 0, "seed {seed}: no committed txns certified");
        }
    }

    /// Read-mostly runs commit their quota, route every snapshot read past
    /// the lock table, and record per-read latencies — with and without the
    /// multiversion overlay (the ablation falls back to S locks).
    #[test]
    fn read_mostly_run_elides_locks_and_records_reader_waits() {
        let store = build_cells_store(&CellsConfig::default());
        let mut authz = Authorization::allow_all();
        authz.set_relation_default("effectors", Right::Read);
        let mgr = Arc::new(TransactionManager::over_store(store, authz, ProtocolKind::Proposed));
        let cfg = ThreadConfig {
            workers: 4,
            txns_per_worker: 10,
            readonly_pct: 60,
            ..Default::default()
        };
        let report = run_threads(&mgr, &cfg);
        assert_eq!(report.metrics.committed, 40);
        assert!(report.metrics.locks.reads_elided > 0, "no snapshot reads happened");
        assert_eq!(report.metrics.reader_waits.count(), report.metrics.locks.reads_elided);
        assert_eq!(mgr.lock_manager().table_size(), 0);

        // Ablation: same shape, overlay off — readers lock instead.
        mgr.set_mvcc(false);
        let report = run_threads(&mgr, &cfg);
        assert_eq!(report.metrics.committed, 40);
        assert_eq!(report.metrics.locks.reads_elided, 0);
        assert!(report.metrics.reader_waits.count() > 0);
        assert_eq!(mgr.lock_manager().table_size(), 0);
    }

    #[test]
    fn update_heavy_mix_still_completes_under_all_protocols() {
        for protocol in [ProtocolKind::Proposed, ProtocolKind::WholeObject, ProtocolKind::TupleLevel] {
            let store = build_cells_store(&CellsConfig::default());
            let mut authz = Authorization::allow_all();
            authz.set_relation_default("effectors", Right::Read);
            let mgr = Arc::new(TransactionManager::over_store(store, authz, protocol));
            let cfg = ThreadConfig {
                workers: 3,
                txns_per_worker: 5,
                mix: QueryMix::update_heavy(),
                ..Default::default()
            };
            let report = run_threads(&mgr, &cfg);
            assert_eq!(report.metrics.committed, 15, "{protocol:?}");
        }
    }
}

#[cfg(test)]
mod liveness_tests {
    use super::*;
    use crate::workload::cells::build_cells_store;
    use colock_core::authorization::{Authorization, Right};
    use colock_txn::ProtocolKind;
    use std::sync::Arc;

    /// Regression test for the stale-victim deadlock hang: under the
    /// engineering mix (checkouts + upgrades + shared-data propagation) a
    /// waits-for cycle could be detected but left unresolved when the chosen
    /// victim's waiter had already been granted; the snapshot detector (run
    /// on every enqueue with all shards locked) and next-youngest fallback
    /// now guarantee progress. Sweep several seeds — before the fix this
    /// hung within a handful of varied-seed rounds.
    #[test]
    fn engineering_mix_liveness_across_seeds() {
        let cells = CellsConfig {
            n_cells: 4,
            c_objects_per_cell: 40,
            robots_per_cell: 4,
            n_effectors: 6,
            effectors_per_robot: 2,
            ..Default::default()
        };
        for seed in 0..12 {
            let store = build_cells_store(&cells);
            let mut authz = Authorization::allow_all();
            authz.set_relation_default("effectors", Right::Read);
            let mgr = Arc::new(TransactionManager::over_store(
                store,
                authz,
                ProtocolKind::Proposed,
            ));
            let cfg = ThreadConfig {
                workers: 4,
                txns_per_worker: 4,
                ops_per_txn: 3,
                mix: QueryMix::engineering(),
                seed,
                cells,
                readonly_pct: 0,
            };
            let report = run_threads(&mgr, &cfg);
            assert_eq!(report.metrics.committed, 16, "seed {seed}");
            assert_eq!(mgr.lock_manager().table_size(), 0, "seed {seed}");
        }
    }
}
