//! Deterministic interleaving explorer: a cooperative scheduler plus a
//! DPOR-style schedule enumerator for small multi-threaded scenarios.
//!
//! # What this is
//!
//! Stress harnesses shake the lock manager with wall-clock races; this
//! module instead *enumerates* thread interleavings of a 2–4-transaction
//! scenario, one schedule per run, so every explored ordering can be
//! replayed and checked (e.g. replaying the trace of each run through the
//! serializability certifier). The scheduler serializes the scenario's
//! threads at **operation granularity**: an instrumented code path (the
//! lock table) calls [`yield_point`] at the top of each externally-visible
//! operation, and the scheduler decides which parked thread runs next.
//!
//! # Hook contract (instrumented code calls these)
//!
//! * [`yield_point`] — "I am about to start an operation". Parks the
//!   calling thread until the scheduler picks it. The label closure
//!   describes the operation and the resources it touches (see *Conflict
//!   labels* below); it is only invoked for threads that are part of an
//!   active exploration, so the disabled cost is one relaxed atomic load
//!   and a branch — the same discipline as `colock_trace::emit`.
//! * [`before_block`] — "transaction `txn` on this thread is about to park
//!   on a condition variable". Non-blocking: the scheduler stops waiting
//!   for this thread and picks another runnable one.
//! * [`after_block`] — "this thread woke from its condition variable and is
//!   re-evaluating". Non-blocking; marks the thread busy so the scheduler
//!   waits for it to reach a stable state before the next decision.
//! * [`note_wakeup`] — "the operation I am running just made transaction
//!   `txn` runnable" (a grant installed for a parked waiter, or a deadlock
//!   victim marked). Non-blocking; tells the scheduler the blocked thread
//!   owning `txn` is in flight again.
//!
//! `before_block`/`after_block`/`note_wakeup` may be called while the
//! instrumented code holds its own internal mutexes: they only update
//! scheduler state and never park, so the lock order is always
//! *engine lock → scheduler lock* and cannot deadlock. [`yield_point`]
//! parks, so it must only be placed where the caller holds no engine lock
//! (operation entry points).
//!
//! # Quiescence
//!
//! The scheduler takes the next decision only when every participant is in
//! a **stable** state: parked at a yield point, parked on an engine condvar
//! (announced via `before_block`), or finished. A thread woken by
//! `note_wakeup` is *in flight* until it either reaches its next yield
//! point or re-announces `before_block`; the scheduler waits it out. This
//! makes a schedule a pure function of the decision sequence: with the same
//! forced prefix the same enabled sets reappear, which the explorer
//! verifies on every replay (divergences are counted and surface in the
//! report — a correct integration keeps them at zero).
//!
//! # Exploration (persistent sets, depth bound)
//!
//! The explorer does a depth-first search over decision prefixes,
//! re-executing the scenario from scratch for each schedule (stateless
//! model checking). Pruning is DPOR-flavoured: after each run it scans the
//! executed steps, and for each step `s` finds the *most recent* earlier
//! step of a different thread whose label conflicts with `s`; the thread of
//! `s` is added to the **backtrack set** of the decision point before that
//! earlier step (all enabled threads, if the thread of `s` was not enabled
//! there). Only decision points whose backtrack sets still hold untried
//! choices are revisited. Two steps conflict when their resource token sets
//! intersect (`*` is a wildcard that conflicts with everything). The
//! analysis is conservative — no vector clocks, so it may schedule
//! equivalent interleavings more than once — but it never *skips* a
//! reachable operation ordering within the depth bound: a choice is only
//! pruned when no conflicting pair justifies it, and commuting steps by
//! definition reach the same state in either order.
//!
//! Decisions beyond the depth bound (`COLOCK_EXPLORE_DEPTH`) are taken
//! with the default policy (lowest participant index) and grow no
//! backtrack points, bounding the search tree.
//!
//! # Liveness
//!
//! If no participant is runnable, none is in flight, and not all are done,
//! the scenario is **stuck**: some thread parked on a condvar that nothing
//! will ever signal (a lost wakeup — exactly the bug class the explorer
//! exists to catch) or a deadlock the detector failed to resolve. The run
//! is recorded as stuck, the scenario's [`Explorable::rescue`] hook is
//! invoked to unpark the engine's waiters (e.g. `begin_drain`), and the
//! scheduler switches to free-running so the process can finish instead of
//! hanging. A wall-clock guard does the same if a run makes no progress
//! for `COLOCK_EXPLORE_HANG_MS` milliseconds.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Number of active explorations in the process (hook fast-gate).
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Whether any exploration is active in this process. One relaxed load —
/// instrumented code may use it to skip label construction entirely.
#[inline(always)]
pub fn exploring() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

thread_local! {
    /// The scheduler this thread participates in, and its slot index.
    static SLOT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

fn my_slot() -> Option<(Arc<Sched>, usize)> {
    SLOT.with(|s| s.borrow().clone())
}

/// Instrumentation: the calling thread is about to start an operation.
/// Parks until the scheduler picks this thread. `label` describes the
/// operation as `"op|resource|resource|..."`; resource tokens drive the
/// conflict relation (`*` conflicts with everything, an empty list with
/// nothing). No-op for threads outside an active exploration.
#[inline(always)]
pub fn yield_point(label: impl FnOnce() -> String) {
    if exploring() {
        yield_point_slow(label());
    }
}

/// Out-of-line continuation of [`yield_point`]: keeps the thread-local
/// lookup and park machinery off instrumented hot paths (only the gate
/// load and a cold branch are inlined at each call site).
#[cold]
#[inline(never)]
fn yield_point_slow(label: String) {
    if let Some((sched, me)) = my_slot() {
        sched.park_at_yield(me, label);
    }
}

/// Instrumentation: transaction `txn` on the calling thread is about to
/// park on an engine condition variable. Non-blocking. Safe to call with
/// engine locks held.
#[inline]
pub fn before_block(txn: u64) {
    if !exploring() {
        return;
    }
    if let Some((sched, me)) = my_slot() {
        sched.on_before_block(me, txn);
    }
}

/// Instrumentation: the calling thread woke from its engine condition
/// variable and is re-evaluating. Non-blocking. Safe with engine locks
/// held.
#[inline]
pub fn after_block(txn: u64) {
    if !exploring() {
        return;
    }
    if let Some((sched, me)) = my_slot() {
        sched.on_after_block(me, txn);
    }
}

/// Instrumentation: the calling thread's operation just made transaction
/// `txn` runnable (installed a grant for a parked waiter, marked a
/// deadlock victim). Non-blocking. Safe with engine locks held.
#[inline]
pub fn note_wakeup(txn: u64) {
    if !exploring() {
        return;
    }
    if let Some((sched, _)) = my_slot() {
        sched.on_note_wakeup(txn);
    }
}

/// A scenario the explorer can re-run once per schedule.
pub trait Explorable {
    /// Builds fresh state for one run (new lock table, trace mark, ...).
    fn reset(&mut self);
    /// The per-thread bodies for this run, one per participant. Vector
    /// order is the participant index order (also the scheduler's
    /// tie-break order). Called once per run, after [`Explorable::reset`].
    fn threads(&mut self) -> Vec<Box<dyn FnOnce() + Send + 'static>>;
    /// Verifies the run after every thread finished (e.g. replay the trace
    /// through the certifier). An `Err` is recorded and stops exploration.
    fn check(&mut self) -> Result<(), String> {
        Ok(())
    }
    /// Called when a run is stuck (see module docs): unpark the engine's
    /// waiters so the process can finish (e.g. `begin_drain`).
    fn rescue(&self) {}
}

/// Exploration bounds. [`ExploreConfig::from_env`] reads
/// `COLOCK_EXPLORE_DEPTH`, `COLOCK_EXPLORE_MAX_SCHEDULES` and
/// `COLOCK_EXPLORE_HANG_MS`.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Decision points at index >= `depth` are default-scheduled and grow
    /// no backtrack points.
    pub depth: usize,
    /// Stop after this many schedules even if backtrack points remain.
    pub max_schedules: usize,
    /// Declare a run hung after this long without reaching quiescence.
    pub hang: Duration,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { depth: 48, max_schedules: 4096, hang: Duration::from_secs(10) }
    }
}

impl ExploreConfig {
    /// The default bounds with `COLOCK_EXPLORE_DEPTH`,
    /// `COLOCK_EXPLORE_MAX_SCHEDULES` and `COLOCK_EXPLORE_HANG_MS`
    /// overrides applied.
    pub fn from_env() -> Self {
        let mut cfg = ExploreConfig::default();
        if let Some(d) = env_usize("COLOCK_EXPLORE_DEPTH") {
            cfg.depth = d;
        }
        if let Some(m) = env_usize("COLOCK_EXPLORE_MAX_SCHEDULES") {
            cfg.max_schedules = m;
        }
        if let Some(ms) = env_usize("COLOCK_EXPLORE_HANG_MS") {
            cfg.hang = Duration::from_millis(ms as u64);
        }
        cfg
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// What the exploration did.
#[derive(Debug, Default)]
pub struct ExploreReport {
    /// Completed runs (one schedule each).
    pub runs: usize,
    /// Distinct decision sequences among them.
    pub distinct_schedules: usize,
    /// Deepest decision index reached in any run.
    pub max_depth: usize,
    /// Runs that hit a stuck state (lost wakeup / unresolved deadlock).
    pub stuck_runs: usize,
    /// Runs whose replayed prefix produced a different enabled set than
    /// the recording (a determinism bug in the scenario or integration).
    pub diverged_runs: usize,
    /// Runs the wall-clock hang guard had to abort.
    pub hung_runs: usize,
    /// Exploration ended because a bound was hit, not because the
    /// schedule space was exhausted.
    pub truncated: bool,
    /// First scenario check failure, if any (stops exploration).
    pub failure: Option<String>,
}

impl ExploreReport {
    /// No stuck, hung or diverged runs and no check failure.
    pub fn is_clean(&self) -> bool {
        self.stuck_runs == 0
            && self.hung_runs == 0
            && self.diverged_runs == 0
            && self.failure.is_none()
    }
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} runs, {} distinct schedules, max depth {}{}{}{}{}{}",
            self.runs,
            self.distinct_schedules,
            self.max_depth,
            if self.truncated { ", truncated" } else { ", exhaustive" },
            if self.stuck_runs > 0 { " [STUCK RUNS]" } else { "" },
            if self.hung_runs > 0 { " [HUNG RUNS]" } else { "" },
            if self.diverged_runs > 0 { " [DIVERGED]" } else { "" },
            if self.failure.is_some() { " [CHECK FAILED]" } else { "" },
        )
    }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum PState {
    /// Executing (chosen, or in flight after a wakeup).
    Busy,
    /// Parked at a yield point, ready to be chosen.
    AtYield(String),
    /// Parked on an engine condvar; not runnable until `note_wakeup`.
    Blocked,
    /// Thread body finished.
    Done,
}

#[derive(Debug, Clone)]
struct RunDecision {
    enabled: Vec<usize>,
    chosen: usize,
    label: String,
}

#[derive(Debug, Default)]
struct SchedInner {
    state: Vec<PState>,
    /// The participant the scheduler has dispatched, until it stabilizes.
    running: Option<usize>,
    /// Blocked transaction id -> participant, for `note_wakeup`.
    txn_owner: HashMap<u64, usize>,
    /// Forced choice prefix for this run (participant indices).
    forced: Vec<usize>,
    decisions: Vec<RunDecision>,
    /// Replay of the forced prefix saw a different enabled set.
    diverged: bool,
    /// All non-done participants blocked with nothing in flight.
    stuck: bool,
    /// Threads run without scheduling (after stuck/hang, to finish).
    free_run: bool,
}

struct Sched {
    m: Mutex<SchedInner>,
    /// Scheduler waits here for quiescence.
    cv_sched: Condvar,
    /// Workers wait here to be chosen.
    cv_work: Condvar,
}

impl Sched {
    fn new(participants: usize, forced: Vec<usize>) -> Self {
        Sched {
            m: Mutex::new(SchedInner {
                state: vec![PState::Busy; participants],
                forced,
                ..Default::default()
            }),
            cv_sched: Condvar::new(),
            cv_work: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedInner> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn park_at_yield(&self, me: usize, label: String) {
        let mut inner = self.lock();
        if inner.free_run {
            return;
        }
        inner.state[me] = PState::AtYield(label);
        if inner.running == Some(me) {
            inner.running = None;
        }
        self.cv_sched.notify_all();
        while inner.running != Some(me) && !inner.free_run {
            inner = self.cv_work.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        inner.state[me] = PState::Busy;
    }

    fn on_before_block(&self, me: usize, txn: u64) {
        let mut inner = self.lock();
        inner.state[me] = PState::Blocked;
        inner.txn_owner.insert(txn, me);
        if inner.running == Some(me) {
            inner.running = None;
        }
        self.cv_sched.notify_all();
    }

    fn on_after_block(&self, me: usize, txn: u64) {
        let mut inner = self.lock();
        inner.state[me] = PState::Busy;
        inner.txn_owner.remove(&txn);
        self.cv_sched.notify_all();
    }

    fn on_note_wakeup(&self, txn: u64) {
        let mut inner = self.lock();
        if let Some(&p) = inner.txn_owner.get(&txn) {
            if inner.state[p] == PState::Blocked {
                inner.state[p] = PState::Busy;
            }
        }
        self.cv_sched.notify_all();
    }

    fn on_done(&self, me: usize) {
        let mut inner = self.lock();
        inner.state[me] = PState::Done;
        if inner.running == Some(me) {
            inner.running = None;
        }
        self.cv_sched.notify_all();
    }

    /// Drives one run to completion on the calling thread. Returns once
    /// every participant is done.
    fn drive(&self, depth: usize, hang: Duration, rescue: &dyn Fn()) -> RunRecord {
        let mut hung = false;
        let mut inner = self.lock();
        loop {
            // Quiescence: nothing dispatched, nothing in flight.
            let deadline = Instant::now() + hang;
            loop {
                let busy = inner.running.is_some() || inner.state.contains(&PState::Busy);
                if !busy || inner.free_run {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    // No stable state in `hang`: a participant is stuck
                    // outside the scheduler's model. Free-run and rescue.
                    hung = true;
                    inner.free_run = true;
                    self.cv_work.notify_all();
                    drop(inner);
                    rescue();
                    inner = self.lock();
                    break;
                }
                let (g, _) = self
                    .cv_sched
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = g;
            }
            if inner.state.iter().all(|s| *s == PState::Done) {
                break;
            }
            if inner.free_run {
                // Stuck/hung: just wait for the threads to finish.
                let (g, _) = self
                    .cv_sched
                    .wait_timeout(inner, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                inner = g;
                continue;
            }
            let enabled: Vec<usize> = inner
                .state
                .iter()
                .enumerate()
                .filter_map(|(i, s)| matches!(s, PState::AtYield(_)).then_some(i))
                .collect();
            if enabled.is_empty() {
                // Everybody left is parked on an engine condvar and no
                // wakeup is in flight: a lost wakeup or unresolved
                // deadlock. Record, rescue, free-run to completion.
                inner.stuck = true;
                inner.free_run = true;
                self.cv_work.notify_all();
                drop(inner);
                rescue();
                inner = self.lock();
                continue;
            }
            let di = inner.decisions.len();
            let chosen = match inner.forced.get(di) {
                Some(&want) if enabled.contains(&want) => want,
                Some(_) => {
                    // Same prefix must reproduce the same enabled set; a
                    // miss means the integration is nondeterministic.
                    inner.diverged = true;
                    enabled[0]
                }
                None => {
                    let _ = depth; // decisions beyond `depth` still use the
                                   // default policy; the explorer just adds
                                   // no backtrack points for them.
                    enabled[0]
                }
            };
            let label = match &inner.state[chosen] {
                PState::AtYield(l) => l.clone(),
                _ => unreachable!("chosen from enabled"),
            };
            inner.decisions.push(RunDecision { enabled, chosen, label });
            inner.running = Some(chosen);
            self.cv_work.notify_all();
        }
        RunRecord {
            decisions: inner.decisions.clone(),
            stuck: inner.stuck,
            diverged: inner.diverged,
            hung,
        }
    }
}

struct RunRecord {
    decisions: Vec<RunDecision>,
    stuck: bool,
    diverged: bool,
    hung: bool,
}

/// Clears this thread's participant slot (and marks it done) even if the
/// thread body panics.
struct SlotGuard {
    sched: Arc<Sched>,
    me: usize,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.sched.on_done(self.me);
        SLOT.with(|s| *s.borrow_mut() = None);
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

/// One decision point in the persistent search tree.
struct Node {
    enabled: Vec<usize>,
    chosen: usize,
    label: String,
    /// Choices already explored from this prefix.
    done: BTreeSet<usize>,
    /// Choices that must be explored (DPOR persistent set).
    backtrack: BTreeSet<usize>,
}

/// `"op|res|res"` labels conflict when their resource token sets intersect
/// (`*` matches everything, an empty set nothing).
fn labels_conflict(a: &str, b: &str) -> bool {
    let toks = |s: &str| -> Vec<String> {
        s.split('|').skip(1).filter(|t| !t.is_empty()).map(str::to_string).collect()
    };
    let (ta, tb) = (toks(a), toks(b));
    if ta.is_empty() || tb.is_empty() {
        return false;
    }
    if ta.iter().any(|t| t == "*") || tb.iter().any(|t| t == "*") {
        return true;
    }
    let set: HashSet<&str> = ta.iter().map(String::as_str).collect();
    tb.iter().any(|t| set.contains(t.as_str()))
}

/// Runs `scenario` under every schedule the bounded DPOR search reaches,
/// checking each run. See the module docs for the exploration strategy.
pub fn explore<S: Explorable>(cfg: &ExploreConfig, scenario: &mut S) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut path: Vec<Node> = Vec::new();
    let mut forced: Vec<usize> = Vec::new();
    let mut seen: HashSet<Vec<usize>> = HashSet::new();

    ACTIVE.fetch_add(1, Ordering::Relaxed);
    loop {
        scenario.reset();
        let bodies = scenario.threads();
        let sched = Arc::new(Sched::new(bodies.len(), forced.clone()));
        let record = std::thread::scope(|scope| {
            for (i, body) in bodies.into_iter().enumerate() {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    SLOT.with(|s| *s.borrow_mut() = Some((Arc::clone(&sched), i)));
                    let _guard = SlotGuard { sched: Arc::clone(&sched), me: i };
                    yield_point(|| "start|".to_string());
                    body();
                });
            }
            sched.drive(cfg.depth, cfg.hang, &|| scenario.rescue())
        });

        report.runs += 1;
        report.max_depth = report.max_depth.max(record.decisions.len());
        if record.stuck {
            report.stuck_runs += 1;
        }
        if record.hung {
            report.hung_runs += 1;
        }
        if record.diverged {
            report.diverged_runs += 1;
        }
        seen.insert(record.decisions.iter().map(|d| d.chosen).collect());
        if let Err(e) = scenario.check() {
            report.failure = Some(e);
            break;
        }
        if record.stuck || record.hung || record.diverged {
            // The tree beyond this point is unreliable; stop here with the
            // evidence in the report.
            break;
        }

        // Merge this run into the persistent tree. The prefix up to
        // `forced.len()` already has nodes; everything after is new.
        for (i, d) in record.decisions.iter().enumerate() {
            if let Some(node) = path.get_mut(i) {
                node.chosen = d.chosen;
                node.done.insert(d.chosen);
                node.backtrack.insert(d.chosen);
                node.label = d.label.clone();
            } else {
                path.push(Node {
                    enabled: d.enabled.clone(),
                    chosen: d.chosen,
                    label: d.label.clone(),
                    done: BTreeSet::from([d.chosen]),
                    backtrack: BTreeSet::from([d.chosen]),
                });
            }
        }
        path.truncate(record.decisions.len());

        // DPOR backtrack analysis: for each step, the most recent earlier
        // step of another thread it conflicts with gets a backtrack entry.
        for k in 0..path.len() {
            let (who, label) = (path[k].chosen, path[k].label.clone());
            for m in (0..k).rev() {
                if path[m].chosen != who && labels_conflict(&path[m].label, &label) {
                    if m < cfg.depth {
                        if path[m].enabled.contains(&who) {
                            path[m].backtrack.insert(who);
                        } else {
                            let all: Vec<usize> = path[m].enabled.clone();
                            path[m].backtrack.extend(all);
                        }
                    }
                    break;
                }
            }
        }

        if report.runs >= cfg.max_schedules {
            report.truncated = true;
            break;
        }

        // Deepest decision point with an untried backtrack choice.
        let next = (0..path.len().min(cfg.depth)).rev().find_map(|j| {
            path[j].backtrack.difference(&path[j].done).next().copied().map(|c| (j, c))
        });
        match next {
            Some((j, c)) => {
                path[j].done.insert(c);
                forced = path[..j].iter().map(|n| n.chosen).collect();
                forced.push(c);
                path.truncate(j + 1);
            }
            None => {
                report.truncated |= path.len() > cfg.depth;
                break;
            }
        }
    }
    ACTIVE.fetch_sub(1, Ordering::Relaxed);
    report.distinct_schedules = seen.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Two threads appending to a shared log under conflicting labels: the
    /// explorer must reach every interleaving of [1,2] against [3].
    struct LogScenario {
        log: Arc<StdMutex<Vec<u8>>>,
        outcomes: Arc<StdMutex<HashSet<Vec<u8>>>>,
    }

    impl Explorable for LogScenario {
        fn reset(&mut self) {
            self.log.lock().unwrap().clear();
        }
        fn threads(&mut self) -> Vec<Box<dyn FnOnce() + Send + 'static>> {
            let (a, b) = (Arc::clone(&self.log), Arc::clone(&self.log));
            vec![
                Box::new(move || {
                    yield_point(|| "push|r".into());
                    a.lock().unwrap().push(1);
                    yield_point(|| "push|r".into());
                    a.lock().unwrap().push(2);
                }),
                Box::new(move || {
                    yield_point(|| "push|r".into());
                    b.lock().unwrap().push(3);
                }),
            ]
        }
        fn check(&mut self) -> Result<(), String> {
            let log = self.log.lock().unwrap().clone();
            let pos1 = log.iter().position(|&v| v == 1);
            let pos2 = log.iter().position(|&v| v == 2);
            if pos1 >= pos2 {
                return Err(format!("program order violated: {log:?}"));
            }
            self.outcomes.lock().unwrap().insert(log);
            Ok(())
        }
    }

    #[test]
    fn explores_every_interleaving_of_conflicting_steps() {
        let outcomes = Arc::new(StdMutex::new(HashSet::new()));
        let mut scenario = LogScenario {
            log: Arc::new(StdMutex::new(Vec::new())),
            outcomes: Arc::clone(&outcomes),
        };
        let report = explore(&ExploreConfig::default(), &mut scenario);
        assert!(report.is_clean(), "{report}");
        assert!(!report.truncated, "{report}");
        let outcomes = outcomes.lock().unwrap();
        let want: HashSet<Vec<u8>> =
            [vec![1, 2, 3], vec![1, 3, 2], vec![3, 1, 2]].into_iter().collect();
        assert_eq!(*outcomes, want, "missed interleavings ({report})");
        assert!(report.distinct_schedules >= 3, "{report}");
    }

    /// Non-conflicting labels must not blow up the schedule count: two
    /// threads touching disjoint resources need exactly one schedule.
    struct DisjointScenario;

    impl Explorable for DisjointScenario {
        fn reset(&mut self) {}
        fn threads(&mut self) -> Vec<Box<dyn FnOnce() + Send + 'static>> {
            vec![
                Box::new(|| yield_point(|| "op|a".into())),
                Box::new(|| yield_point(|| "op|b".into())),
            ]
        }
    }

    #[test]
    fn commuting_steps_are_not_branched_on() {
        let report = explore(&ExploreConfig::default(), &mut DisjointScenario);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.runs, 1, "{report}");
    }

    /// A lost wakeup: one thread parks forever, nothing signals it. The
    /// scheduler must detect the stuck state and run the rescue hook
    /// instead of hanging the process.
    struct StuckScenario {
        gate: Arc<(StdMutex<bool>, Condvar)>,
    }

    impl Explorable for StuckScenario {
        fn reset(&mut self) {
            *self.gate.0.lock().unwrap() = false;
        }
        fn threads(&mut self) -> Vec<Box<dyn FnOnce() + Send + 'static>> {
            let gate = Arc::clone(&self.gate);
            vec![Box::new(move || {
                yield_point(|| "wait|r".into());
                before_block(7);
                let mut open = gate.0.lock().unwrap();
                while !*open {
                    open = gate.1.wait(open).unwrap();
                }
                after_block(7);
            })]
        }
        fn rescue(&self) {
            *self.gate.0.lock().unwrap() = true;
            self.gate.1.notify_all();
        }
    }

    #[test]
    fn stuck_runs_are_detected_and_rescued() {
        let mut scenario =
            StuckScenario { gate: Arc::new((StdMutex::new(false), Condvar::new())) };
        let report = explore(&ExploreConfig::default(), &mut scenario);
        assert_eq!(report.stuck_runs, 1, "{report}");
        assert!(!report.is_clean());
    }

    /// A blocked thread woken via `note_wakeup` re-enters the schedule:
    /// the consumer must observe the value the producer published.
    struct HandoffScenario {
        cell: Arc<(StdMutex<Option<u8>>, Condvar)>,
        got: Arc<StdMutex<Vec<u8>>>,
    }

    impl Explorable for HandoffScenario {
        fn reset(&mut self) {
            *self.cell.0.lock().unwrap() = None;
            self.got.lock().unwrap().clear();
        }
        fn threads(&mut self) -> Vec<Box<dyn FnOnce() + Send + 'static>> {
            let cell_c = Arc::clone(&self.cell);
            let cell_p = Arc::clone(&self.cell);
            let got = Arc::clone(&self.got);
            vec![
                Box::new(move || {
                    yield_point(|| "recv|c".into());
                    let mut slot = cell_c.0.lock().unwrap();
                    while slot.is_none() {
                        before_block(1);
                        slot = cell_c.1.wait(slot).unwrap();
                        after_block(1);
                    }
                    got.lock().unwrap().push(slot.take().unwrap());
                }),
                Box::new(move || {
                    yield_point(|| "send|c".into());
                    *cell_p.0.lock().unwrap() = Some(42);
                    note_wakeup(1);
                    cell_p.1.notify_all();
                }),
            ]
        }
        fn check(&mut self) -> Result<(), String> {
            let got = self.got.lock().unwrap();
            if *got != vec![42] {
                return Err(format!("handoff lost: {got:?}"));
            }
            Ok(())
        }
    }

    #[test]
    fn wakeups_resume_blocked_participants() {
        let mut scenario = HandoffScenario {
            cell: Arc::new((StdMutex::new(None), Condvar::new())),
            got: Arc::new(StdMutex::new(Vec::new())),
        };
        let report = explore(&ExploreConfig::default(), &mut scenario);
        assert!(report.is_clean(), "{report}");
        // Both orders at the first decision (recv first -> block -> send,
        // and send first -> recv finds the value) must be explored.
        assert!(report.distinct_schedules >= 2, "{report}");
    }

    #[test]
    fn conflict_labels() {
        assert!(labels_conflict("a|r1", "b|r1"));
        assert!(!labels_conflict("a|r1", "b|r2"));
        assert!(labels_conflict("a|*", "b|r2"));
        assert!(!labels_conflict("start|", "b|r2"));
        assert!(labels_conflict("a|r1|r2", "b|r2|r3"));
    }

    #[test]
    fn config_defaults() {
        let cfg = ExploreConfig::default();
        assert_eq!(cfg.depth, 48);
        assert!(cfg.max_schedules >= 500);
    }
}
