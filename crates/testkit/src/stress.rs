//! Deterministic concurrency testing: predicate waits with timeouts, a
//! watchdogged multi-thread runner, a barrier-stepped (lockstep) driver and
//! a seeded single-threaded interleaving scheduler.
//!
//! The seed tests used `thread::sleep(30ms)` to "wait" for another thread
//! to reach a state — racy under load and slow everywhere. The primitives
//! here replace that pattern:
//!
//! * [`wait_until`] polls an observable predicate and fails loudly on
//!   timeout instead of silently racing,
//! * [`run_threads`] joins a thread group with a deadline, so a stuck
//!   waiter turns into a test failure (with the stuck thread ids) rather
//!   than a hung CI job,
//! * [`lockstep`] rendezvouses N threads at a barrier between rounds, so
//!   every round's operations are genuinely concurrent,
//! * [`Interleaver`] executes per-task step lists in a seeded round-robin
//!   or random order on one thread — full determinism for non-blocking
//!   (try-lock style) schedule exploration.

use crate::rng::Rng;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Polls `pred` (every millisecond) until it holds, panicking after
/// `timeout`. Returns the elapsed time on success.
pub fn wait_until(timeout: Duration, pred: impl Fn() -> bool) -> Duration {
    let start = Instant::now();
    loop {
        if pred() {
            return start.elapsed();
        }
        if start.elapsed() >= timeout {
            panic!("wait_until: predicate still false after {timeout:?}");
        }
        thread::sleep(Duration::from_millis(1));
    }
}

/// Runs `f(tid)` on `n` threads and joins them all within `timeout`.
///
/// Panics (listing the stuck thread ids) when the group does not finish in
/// time; re-raises the first worker panic otherwise. Results are returned
/// in thread-id order.
pub fn run_threads<T, F>(n: usize, timeout: Duration, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let (tx, rx) = mpsc::channel::<usize>();
    let mut handles = Vec::with_capacity(n);
    for tid in 0..n {
        let f = Arc::clone(&f);
        let tx = tx.clone();
        let handle = thread::Builder::new()
            .name(format!("stress-{tid}"))
            .spawn(move || {
                let out = panic::catch_unwind(AssertUnwindSafe(|| f(tid)));
                // Signal completion (even on panic) so the watchdog can
                // attribute failures precisely.
                let _ = tx.send(tid);
                match out {
                    Ok(v) => v,
                    Err(payload) => panic::resume_unwind(payload),
                }
            })
            .expect("spawn stress thread");
        handles.push(handle);
    }
    drop(tx);

    let deadline = Instant::now() + timeout;
    let mut finished = vec![false; n];
    for _ in 0..n {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            Ok(tid) => finished[tid] = true,
            Err(_) => {
                let stuck: Vec<usize> = finished
                    .iter()
                    .enumerate()
                    .filter(|(_, &done)| !done)
                    .map(|(tid, _)| tid)
                    .collect();
                panic!("run_threads: {stuck:?} still running after {timeout:?}");
            }
        }
    }
    handles
        .into_iter()
        .map(|h| match h.join() {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        })
        .collect()
}

/// Barrier-stepped runner: `n` threads execute `rounds` rounds of
/// `f(tid, round)`, all rendezvousing at a barrier *before* each round.
///
/// Every round's calls are therefore genuinely concurrent — the pattern
/// the lock-table wait/deadlock tests need ("all four transactions request
/// their second lock at once"). Panics on timeout like [`run_threads`].
pub fn lockstep<F>(n: usize, rounds: usize, timeout: Duration, f: F)
where
    F: Fn(usize, usize) + Send + Sync + 'static,
{
    let barrier = Arc::new(Barrier::new(n));
    run_threads(n, timeout, move |tid| {
        for round in 0..rounds {
            barrier.wait();
            f(tid, round);
        }
    });
}

/// Scheduling policy of an [`Interleaver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Strict rotation over unfinished tasks.
    RoundRobin,
    /// Seeded uniform choice among unfinished tasks.
    Random(u64),
}

/// A deterministic single-threaded interleaving driver.
///
/// Each task is a queue of steps; the interleaver repeatedly picks an
/// unfinished task (round-robin or seeded-random) and executes its next
/// step. Because everything runs on one thread, steps must be non-blocking
/// (use try-lock flavors); in exchange the whole schedule is replayable
/// from the seed.
///
/// ```
/// use colock_testkit::{Interleaver, Schedule};
/// let mut trace = Vec::new();
/// let order = Interleaver::new(Schedule::RoundRobin)
///     .run(vec![vec![1, 2], vec![10]], |task, step| trace.push((task, step)));
/// assert_eq!(trace, vec![(0, 1), (1, 10), (0, 2)]);
/// assert_eq!(order, vec![0, 1, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct Interleaver {
    schedule: Schedule,
}

impl Interleaver {
    /// Creates a driver with the given policy.
    pub fn new(schedule: Schedule) -> Self {
        Interleaver { schedule }
    }

    /// Executes every step of every task, one at a time, in the scheduled
    /// order. Returns the task-id trace of the schedule that ran.
    pub fn run<S>(
        &self,
        tasks: Vec<Vec<S>>,
        mut exec: impl FnMut(usize, S),
    ) -> Vec<usize> {
        let mut queues: Vec<std::collections::VecDeque<S>> =
            tasks.into_iter().map(Into::into).collect();
        let mut rng = match self.schedule {
            Schedule::Random(seed) => Some(Rng::seed_from_u64(seed)),
            Schedule::RoundRobin => None,
        };
        let mut order = Vec::new();
        let mut cursor = 0usize;
        loop {
            let live: Vec<usize> =
                (0..queues.len()).filter(|&i| !queues[i].is_empty()).collect();
            if live.is_empty() {
                return order;
            }
            let task = match &mut rng {
                Some(rng) => *rng.choose(&live).unwrap(),
                None => {
                    // Next live task at or after the rotating cursor.
                    let t = *live
                        .iter()
                        .find(|&&i| i >= cursor)
                        .unwrap_or(&live[0]);
                    cursor = t + 1;
                    t
                }
            };
            let step = queues[task].pop_front().unwrap();
            exec(task, step);
            order.push(task);
        }
    }
}

/// A shared round counter for ad-hoc cross-thread checkpoints: threads
/// [`Checkpoint::arrive`] at a phase and others [`Checkpoint::wait_for`]
/// it without sleeping for fixed intervals.
#[derive(Debug, Default)]
pub struct Checkpoint {
    phase: AtomicUsize,
}

impl Checkpoint {
    /// A checkpoint at phase 0.
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// Marks `phase` (and any earlier phase) as reached.
    pub fn arrive(&self, phase: usize) {
        self.phase.fetch_max(phase, Ordering::SeqCst);
    }

    /// Blocks (polling) until `phase` has been reached; panics after
    /// `timeout`.
    pub fn wait_for(&self, phase: usize, timeout: Duration) {
        wait_until(timeout, || self.phase.load(Ordering::SeqCst) >= phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_until_observes_progress() {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            f2.store(1, Ordering::SeqCst);
        });
        wait_until(Duration::from_secs(2), || flag.load(Ordering::SeqCst) == 1);
        h.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "wait_until")]
    fn wait_until_times_out() {
        wait_until(Duration::from_millis(10), || false);
    }

    #[test]
    fn run_threads_returns_in_tid_order() {
        let out = run_threads(8, Duration::from_secs(5), |tid| tid * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    #[should_panic(expected = "still running")]
    fn run_threads_watchdog_fires() {
        run_threads(2, Duration::from_millis(20), |tid| {
            if tid == 1 {
                thread::sleep(Duration::from_secs(1));
            }
        });
    }

    #[test]
    fn run_threads_propagates_worker_panic() {
        let err = std::panic::catch_unwind(|| {
            run_threads(2, Duration::from_secs(5), |tid| {
                if tid == 0 {
                    panic!("worker zero failed");
                }
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker zero failed");
    }

    #[test]
    fn lockstep_rounds_are_aligned() {
        // Every thread observes that no thread is a full round ahead when
        // it leaves the barrier.
        let counters: Arc<Vec<AtomicUsize>> =
            Arc::new((0..4).map(|_| AtomicUsize::new(0)).collect());
        let c = Arc::clone(&counters);
        lockstep(4, 10, Duration::from_secs(10), move |tid, round| {
            c[tid].store(round + 1, Ordering::SeqCst);
            for other in c.iter() {
                let r = other.load(Ordering::SeqCst);
                assert!(r >= round && r <= round + 1, "round skew: {r} vs {round}");
            }
        });
    }

    #[test]
    fn interleaver_round_robin_is_fair() {
        let order = Interleaver::new(Schedule::RoundRobin)
            .run(vec![vec![(); 3], vec![(); 3], vec![(); 3]], |_, _| {});
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn interleaver_random_is_seed_deterministic() {
        let tasks = || vec![vec![(); 5], vec![(); 5], vec![(); 5]];
        let a = Interleaver::new(Schedule::Random(11)).run(tasks(), |_, _| {});
        let b = Interleaver::new(Schedule::Random(11)).run(tasks(), |_, _| {});
        let c = Interleaver::new(Schedule::Random(12)).run(tasks(), |_, _| {});
        assert_eq!(a, b);
        assert_eq!(a.len(), 15);
        assert!(a != c || a.len() == 15, "different seeds usually differ");
    }

    #[test]
    fn checkpoint_orders_phases() {
        let cp = Arc::new(Checkpoint::new());
        let cp2 = Arc::clone(&cp);
        let h = thread::spawn(move || {
            cp2.wait_for(1, Duration::from_secs(2));
            cp2.arrive(2);
        });
        cp.arrive(1);
        cp.wait_for(2, Duration::from_secs(2));
        h.join().unwrap();
    }
}
