//! Exponential backoff with seeded full jitter.
//!
//! Retrying a short lock against a just-recovered system (or any contended
//! resource) with a fixed delay makes every loser retry in lock-step and
//! re-collide. The standard fix is exponential backoff with *full jitter*:
//! the `k`-th retry sleeps a uniform random duration in
//! `[0, min(cap, base * 2^k))`. Drawing the jitter from the seeded
//! [`Rng`] keeps retry schedules reproducible under
//! `COLOCK_TEST_SEED`-style replay.

use crate::rng::Rng;

/// Exponential backoff state with full seeded jitter.
///
/// Units are caller-defined (ticks, microseconds, …); the struct only does
/// the arithmetic and the jitter draw.
#[derive(Debug)]
pub struct Backoff {
    base: u64,
    cap: u64,
    attempt: u32,
    rng: Rng,
}

impl Backoff {
    /// New backoff: first window is `[0, base)`, doubling per attempt,
    /// clamped to `cap`. `base` is raised to at least 1 so the window is
    /// never empty.
    pub fn new(seed: u64, base: u64, cap: u64) -> Backoff {
        Backoff { base: base.max(1), cap: cap.max(1), attempt: 0, rng: Rng::seed_from_u64(seed) }
    }

    /// Draws the next delay: uniform in `[0, min(cap, base << attempt))`,
    /// then advances the attempt counter.
    pub fn next_delay(&mut self) -> u64 {
        let window = self
            .base
            .checked_shl(self.attempt.min(63))
            .unwrap_or(u64::MAX)
            .min(self.cap)
            .max(1);
        self.attempt = self.attempt.saturating_add(1);
        self.rng.gen_range(0..window)
    }

    /// Retries drawn so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the exponent (keeps the RNG stream — a reset schedule is still
    /// part of the same deterministic replay).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_double_and_clamp() {
        let mut b = Backoff::new(1, 4, 64);
        // Draw many delays per attempt level by resetting; verify bounds.
        for attempt in 0..8u32 {
            let window = (4u64 << attempt.min(63)).min(64);
            let mut fresh = Backoff::new(42 + u64::from(attempt), 4, 64);
            fresh.attempt = attempt;
            for _ in 0..32 {
                let d = fresh.next_delay();
                assert!(d < window, "delay {d} outside window {window}");
                fresh.attempt = attempt;
            }
        }
        // Attempt counter advances.
        b.next_delay();
        b.next_delay();
        assert_eq!(b.attempts(), 2);
        b.reset();
        assert_eq!(b.attempts(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(9, 2, 1 << 20);
        let mut b = Backoff::new(9, 2, 1 << 20);
        let sa: Vec<u64> = (0..16).map(|_| a.next_delay()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_delay()).collect();
        assert_eq!(sa, sb);
        // Different seeds diverge (overwhelmingly likely over 16 draws).
        let mut c = Backoff::new(10, 2, 1 << 20);
        let sc: Vec<u64> = (0..16).map(|_| c.next_delay()).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn extreme_attempts_do_not_overflow() {
        let mut b = Backoff::new(3, u64::MAX / 2, u64::MAX);
        for _ in 0..80 {
            let _ = b.next_delay();
        }
        assert_eq!(b.attempts(), 80);
    }
}
