//! A small hand-rolled, line-oriented encode/decode — the workspace's
//! replacement for `serde` where bytes actually hit a medium (long-lock
//! persistence in `colock-lockmgr`).
//!
//! Format: one *record* per line; a record is tab-separated *fields*; a
//! field is escaped UTF-8 (`\\`, `\t`, `\n`, `\r` are backslash-escaped).
//! The format is trivially greppable, diffable and append-friendly, which
//! is all a crash-survivable lock image needs.
//!
//! ```
//! use colock_testkit::codec::{decode_record, encode_record, FieldCodec};
//!
//! let line = encode_record(&["cells/c1".to_string(), 7u64.to_field(), "X".into()]);
//! let fields = decode_record(&line).unwrap();
//! assert_eq!(fields[0], "cells/c1");
//! assert_eq!(u64::from_field(&fields[1]).unwrap(), 7);
//! ```

use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A field could not be parsed as the requested type.
    BadField {
        /// The offending field text.
        field: String,
        /// The type it failed to parse as.
        expected: &'static str,
    },
    /// A backslash escape was malformed or dangling.
    BadEscape(String),
    /// A record had the wrong number of fields.
    BadArity {
        /// Fields found.
        got: usize,
        /// Fields required.
        want: usize,
    },
    /// A document header/trailer was missing or unrecognized.
    BadHeader(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadField { field, expected } => {
                write!(f, "field {field:?} is not a valid {expected}")
            }
            CodecError::BadEscape(s) => write!(f, "malformed escape in {s:?}"),
            CodecError::BadArity { got, want } => {
                write!(f, "record has {got} fields, expected {want}")
            }
            CodecError::BadHeader(s) => write!(f, "bad header: {s:?}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Escapes one field (backslash, tab, newline, carriage return).
pub fn escape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape`].
pub fn unescape(field: &str) -> Result<String, CodecError> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return Err(CodecError::BadEscape(field.to_string())),
        }
    }
    Ok(out)
}

/// Encodes fields into one record line (no trailing newline).
pub fn encode_record<S: AsRef<str>>(fields: &[S]) -> String {
    fields
        .iter()
        .map(|f| escape(f.as_ref()))
        .collect::<Vec<_>>()
        .join("\t")
}

/// Decodes one record line back into its fields.
pub fn decode_record(line: &str) -> Result<Vec<String>, CodecError> {
    line.split('\t').map(unescape).collect()
}

/// Checks a decoded record for an exact field count.
pub fn expect_arity(fields: &[String], want: usize) -> Result<(), CodecError> {
    if fields.len() == want {
        Ok(())
    } else {
        Err(CodecError::BadArity { got: fields.len(), want })
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
/// the long-lock journal stamps on every record so torn or bit-rotted tails
/// are detected at replay rather than re-adopted as locks.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Types that encode to / decode from a single record field.
pub trait FieldCodec: Sized {
    /// The field text of this value (must survive [`escape`]/[`unescape`]).
    fn to_field(&self) -> String;
    /// Parses the field text back.
    fn from_field(field: &str) -> Result<Self, CodecError>;
}

impl FieldCodec for String {
    fn to_field(&self) -> String {
        self.clone()
    }
    fn from_field(field: &str) -> Result<Self, CodecError> {
        Ok(field.to_string())
    }
}

macro_rules! impl_field_codec_parse {
    ($($t:ty => $name:literal),* $(,)?) => {$(
        impl FieldCodec for $t {
            fn to_field(&self) -> String {
                self.to_string()
            }
            fn from_field(field: &str) -> Result<Self, CodecError> {
                field.parse().map_err(|_| CodecError::BadField {
                    field: field.to_string(),
                    expected: $name,
                })
            }
        }
    )*};
}

impl_field_codec_parse! {
    u8 => "u8", u16 => "u16", u32 => "u32", u64 => "u64", usize => "usize",
    i8 => "i8", i16 => "i16", i32 => "i32", i64 => "i64", isize => "isize",
    bool => "bool", f64 => "f64",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip_on_nasty_strings() {
        for s in ["", "plain", "a\tb", "a\nb\r", "back\\slash", "\\t literal", "mixed\t\\\n"] {
            assert_eq!(unescape(&escape(s)).unwrap(), s, "{s:?}");
        }
    }

    #[test]
    fn record_roundtrip_preserves_field_boundaries() {
        let fields = vec!["a\tb".to_string(), "".to_string(), "c\\nd".to_string()];
        let line = encode_record(&fields);
        assert!(!line.contains('\n'));
        assert_eq!(decode_record(&line).unwrap(), fields);
    }

    #[test]
    fn dangling_escape_is_an_error() {
        assert!(matches!(unescape("oops\\"), Err(CodecError::BadEscape(_))));
        assert!(matches!(unescape("bad\\x"), Err(CodecError::BadEscape(_))));
    }

    #[test]
    fn numeric_fields_roundtrip() {
        assert_eq!(u64::from_field(&u64::MAX.to_field()).unwrap(), u64::MAX);
        assert_eq!(i64::from_field(&(-42i64).to_field()).unwrap(), -42);
        assert!(bool::from_field("true").unwrap());
        assert!(u64::from_field("not-a-number").is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Reference values for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        // Single-bit damage is detected.
        assert_ne!(crc32(b"grant\tcells/c1\t7\tX"), crc32(b"grant\tcells/c1\t7\tS"));
    }

    #[test]
    fn arity_check() {
        let f = decode_record("a\tb").unwrap();
        assert!(expect_arity(&f, 2).is_ok());
        assert_eq!(expect_arity(&f, 3), Err(CodecError::BadArity { got: 2, want: 3 }));
    }
}
