//! A minimal property-testing harness: generate N random cases from a
//! seeded [`Rng`], run a property over each, and on failure shrink the
//! input and report the per-case seed so the run can be replayed.
//!
//! The surface is deliberately tiny compared to `proptest`: a generator is
//! just a closure `Fn(&mut Rng) -> T`, a property is `Fn(&T) -> Result<(),
//! String>` (the [`ensure!`](crate::ensure)/[`ensure_eq!`](crate::ensure_eq) macros build the `Err` arm),
//! and shrinking comes from the [`Shrink`] trait implemented for integers,
//! strings, vectors, options and tuples.
//!
//! # Reproducing failures
//!
//! Every failure panics with a message of the form
//!
//! ```text
//! property 'crates/foo/tests/proptests.rs:17' failed at case 13 (case seed 0x53a0...):
//!   <reason>
//! replay with: COLOCK_TEST_SEED=0x53a0... cargo test ...
//! ```
//!
//! Setting `COLOCK_TEST_SEED` makes the *first* case of every `forall!` use
//! exactly that seed, so the failing input is regenerated immediately.

use crate::rng::{splitmix64, Rng};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Default base seed when `COLOCK_TEST_SEED` is not set. Fixed, so CI runs
/// are deterministic by default.
pub const DEFAULT_SEED: u64 = 0xC010_C0DE_5EED_0001;

/// Environment variable that overrides the base seed (decimal or `0x` hex).
pub const SEED_ENV: &str = "COLOCK_TEST_SEED";

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it (case 0 uses it
    /// verbatim, which is what makes `COLOCK_TEST_SEED` replays exact).
    pub seed: u64,
    /// Upper bound on accepted shrink steps before giving up.
    pub max_shrink_steps: u32,
}

impl Config {
    /// `cases` cases with the seed taken from [`SEED_ENV`] when present,
    /// [`DEFAULT_SEED`] otherwise.
    pub fn from_env(cases: u32) -> Self {
        Config { cases, seed: seed_from_env().unwrap_or(DEFAULT_SEED), max_shrink_steps: 1024 }
    }
}

/// Parses [`SEED_ENV`] (decimal, or hex with a `0x` prefix).
pub fn seed_from_env() -> Option<u64> {
    let raw = std::env::var(SEED_ENV).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("{SEED_ENV}={raw:?} is not a u64 (decimal or 0x-hex)"),
    }
}

/// The seed of case `i` for base seed `base`.
fn case_seed(base: u64, i: u32) -> u64 {
    if i == 0 {
        base
    } else {
        let mut s = base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut s)
    }
}

/// Values the harness knows how to shrink toward "smaller" counterexamples.
///
/// `shrink` returns candidate replacements, most aggressive first; the
/// runner greedily takes the first candidate that still fails. An empty
/// vector means the value is fully shrunk. Custom test-local types can opt
/// out with [`crate::no_shrink!`].
pub trait Shrink: Sized {
    /// Candidate smaller values, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    let half = *self / 2;
                    if half != 0 && half != *self {
                        out.push(half);
                    }
                    if *self > 0 {
                        out.push(*self - 1);
                    } else {
                        out.push(*self + 1);
                    }
                }
                out
            }
        }
    )*};
}

impl_shrink_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self != 0.0 {
            out.push(0.0);
            let t = self.trunc();
            if t != *self {
                out.push(t);
            }
            out.push(self / 2.0);
        }
        out
    }
}

impl Shrink for char {
    fn shrink(&self) -> Vec<Self> {
        if *self != 'a' {
            vec!['a']
        } else {
            Vec::new()
        }
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let chars: Vec<char> = self.chars().collect();
        let n = chars.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        out.push(String::new());
        if n > 1 {
            out.push(chars[..n / 2].iter().collect());
            out.push(chars[1..].iter().collect());
            out.push(chars[..n - 1].iter().collect());
        }
        // Simplify one character at a time.
        for (i, &c) in chars.iter().enumerate() {
            if c != 'a' {
                let mut simpler = chars.clone();
                simpler[i] = 'a';
                out.push(simpler.into_iter().collect());
            }
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        // Drop single elements.
        for i in 0..n {
            let mut fewer = self.clone();
            fewer.remove(i);
            out.push(fewer);
        }
        // Shrink single elements.
        for i in 0..n {
            for cand in self[i].shrink() {
                let mut smaller = self.clone();
                smaller[i] = cand;
                out.push(smaller);
            }
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Shrink + Clone),+> Shrink for ($($t,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$n.shrink() {
                        let mut smaller = self.clone();
                        smaller.$n = cand;
                        out.push(smaller);
                    }
                )+
                out
            }
        }
    )+};
}

impl_shrink_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Implements a no-op [`Shrink`] for test-local types that have no natural
/// "smaller" form (command enums, opaque configs, ...).
#[macro_export]
macro_rules! no_shrink {
    ($($t:ty),* $(,)?) => {$(
        impl $crate::prop::Shrink for $t {}
    )*};
}

/// Runs `prop` while swallowing panic *output* on this thread (the panic
/// still unwinds and is caught). The harness probes many failing inputs
/// during shrinking; printing every backtrace would bury the report.
fn quiet<R>(f: impl FnOnce() -> R) -> R {
    static INSTALL: Once = Once::new();
    thread_local! {
        static QUIET: Cell<bool> = const { Cell::new(false) };
    }
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
    QUIET.with(|q| q.set(true));
    let out = f();
    QUIET.with(|q| q.set(false));
    out
}

fn run_case<T>(prop: &impl Fn(&T) -> Result<(), String>, value: &T) -> Result<(), String> {
    match quiet(|| panic::catch_unwind(AssertUnwindSafe(|| prop(value)))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Runs `cfg.cases` cases of `prop` over values produced by `gen`.
///
/// Prefer the [`crate::forall!`] macro, which fills in `name` from the call
/// site. On failure the input is shrunk (greedy first-failing-candidate)
/// and the run panics with the case seed and a replay command.
pub fn run_forall<T, G, P>(name: &str, cfg: Config, gen: G, prop: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let seed = case_seed(cfg.seed, case);
        let mut rng = Rng::seed_from_u64(seed);
        let value = gen(&mut rng);
        let Err(reason) = run_case(&prop, &value) else {
            continue;
        };

        // Shrink: repeatedly take the first failing shrink candidate.
        let mut current = value;
        let mut current_reason = reason;
        let mut steps = 0;
        'outer: while steps < cfg.max_shrink_steps {
            for cand in current.shrink() {
                if let Err(r) = run_case(&prop, &cand) {
                    current = cand;
                    current_reason = r;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }

        panic!(
            "property '{name}' failed at case {case} (case seed {seed:#018x}):\n  \
             {current_reason}\n  input ({steps} shrink steps): {current:?}\n\
             replay with: {SEED_ENV}={seed:#x}"
        );
    }
}

/// Runs `cases` cases of a property over a seeded generator.
///
/// ```
/// colock_testkit::forall!(cases: 64, |rng| rng.gen_range(0..100u32), |&n| {
///     colock_testkit::ensure!(n < 100, "out of range: {n}");
///     Ok(())
/// });
/// ```
#[macro_export]
macro_rules! forall {
    (cases: $cases:expr, $gen:expr, $prop:expr $(,)?) => {
        $crate::prop::run_forall(
            concat!(file!(), ":", line!()),
            $crate::prop::Config::from_env($cases),
            $gen,
            $prop,
        )
    };
    ($gen:expr, $prop:expr $(,)?) => {
        $crate::forall!(cases: 256, $gen, $prop)
    };
}

/// Fails the surrounding property when the condition does not hold.
#[macro_export]
macro_rules! ensure {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("ensure failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property when the two expressions differ.
#[macro_export]
macro_rules! ensure_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "ensure_eq failed: {} != {} ({a:?} vs {b:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!("{} ({a:?} vs {b:?})", format!($($fmt)+)));
        }
    }};
}

/// Fails the surrounding property when the two expressions are equal.
#[macro_export]
macro_rules! ensure_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "ensure_ne failed: {} == {} ({a:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

// ---- generator helpers -----------------------------------------------------

/// A vector whose length is drawn from `len`, elements from `f`.
pub fn vec_of<T>(
    rng: &mut Rng,
    len: std::ops::Range<usize>,
    mut f: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = if len.start == len.end { len.start } else { rng.gen_range(len) };
    (0..n).map(|_| f(rng)).collect()
}

/// A string of length drawn from `len` over the characters of `alphabet`.
pub fn string_of(rng: &mut Rng, alphabet: &str, len: std::ops::Range<usize>) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    assert!(!chars.is_empty(), "empty alphabet");
    let n = rng.gen_range(len);
    (0..n).map(|_| *rng.choose(&chars).unwrap()).collect()
}

/// Lowercase ASCII string with length in `len`.
pub fn alpha_string(rng: &mut Rng, len: std::ops::Range<usize>) -> String {
    string_of(rng, "abcdefghijklmnopqrstuvwxyz", len)
}

/// An arbitrary string (printable ASCII with occasional unicode and control
/// characters) with length in `len` — the stand-in for proptest's `.{n,m}`.
pub fn any_string(rng: &mut Rng, len: std::ops::Range<usize>) -> String {
    let n = rng.gen_range(len);
    (0..n)
        .map(|_| match rng.gen_range(0..10u32) {
            0 => char::from_u32(rng.gen_range(1..0xD800u32)).unwrap_or('\u{FFFD}'),
            1 => char::from_u32(rng.gen_range(0..32u32)).unwrap_or('\n'),
            _ => char::from(rng.gen_range(0x20..0x7Fu8)),
        })
        .collect()
}

/// An arbitrary `i64` biased toward small magnitudes and boundary values —
/// the stand-in for proptest's `any::<i64>()`.
pub fn any_i64(rng: &mut Rng) -> i64 {
    match rng.gen_range(0..8u32) {
        0 => 0,
        1 => *rng.choose(&[1, -1, i64::MAX, i64::MIN, i64::MAX - 1, i64::MIN + 1]).unwrap(),
        2 | 3 => rng.gen_range(-100..100),
        _ => rng.next_u64() as i64,
    }
}

/// An arbitrary finite `f64`.
pub fn any_finite_f64(rng: &mut Rng) -> f64 {
    loop {
        let f = match rng.gen_range(0..4u32) {
            0 => rng.gen_f64(),
            1 => rng.gen_f64() * 1e9 - 5e8,
            2 => *rng.choose(&[0.0, -0.0, 1.0, -1.0, f64::MAX, f64::MIN]).unwrap(),
            _ => f64::from_bits(rng.next_u64()),
        };
        if f.is_finite() {
            return f;
        }
    }
}

/// Picks an index with probability proportional to `weights` (the stand-in
/// for proptest's weighted `prop_oneof!`). Panics when all weights are 0.
pub fn pick_weighted(rng: &mut Rng, weights: &[u32]) -> usize {
    let total: u32 = weights.iter().sum();
    assert!(total > 0, "all weights zero");
    let mut roll = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if roll < w {
            return i;
        }
        roll -= w;
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run_forall(
            "always-true",
            Config { cases: 50, seed: 1, max_shrink_steps: 16 },
            |rng| rng.gen_range(0..10u32),
            |_| {
                // Count via a cell-free trick: properties are Fn, so count
                // outside through an AtomicU32 would be needed; keep simple.
                Ok(())
            },
        );
        count += 50;
        assert_eq!(count, 50);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let err = std::panic::catch_unwind(|| {
            run_forall(
                "shrinks-to-bound",
                Config { cases: 100, seed: 2, max_shrink_steps: 256 },
                |rng| rng.gen_range(0..1000u32),
                |&n| {
                    ensure!(n < 10, "too big: {n}");
                    Ok(())
                },
            )
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("case seed"), "{msg}");
        assert!(msg.contains(SEED_ENV), "{msg}");
        // Greedy shrinking must land on the minimal counterexample, 10.
        assert!(msg.contains("input") && msg.contains("10"), "{msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let err = std::panic::catch_unwind(|| {
            run_forall(
                "panics",
                Config { cases: 3, seed: 3, max_shrink_steps: 4 },
                |rng| rng.gen_range(0..10u32),
                |_| -> Result<(), String> { panic!("boom") },
            )
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("panicked: boom"), "{msg}");
    }

    #[test]
    fn vec_shrink_reaches_empty() {
        let v = vec![3u32, 5, 7];
        assert!(v.shrink().contains(&Vec::new()));
    }

    #[test]
    fn case_zero_uses_base_seed_verbatim() {
        assert_eq!(case_seed(0xABCD, 0), 0xABCD);
        assert_ne!(case_seed(0xABCD, 1), 0xABCD);
    }

    #[test]
    fn pick_weighted_respects_zero_weights() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..100 {
            let i = pick_weighted(&mut rng, &[0, 5, 0, 3]);
            assert!(i == 1 || i == 3);
        }
    }
}
