//! A micro-benchmark timer: warmup, batched sampling, min/median/p99
//! reporting, one JSON line per benchmark on stdout.
//!
//! The surface intentionally mirrors the sliver of `criterion` the bench
//! binaries used, so a port is mechanical:
//!
//! ```no_run
//! use colock_testkit::{black_box, BenchHarness};
//!
//! let mut h = BenchHarness::new();
//! let mut g = h.group("lockmgr");
//! g.bench("acquire_release_x", |b| {
//!     b.iter(|| black_box(21u64) * 2);
//! });
//! ```
//!
//! Timing model: a warmup phase sizes a batch so one batch takes roughly
//! `TARGET_BATCH`; the sampling phase then measures whole batches and
//! divides by the batch size, which keeps `Instant` overhead out of the
//! per-iteration numbers. `COLOCK_BENCH_MS` scales the sampling budget.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Target wall time of one measured batch.
const TARGET_BATCH: Duration = Duration::from_micros(50);
/// Warmup budget per benchmark.
const WARMUP: Duration = Duration::from_millis(50);
/// Default sampling budget per benchmark (override with `COLOCK_BENCH_MS`).
const DEFAULT_SAMPLE_BUDGET_MS: u64 = 300;
/// Cap on the number of collected samples.
const MAX_SAMPLES: usize = 2000;

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Group name.
    pub group: String,
    /// Benchmark name.
    pub name: String,
    /// Total measured iterations.
    pub iters: u64,
    /// Fastest per-iteration time observed (ns).
    pub min_ns: f64,
    /// Median per-iteration time (ns).
    pub median_ns: f64,
    /// 99th-percentile per-iteration time (ns).
    pub p99_ns: f64,
}

impl BenchReport {
    /// The one-line JSON rendering printed to stdout.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"iters\":{},\"min_ns\":{:.1},\"median_ns\":{:.1},\"p99_ns\":{:.1}}}",
            self.group, self.name, self.iters, self.min_ns, self.median_ns, self.p99_ns
        )
    }
}

/// Collects per-iteration timings for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    iters: u64,
}

impl Bencher {
    /// Measures `f` repeatedly (warmup, then batched sampling).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup: run until the budget elapses, counting iterations to size
        // the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((TARGET_BATCH.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let budget_ms = std::env::var("COLOCK_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SAMPLE_BUDGET_MS);
        let budget = Duration::from_millis(budget_ms);
        let sample_start = Instant::now();
        while sample_start.elapsed() < budget && self.samples_ns.len() < MAX_SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            self.samples_ns.push(elapsed.as_nanos() as f64 / batch as f64);
            self.iters += batch;
        }
    }
}

/// A named group of benchmarks (mirrors criterion's `benchmark_group`).
pub struct BenchGroup<'a> {
    harness: &'a mut BenchHarness,
    name: String,
}

impl BenchGroup<'_> {
    /// Runs one benchmark and prints its JSON line.
    pub fn bench(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> BenchReport {
        let mut b = Bencher::default();
        f(&mut b);
        let mut samples = b.samples_ns;
        assert!(!samples.is_empty(), "bench '{name}' never called Bencher::iter");
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |q: f64| samples[(((samples.len() - 1) as f64) * q).round() as usize];
        let report = BenchReport {
            group: self.name.clone(),
            name: name.to_string(),
            iters: b.iters,
            min_ns: samples[0],
            median_ns: pct(0.5),
            p99_ns: pct(0.99),
        };
        println!("{}", report.to_json());
        self.harness.reports.push(report.clone());
        report
    }

    /// Criterion-compat no-op.
    pub fn finish(self) {}
}

/// Entry point for a bench binary: hands out groups and keeps all reports.
#[derive(Debug, Default)]
pub struct BenchHarness {
    reports: Vec<BenchReport>,
}

impl BenchHarness {
    /// An empty harness.
    pub fn new() -> Self {
        BenchHarness::default()
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> BenchGroup<'_> {
        BenchGroup { harness: self, name: name.to_string() }
    }

    /// All reports produced so far.
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let r = BenchReport {
            group: "g".into(),
            name: "b".into(),
            iters: 10,
            min_ns: 1.25,
            median_ns: 2.0,
            p99_ns: 3.5,
        };
        assert_eq!(
            r.to_json(),
            "{\"group\":\"g\",\"bench\":\"b\",\"iters\":10,\"min_ns\":1.2,\"median_ns\":2.0,\"p99_ns\":3.5}"
        );
    }

    #[test]
    fn bencher_collects_ordered_percentiles() {
        // Keep the budget tiny so the unit test is fast.
        std::env::set_var("COLOCK_BENCH_MS", "5");
        let mut h = BenchHarness::new();
        let mut g = h.group("unit");
        let r = g.bench("noop", |b| b.iter(|| black_box(1u64).wrapping_add(1)));
        assert!(r.iters > 0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p99_ns);
        std::env::remove_var("COLOCK_BENCH_MS");
    }
}
