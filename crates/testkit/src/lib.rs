//! Hermetic, zero-dependency test substrate for the colock workspace.
//!
//! The tier-1 gate of this repository must run on a machine with **no
//! network**: nothing here (or anywhere in the workspace) may pull a
//! registry crate. This crate replaces the five external dependencies the
//! seed leaned on:
//!
//! * [`rng`] — a seedable SplitMix64 / xoshiro256++ PRNG with the
//!   `gen_range` / `shuffle` / `choose` surface the simulation workloads
//!   and bench binaries use (replaces `rand`),
//! * [`prop`] — a minimal property-testing harness ([`forall!`]) with case
//!   counts, failing-seed reporting and integer/vec/string shrinking
//!   (replaces `proptest`),
//! * [`stress`] — a deterministic concurrency stressor: seeded
//!   round-robin/random interleaving driver, a barrier-stepped multi-thread
//!   runner and predicate waits with timeouts (replaces the
//!   `thread::sleep`-and-hope pattern),
//! * [`bench`](mod@bench) — a micro-bench timer (warmup + N iterations,
//!   min/median/p99, JSON lines on stdout — replaces `criterion`),
//! * [`codec`] — a small hand-rolled line-oriented encode/decode (plus a
//!   CRC-32) used by `colock-lockmgr`'s long-lock persistence (replaces
//!   `serde`),
//! * [`fault`] — deterministic crash-point injection ([`FaultPlan`]): crash a
//!   durable medium before/after/mid-way through its *n*-th append, driven by
//!   the seeded PRNG, so recovery tests can sweep every crash of a schedule,
//! * [`backoff`] — exponential backoff with seeded full jitter for retry
//!   loops that must not re-collide in lock-step.
//!
//! Reproducing a property-test failure: every failure report prints the
//! per-case seed; re-run with `COLOCK_TEST_SEED=<seed>` to replay that case
//! first, deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod bench;
pub mod codec;
pub mod explore;
pub mod fault;
pub mod prop;
pub mod rng;
pub mod stress;

pub use backoff::Backoff;
pub use bench::{black_box, BenchHarness};
pub use explore::{Explorable, ExploreConfig, ExploreReport};
pub use fault::{CrashPoint, FaultPlan};
pub use prop::{run_forall, Config, Shrink};
pub use rng::Rng;
pub use stress::{lockstep, run_threads, wait_until, Interleaver, Schedule};
