//! Deterministic fault injection — crash-point hooks for recovery tests.
//!
//! A [`FaultPlan`] arms a single simulated crash at the *n*-th append a
//! durable medium performs, at one of three [`CrashPoint`]s. The consumer
//! (the long-lock journal in `colock-lockmgr`) calls [`FaultPlan::on_append`]
//! once per append; the plan fires exactly once and never again, so a plan
//! describes one crash and a sweep over `(point, nth)` enumerates every
//! possible crash of a schedule.
//!
//! Plans are plain data driven by the seeded [`Rng`] (via
//! [`FaultPlan::seeded`]) or enumerated exhaustively ([`FaultPlan::crash_at`]),
//! so every crash a test observes is reproducible from its seed.

use crate::rng::Rng;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Where, relative to one journal append, the simulated crash strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Power is lost before any byte of the record reaches the medium: the
    /// record is wholly absent after restart.
    BeforeAppend,
    /// Power is lost after the record (and its terminator) is durable: the
    /// record is wholly present after restart.
    AfterAppend,
    /// Power is lost mid-write: a torn prefix of the record, with no
    /// terminator, is what restart finds.
    MidRecord,
}

impl CrashPoint {
    /// All crash points, in sweep order.
    pub const ALL: [CrashPoint; 3] =
        [CrashPoint::BeforeAppend, CrashPoint::AfterAppend, CrashPoint::MidRecord];
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CrashPoint::BeforeAppend => "before-append",
            CrashPoint::AfterAppend => "after-append",
            CrashPoint::MidRecord => "mid-record",
        })
    }
}

/// A one-shot crash plan: fire `point` on the `nth` append (1-based).
///
/// Thread-safe; the fire decision is a single atomic increment so a plan can
/// sit on the hot path of a concurrent journal.
#[derive(Debug)]
pub struct FaultPlan {
    point: CrashPoint,
    nth: u64,
    seen: AtomicU64,
    fired: AtomicBool,
}

impl FaultPlan {
    /// Crash at `point` on the `nth` append (1-based). `nth == 0` never fires.
    pub fn crash_at(point: CrashPoint, nth: u64) -> FaultPlan {
        FaultPlan { point, nth, seen: AtomicU64::new(0), fired: AtomicBool::new(false) }
    }

    /// Seeded random plan: uniform crash point and uniform append index in
    /// `1..=max_appends` drawn from `rng`. `max_appends == 0` yields a plan
    /// that never fires.
    pub fn seeded(rng: &mut Rng, max_appends: u64) -> FaultPlan {
        let point = *rng.choose(&CrashPoint::ALL).expect("non-empty");
        let nth = if max_appends == 0 { 0 } else { rng.gen_range(0..max_appends) + 1 };
        FaultPlan::crash_at(point, nth)
    }

    /// Called once per append by the medium. Returns `Some(point)` exactly
    /// when this append is the one the plan crashes on.
    pub fn on_append(&self) -> Option<CrashPoint> {
        let n = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        if n == self.nth {
            self.fired.store(true, Ordering::Relaxed);
            Some(self.point)
        } else {
            None
        }
    }

    /// Whether the plan has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Appends observed so far (fired or not) — lets a fault-free dry run
    /// reuse a never-firing plan as an append counter.
    pub fn appends_seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// The crash point this plan fires at.
    pub fn point(&self) -> CrashPoint {
        self.point
    }

    /// The 1-based append index this plan fires at (0 = never).
    pub fn nth(&self) -> u64 {
        self.nth
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crash {} at append #{}", self.point, self.nth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_nth() {
        let plan = FaultPlan::crash_at(CrashPoint::MidRecord, 3);
        assert_eq!(plan.on_append(), None);
        assert!(!plan.fired());
        assert_eq!(plan.on_append(), None);
        assert_eq!(plan.on_append(), Some(CrashPoint::MidRecord));
        assert!(plan.fired());
        assert_eq!(plan.on_append(), None);
        assert_eq!(plan.appends_seen(), 4);
    }

    #[test]
    fn zeroth_never_fires() {
        let plan = FaultPlan::crash_at(CrashPoint::BeforeAppend, 0);
        for _ in 0..16 {
            assert_eq!(plan.on_append(), None);
        }
        assert!(!plan.fired());
        assert_eq!(plan.appends_seen(), 16);
    }

    #[test]
    fn seeded_plan_is_deterministic_and_in_range() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..64 {
            let pa = FaultPlan::seeded(&mut a, 10);
            let pb = FaultPlan::seeded(&mut b, 10);
            assert_eq!(pa.point(), pb.point());
            assert_eq!(pa.nth(), pb.nth());
            assert!((1..=10).contains(&pa.nth()));
        }
    }
}
