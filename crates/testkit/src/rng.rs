//! Deterministic pseudo-random numbers: SplitMix64 seeding feeding a
//! xoshiro256++ generator.
//!
//! The generator is *not* cryptographic — it exists so workloads, property
//! tests and stressors are reproducible from a single `u64` seed on any
//! platform, with no external crates. The algorithms are the public-domain
//! reference constructions of Blackman & Vigna.

use std::ops::Range;

/// Advances a SplitMix64 state and returns the next output.
///
/// Also useful on its own for deriving independent sub-seeds from a base
/// seed (the property harness derives per-case seeds this way).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
///
/// ```
/// use colock_testkit::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0..10usize);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose full 256-bit state is expanded from `seed`
    /// with SplitMix64 (the construction recommended by the xoshiro
    /// authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `range` (half-open, `start <= x < end`).
    ///
    /// Panics when the range is empty, like `rand`'s `gen_range`.
    pub fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len() as u64) as usize])
        }
    }

    /// An independent generator split off this one (for per-thread or
    /// per-case sub-streams).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Uniform in `[0, bound)` via 128-bit multiply-shift (no modulo bias
    /// worth caring about at test scale). `bound` must be non-zero.
    fn index(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Samples uniformly from the half-open `range`.
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.index(span) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64).wrapping_add(rng.index(span) as i64) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(5..17usize);
            assert!((5..17).contains(&x));
            let y = r.gen_range(-10..10i64);
            assert!((-10..10).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Rng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = Rng::seed_from_u64(6);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert!(r.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(8);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
