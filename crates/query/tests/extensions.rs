//! Tests of the language extensions beyond Fig. 3: projection lists,
//! COUNT(*), and INSERT literal syntax.

use colock_core::authorization::Authorization;
use colock_core::fixtures::fig1_catalog;
use colock_core::optimizer::Optimizer;
use colock_nf2::value::build::{list, set, tup};
use colock_nf2::{ObjectKey, Value};
use colock_query::exec::run;
use colock_query::{parse, QueryError, Statement};
use colock_storage::Store;
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::Arc;

fn manager() -> TransactionManager {
    let store = Arc::new(Store::new(Arc::new(fig1_catalog())));
    for (e, t) in [("e1", "grip"), ("e2", "weld")] {
        store
            .insert("effectors", tup(vec![("eff_id", Value::str(e)), ("tool", Value::str(t))]))
            .unwrap();
    }
    store
        .insert(
            "cells",
            tup(vec![
                ("cell_id", Value::str("c1")),
                (
                    "c_objects",
                    set(vec![
                        tup(vec![("obj_id", Value::str("o1")), ("obj_name", Value::str("nut"))]),
                        tup(vec![("obj_id", Value::str("o2")), ("obj_name", Value::str("bolt"))]),
                        tup(vec![("obj_id", Value::str("o3")), ("obj_name", Value::str("nut"))]),
                    ]),
                ),
                (
                    "robots",
                    list(vec![tup(vec![
                        ("robot_id", Value::str("r1")),
                        ("trajectory", Value::str("t1")),
                        ("effectors", set(vec![Value::reference("effectors", "e1")])),
                    ])]),
                ),
            ]),
        )
        .unwrap();
    TransactionManager::over_store(store, Authorization::allow_all(), ProtocolKind::Proposed)
}

#[test]
fn multi_projection_builds_tuple_rows() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    let out = run(
        &t,
        "SELECT o.obj_id, o.obj_name FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.rows.len(), 3);
    let first = &out.rows[0];
    assert_eq!(first.field("o.obj_id"), Some(&Value::str("o1")));
    assert_eq!(first.field("o.obj_name"), Some(&Value::str("nut")));
    t.commit().unwrap();
}

#[test]
fn count_star_returns_single_int() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    let out = run(
        &t,
        "SELECT COUNT(*) FROM c IN cells, o IN c.c_objects WHERE o.obj_name = 'nut' FOR READ",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.rows, vec![Value::Int(2)]);
    t.commit().unwrap();
}

#[test]
fn count_star_zero_matches() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    let out = run(
        &t,
        "SELECT COUNT(*) FROM c IN cells WHERE c.cell_id = 'nope' FOR READ",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.rows, vec![Value::Int(0)]);
    t.commit().unwrap();
}

#[test]
fn insert_literal_syntax_roundtrips() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    let out = run(
        &t,
        "INSERT INTO effectors VALUES (eff_id: 'e9', tool: 'laser')",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.updated, 1);
    t.commit().unwrap();
    assert!(mgr.store().contains("effectors", &ObjectKey::from("e9")));
    let t2 = mgr.begin(TxnKind::Short);
    let check = run(
        &t2,
        "SELECT e.tool FROM e IN effectors WHERE e.eff_id = 'e9' FOR READ",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(check.rows, vec![Value::str("laser")]);
    t2.commit().unwrap();
}

#[test]
fn insert_parse_errors() {
    assert!(matches!(
        parse("INSERT effectors VALUES (a: 1)"),
        Err(QueryError::Parse { .. })
    ));
    assert!(matches!(
        parse("INSERT INTO effectors VALUES (a 1)"),
        Err(QueryError::Parse { .. })
    ));
    assert!(matches!(
        parse("INSERT INTO effectors VALUES ()"),
        Err(QueryError::Parse { .. })
    ));
}

#[test]
fn insert_type_mismatch_rejected_at_execution() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    let err = run(
        &t,
        "INSERT INTO effectors VALUES (eff_id: 'e8', tool: 42)",
        &Optimizer::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("mismatch"), "{err}");
    t.abort().unwrap();
}

#[test]
fn count_parse_shape() {
    let s = parse("SELECT COUNT(*) FROM c IN cells FOR READ").unwrap();
    let Statement::Select(q) = s else { panic!() };
    assert!(q.count);
    assert_eq!(q.projections.len(), 1);
}

#[test]
fn projection_list_parse_shape() {
    let s = parse("SELECT r.robot_id, r.trajectory FROM c IN cells, r IN c.robots FOR READ")
        .unwrap();
    let Statement::Select(q) = s else { panic!() };
    assert!(!q.count);
    assert_eq!(q.projections.len(), 2);
}

#[test]
fn mixed_projection_of_var_and_attr() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    let out = run(
        &t,
        "SELECT r, r.trajectory FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' FOR READ",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.rows.len(), 1);
    let row = &out.rows[0];
    assert!(row.field("r").unwrap().field("robot_id").is_some());
    assert_eq!(row.field("r.trajectory"), Some(&Value::str("t1")));
    t.commit().unwrap();
}
