//! Property-based tests: the lexer/parser never panic, valid shapes
//! round-trip, and condition evaluation is logically consistent.

use colock_nf2::Value;
use colock_query::ast::{Comparison, Condition, Operand, Statement};
use colock_query::lexer::tokenize;
use colock_query::parse;
use colock_testkit::prop::{alpha_string, any_i64, any_string, string_of};
use colock_testkit::{ensure, ensure_eq, forall, Rng};

#[test]
fn lexer_never_panics() {
    forall!(cases: 256, |rng| any_string(rng, 0..121), |input: &String| {
        let _ = tokenize(input);
        Ok(())
    });
}

#[test]
fn parser_never_panics() {
    forall!(cases: 256, |rng| any_string(rng, 0..121), |input: &String| {
        let _ = parse(input);
        Ok(())
    });
}

#[test]
fn parser_never_panics_on_queryish_text() {
    forall!(
        cases: 256,
        |rng| {
            let kw = *rng.choose(&["SELECT", "UPDATE", "DELETE", "INSERT"]).unwrap();
            let junk = string_of(
                rng,
                "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_'=<>,.() ",
                0..81,
            );
            format!("{kw} {junk}")
        },
        |text: &String| {
            let _ = parse(text);
            Ok(())
        }
    );
}

/// Draws a lowercase identifier with length in `len` that is not one of the
/// `reserved` words (rejection sampling — the stand-in for `prop_assume!`).
fn ident_avoiding(rng: &mut Rng, len: std::ops::Range<usize>, reserved: &[&str]) -> String {
    loop {
        let s = alpha_string(rng, len.clone());
        if !reserved.contains(&s.as_str()) {
            return s;
        }
    }
}

#[test]
fn generated_selects_parse() {
    const COMMON: [&str; 7] = ["in", "or", "and", "not", "for", "set", "read"];
    const REL_RESERVED: [&str; 17] = [
        "in", "or", "and", "not", "for", "set", "read", "update", "select", "from", "where",
        "delete", "insert", "into", "values", "true", "false",
    ];
    const ATTR_RESERVED: [&str; 10] =
        ["in", "or", "and", "not", "for", "set", "read", "update", "true", "false"];
    forall!(
        cases: 256,
        |rng| (
            ident_avoiding(rng, 1..5, &COMMON),
            ident_avoiding(rng, 2..9, &REL_RESERVED),
            ident_avoiding(rng, 1..7, &ATTR_RESERVED),
            string_of(rng, "abcdefghijklmnopqrstuvwxyz0123456789", 1..7),
            rng.gen_bool(0.5),
        ),
        |(var, rel, attr, key, for_update): &(String, String, String, String, bool)| {
            let clause = if *for_update { "FOR UPDATE" } else { "FOR READ" };
            let q = format!("SELECT {var} FROM {var} IN {rel} WHERE {var}.{attr} = '{key}' {clause}");
            let stmt = parse(&q);
            ensure!(stmt.is_ok(), "{q}: {stmt:?}");
            let Ok(Statement::Select(sel)) = stmt else { return Err("not a select".into()) };
            ensure_eq!(sel.ranges.len(), 1);
            ensure!(sel.condition.is_some());
            Ok(())
        }
    );
}

#[test]
fn comparison_eval_is_consistent() {
    forall!(cases: 256, |rng| (any_i64(rng), any_i64(rng)), |&(a, b)| {
        let va = Value::Int(a);
        let vb = Value::Int(b);
        // Trichotomy.
        let eq = Comparison::Eq.eval(&va, &vb);
        let lt = Comparison::Lt.eval(&va, &vb);
        let gt = Comparison::Gt.eval(&va, &vb);
        ensure_eq!(eq as u8 + lt as u8 + gt as u8, 1);
        // Le/Ge are the complements of Gt/Lt.
        ensure_eq!(Comparison::Le.eval(&va, &vb), !gt);
        ensure_eq!(Comparison::Ge.eval(&va, &vb), !lt);
        ensure_eq!(Comparison::Neq.eval(&va, &vb), !eq);
        Ok(())
    });
}

#[test]
fn condition_de_morgan() {
    forall!(
        cases: 256,
        |rng| (any_i64(rng), any_i64(rng), any_i64(rng)),
        |&(a, b, x)| {
            use colock_query::analyze::eval_condition;
            let bindings = vec![("v".to_string(), Value::Int(x))];
            let atom = |op, lit: i64| Condition::Cmp {
                left: Operand::Path { var: "v".into(), path: vec![] },
                op,
                right: Operand::Literal(Value::Int(lit)),
            };
            // NOT (A AND B) == (NOT A) OR (NOT B)
            let lhs = Condition::Not(Box::new(Condition::And(
                Box::new(atom(Comparison::Lt, a)),
                Box::new(atom(Comparison::Gt, b)),
            )));
            let rhs = Condition::Or(
                Box::new(Condition::Not(Box::new(atom(Comparison::Lt, a)))),
                Box::new(Condition::Not(Box::new(atom(Comparison::Gt, b)))),
            );
            ensure_eq!(
                eval_condition(&bindings, &lhs).unwrap(),
                eval_condition(&bindings, &rhs).unwrap()
            );
            Ok(())
        }
    );
}

#[test]
fn and_or_precedence() {
    forall!(cases: 256, any_i64, |&x| {
        use colock_query::analyze::eval_condition;
        // `a OR b AND c` must parse as `a OR (b AND c)`.
        let q = "SELECT v FROM v IN r WHERE v.n = 1 OR v.n > 5 AND v.n < 10 FOR READ";
        let Ok(Statement::Select(sel)) = parse(q) else { return Err("parse failed".into()) };
        let cond = sel.condition.unwrap();
        ensure!(matches!(cond, Condition::Or(_, _)), "top is OR");
        let bindings = vec![(
            "v".to_string(),
            Value::Tuple(vec![("n".to_string(), Value::Int(x))]),
        )];
        let expect = x == 1 || (x > 5 && x < 10);
        ensure_eq!(eval_condition(&bindings, &cond).unwrap(), expect);
        Ok(())
    });
}
