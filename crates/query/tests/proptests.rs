//! Property-based tests: the lexer/parser never panic, valid shapes
//! round-trip, and condition evaluation is logically consistent.

use colock_nf2::Value;
use colock_query::ast::{Comparison, Condition, Operand, Statement};
use colock_query::lexer::tokenize;
use colock_query::parse;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(input in ".{0,120}") {
        let _ = tokenize(&input);
    }

    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_queryish_text(
        kw in prop_oneof![Just("SELECT"), Just("UPDATE"), Just("DELETE"), Just("INSERT")],
        junk in "[a-zA-Z0-9_'=<>,.() ]{0,80}",
    ) {
        let _ = parse(&format!("{kw} {junk}"));
    }

    #[test]
    fn generated_selects_parse(
        var in "[a-z]{1,4}",
        rel in "[a-z]{2,8}",
        attr in "[a-z]{1,6}",
        key in "[a-z0-9]{1,6}",
        for_update in any::<bool>(),
    ) {
        // Avoid generating reserved words as identifiers.
        prop_assume!(!["in", "or", "and", "not", "for", "set", "read"]
            .contains(&var.as_str()));
        prop_assume!(!["in", "or", "and", "not", "for", "set", "read", "update", "select", "from", "where", "delete", "insert", "into", "values", "true", "false"]
            .contains(&rel.as_str()));
        prop_assume!(!["in", "or", "and", "not", "for", "set", "read", "update", "true", "false"]
            .contains(&attr.as_str()));
        let clause = if for_update { "FOR UPDATE" } else { "FOR READ" };
        let q = format!("SELECT {var} FROM {var} IN {rel} WHERE {var}.{attr} = '{key}' {clause}");
        let stmt = parse(&q);
        prop_assert!(stmt.is_ok(), "{q}: {stmt:?}");
        let Ok(Statement::Select(sel)) = stmt else { panic!() };
        prop_assert_eq!(sel.ranges.len(), 1);
        prop_assert!(sel.condition.is_some());
    }

    #[test]
    fn comparison_eval_is_consistent(a in any::<i64>(), b in any::<i64>()) {
        let va = Value::Int(a);
        let vb = Value::Int(b);
        // Trichotomy.
        let eq = Comparison::Eq.eval(&va, &vb);
        let lt = Comparison::Lt.eval(&va, &vb);
        let gt = Comparison::Gt.eval(&va, &vb);
        prop_assert_eq!(eq as u8 + lt as u8 + gt as u8, 1);
        // Le/Ge are the complements of Gt/Lt.
        prop_assert_eq!(Comparison::Le.eval(&va, &vb), !gt);
        prop_assert_eq!(Comparison::Ge.eval(&va, &vb), !lt);
        prop_assert_eq!(Comparison::Neq.eval(&va, &vb), !eq);
    }

    #[test]
    fn condition_de_morgan(a in any::<i64>(), b in any::<i64>(), x in any::<i64>()) {
        use colock_query::analyze::eval_condition;
        let bindings = vec![("v".to_string(), Value::Int(x))];
        let atom = |op, lit: i64| Condition::Cmp {
            left: Operand::Path { var: "v".into(), path: vec![] },
            op,
            right: Operand::Literal(Value::Int(lit)),
        };
        // NOT (A AND B) == (NOT A) OR (NOT B)
        let lhs = Condition::Not(Box::new(Condition::And(
            Box::new(atom(Comparison::Lt, a)),
            Box::new(atom(Comparison::Gt, b)),
        )));
        let rhs = Condition::Or(
            Box::new(Condition::Not(Box::new(atom(Comparison::Lt, a)))),
            Box::new(Condition::Not(Box::new(atom(Comparison::Gt, b)))),
        );
        prop_assert_eq!(
            eval_condition(&bindings, &lhs).unwrap(),
            eval_condition(&bindings, &rhs).unwrap()
        );
    }

    #[test]
    fn and_or_precedence(x in any::<i64>()) {
        use colock_query::analyze::eval_condition;
        // `a OR b AND c` must parse as `a OR (b AND c)`.
        let q = "SELECT v FROM v IN r WHERE v.n = 1 OR v.n > 5 AND v.n < 10 FOR READ";
        let Ok(Statement::Select(sel)) = parse(q) else { panic!() };
        let cond = sel.condition.unwrap();
        prop_assert!(matches!(cond, Condition::Or(_, _)), "top is OR");
        let bindings = vec![(
            "v".to_string(),
            Value::Tuple(vec![("n".to_string(), Value::Int(x))]),
        )];
        let expect = x == 1 || (x > 5 && x < 10);
        prop_assert_eq!(eval_condition(&bindings, &cond).unwrap(), expect);
    }
}
