//! End-to-end: the paper's Fig. 3 queries parsed, planned and executed over
//! a populated store, with the lock behaviour of §4.4.2.2.

use colock_core::authorization::{Authorization, Right};
use colock_core::fixtures::fig1_catalog;
use colock_core::optimizer::Optimizer;
use colock_nf2::value::build::{list, set, tup};
use colock_nf2::{ObjectKey, Value};
use colock_query::exec::{run, ExecOutcome};
use colock_storage::Store;
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::Arc;

fn populated() -> Arc<Store> {
    let store = Arc::new(Store::new(Arc::new(fig1_catalog())));
    for (e, t) in [("e1", "grip"), ("e2", "weld"), ("e3", "drill")] {
        store
            .insert("effectors", tup(vec![("eff_id", Value::str(e)), ("tool", Value::str(t))]))
            .unwrap();
    }
    for c in ["c1", "c2"] {
        store
            .insert(
                "cells",
                tup(vec![
                    ("cell_id", Value::str(c)),
                    (
                        "c_objects",
                        set((1..=5)
                            .map(|i| {
                                tup(vec![
                                    ("obj_id", Value::str(format!("{c}o{i}"))),
                                    ("obj_name", Value::str(format!("part{i}"))),
                                ])
                            })
                            .collect()),
                    ),
                    (
                        "robots",
                        list(vec![
                            tup(vec![
                                ("robot_id", Value::str("r1")),
                                ("trajectory", Value::str("t1")),
                                (
                                    "effectors",
                                    set(vec![
                                        Value::reference("effectors", "e1"),
                                        Value::reference("effectors", "e2"),
                                    ]),
                                ),
                            ]),
                            tup(vec![
                                ("robot_id", Value::str("r2")),
                                ("trajectory", Value::str("t2")),
                                (
                                    "effectors",
                                    set(vec![
                                        Value::reference("effectors", "e2"),
                                        Value::reference("effectors", "e3"),
                                    ]),
                                ),
                            ]),
                        ]),
                    ),
                ]),
            )
            .unwrap();
    }
    store
}

fn manager() -> TransactionManager {
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    TransactionManager::over_store(populated(), authz, ProtocolKind::Proposed)
}

const Q1: &str =
    "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ";
const Q2: &str = "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE";
const Q3: &str = "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE";

fn run_in_txn(mgr: &TransactionManager, q: &str) -> ExecOutcome {
    let t = mgr.begin(TxnKind::Short);
    let out = run(&t, q, &Optimizer::default()).unwrap();
    t.commit().unwrap();
    out
}

#[test]
fn q1_returns_all_c_objects_of_c1() {
    let mgr = manager();
    let out = run_in_txn(&mgr, Q1);
    assert_eq!(out.rows.len(), 5);
    assert_eq!(out.rows[0].field("obj_name"), Some(&Value::str("part1")));
}

#[test]
fn q2_returns_robot_r1_with_x_lock() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    let out = run(&t, Q2, &Optimizer::default()).unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].field("robot_id"), Some(&Value::str("r1")));
    // The X lock on robot r1 and S entry locks on e1/e2 are held (Fig. 7).
    let lm = mgr.lock_manager();
    let engine = mgr.engine();
    let r1 = engine
        .resource_for(&colock_core::InstanceTarget::object("cells", "c1").elem("robots", "r1"))
        .unwrap();
    assert_eq!(lm.held_mode(t.id(), &r1), colock_lockmgr::LockMode::X);
    let e1 = engine
        .resource_for(&colock_core::InstanceTarget::object("effectors", "e1"))
        .unwrap();
    assert_eq!(lm.held_mode(t.id(), &e1), colock_lockmgr::LockMode::S);
    assert_eq!(out.entry_points_locked, 2);
    t.commit().unwrap();
}

#[test]
fn q2_and_q3_interleave_in_one_schedule() {
    let mgr = manager();
    let t2 = mgr.begin(TxnKind::Short);
    let t3 = mgr.begin(TxnKind::Short);
    let o2 = run(&t2, Q2, &Optimizer::default()).unwrap();
    let o3 = run(&t3, Q3, &Optimizer::default()).unwrap();
    assert_eq!(o2.rows.len(), 1);
    assert_eq!(o3.rows.len(), 1);
    t2.commit().unwrap();
    t3.commit().unwrap();
}

#[test]
fn q1_and_q2_interleave() {
    let mgr = manager();
    let t1 = mgr.begin(TxnKind::Short);
    let t2 = mgr.begin(TxnKind::Short);
    run(&t1, Q1, &Optimizer::default()).unwrap();
    run(&t2, Q2, &Optimizer::default()).unwrap();
    t1.commit().unwrap();
    t2.commit().unwrap();
}

#[test]
fn update_statement_changes_trajectory() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    let out = run(
        &t,
        "UPDATE r.trajectory = 'vertical' FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2'",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.updated, 1);
    t.commit().unwrap();
    let check = run_in_txn(&mgr, Q3);
    assert_eq!(check.rows[0].field("trajectory"), Some(&Value::str("vertical")));
}

#[test]
fn non_key_predicate_filters_rows() {
    let mgr = manager();
    let out = run_in_txn(
        &mgr,
        "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.trajectory = 't2' FOR READ",
    );
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0].field("robot_id"), Some(&Value::str("r2")));
}

#[test]
fn full_scan_uses_relation_granule_when_large() {
    let mgr = manager();
    // With cardinality stats present and a tiny θ, a full scan escalates to
    // one relation lock.
    let t = mgr.begin(TxnKind::Short);
    let out = run(&t, "SELECT c FROM c IN cells FOR READ", &Optimizer::new(2.0)).unwrap();
    assert_eq!(out.rows.len(), 2);
    let cells = mgr
        .engine()
        .resource_for(&colock_core::InstanceTarget::relation("cells"))
        .unwrap();
    assert_eq!(
        mgr.lock_manager().held_mode(t.id(), &cells),
        colock_lockmgr::LockMode::IS,
        "without cardinality stats only per-object locks (intent on relation)"
    );
    t.commit().unwrap();

    // Recompute stats → the optimizer sees cardinality 2 ≥ θ=2 and plans a
    // relation lock.
    let with_stats = Arc::new(colock_storage::stats::catalog_with_stats(mgr.store()));
    let store2 = Arc::new(Store::new(Arc::clone(&with_stats)));
    // Repopulate under the stats-bearing catalog.
    for snap in ["effectors", "cells"] {
        for (k, v) in mgr.store().snapshot(snap).unwrap().objects() {
            let _ = k;
            store2.insert(snap, v).unwrap();
        }
    }
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let mgr2 = TransactionManager::over_store(store2, authz, ProtocolKind::Proposed);
    let t = mgr2.begin(TxnKind::Short);
    run(&t, "SELECT c FROM c IN cells FOR READ", &Optimizer::new(2.0)).unwrap();
    let cells = mgr2
        .engine()
        .resource_for(&colock_core::InstanceTarget::relation("cells"))
        .unwrap();
    assert_eq!(mgr2.lock_manager().held_mode(t.id(), &cells), colock_lockmgr::LockMode::S);
    t.commit().unwrap();
}

#[test]
fn delete_element_removes_robot_without_touching_effectors() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    let out = run(
        &t,
        "DELETE r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c2' AND r.robot_id = 'r1'",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.deleted, 1);
    // §4.5: deleting the robot takes NO locks on the effectors library.
    let e1 = mgr
        .engine()
        .resource_for(&colock_core::InstanceTarget::object("effectors", "e1"))
        .unwrap();
    assert_eq!(mgr.lock_manager().held_mode(t.id(), &e1), colock_lockmgr::LockMode::NL);
    t.commit().unwrap();
    let left = run_in_txn(
        &mgr,
        "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c2' FOR READ",
    );
    assert_eq!(left.rows.len(), 1);
    assert_eq!(left.rows[0].field("robot_id"), Some(&Value::str("r2")));
}

#[test]
fn delete_object_statement() {
    let mgr = TransactionManager::over_store(populated(), Authorization::allow_all(), ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    // e9 unreferenced.
    t.insert("effectors", tup(vec![("eff_id", Value::str("e9")), ("tool", Value::str("x"))]))
        .unwrap();
    t.commit().unwrap();
    let t = mgr.begin(TxnKind::Short);
    let out = run(
        &t,
        "DELETE e FROM e IN effectors WHERE e.eff_id = 'e9'",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.deleted, 1);
    t.commit().unwrap();
    assert!(!mgr.store().contains("effectors", &ObjectKey::from("e9")));
}

#[test]
fn rollback_of_query_updates() {
    let mgr = manager();
    let t = mgr.begin(TxnKind::Short);
    run(
        &t,
        "UPDATE r.trajectory = 'zzz' FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1'",
        &Optimizer::default(),
    )
    .unwrap();
    t.abort().unwrap();
    let check = run_in_txn(&mgr, Q2);
    assert_eq!(check.rows[0].field("trajectory"), Some(&Value::str("t1")));
}

#[test]
fn insert_statement_via_api() {
    let mgr = TransactionManager::over_store(populated(), Authorization::allow_all(), ProtocolKind::Proposed);
    let t = mgr.begin(TxnKind::Short);
    let stmt = colock_query::Statement::Insert {
        relation: "effectors".into(),
        value: tup(vec![("eff_id", Value::str("e7")), ("tool", Value::str("probe"))]),
    };
    let out = colock_query::exec::run_statement(&t, stmt, &Optimizer::default()).unwrap();
    assert_eq!(out.updated, 1);
    t.commit().unwrap();
    assert!(mgr.store().contains("effectors", &ObjectKey::from("e7")));
}

#[test]
fn scan_update_with_six_lets_siblings_be_read() {
    // An unkeyed UPDATE takes SIX on the robots subtree and X only on the
    // matched element; a reader of an *untouched* sibling robot proceeds.
    let mgr = manager();
    let t1 = mgr.begin(TxnKind::Short);
    let out = run(
        &t1,
        "UPDATE r.trajectory = 'patched' FROM c IN cells, r IN c.robots \
         WHERE c.cell_id = 'c1' AND r.trajectory = 't1'",
        &Optimizer::default(),
    )
    .unwrap();
    assert_eq!(out.updated, 1);
    let robots = mgr
        .engine()
        .resource_for(&colock_core::InstanceTarget::object("cells", "c1").attr("robots"))
        .unwrap();
    assert_eq!(
        mgr.lock_manager().held_mode(t1.id(), &robots),
        colock_lockmgr::LockMode::SIX,
        "scan-update holds SIX on the subtree"
    );

    // A second transaction reads the untouched robot r2 concurrently.
    let t2 = mgr.begin(TxnKind::Short);
    let r2 = colock_core::InstanceTarget::object("cells", "c1").elem("robots", "r2");
    assert!(t2.try_lock(&r2, colock_core::AccessMode::Read).is_ok());
    // But the patched robot r1 is X-protected.
    let r1 = colock_core::InstanceTarget::object("cells", "c1").elem("robots", "r1");
    assert!(t2.try_lock(&r1, colock_core::AccessMode::Read).is_err());
    t2.abort().unwrap();
    t1.commit().unwrap();
}
