//! Recursive-descent parser.

use crate::ast::*;
use crate::error::QueryError;
use crate::lexer::{tokenize, Token};
use crate::Result;
use colock_nf2::Value;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parses one statement.
pub fn parse(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after statement"));
    }
    Ok(stmt)
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse { position: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(i)) => Ok(i),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_keyword("SELECT") {
            return self.select();
        }
        if self.eat_keyword("UPDATE") {
            return self.update();
        }
        if self.eat_keyword("DELETE") {
            return self.delete();
        }
        if self.eat_keyword("INSERT") {
            return self.insert();
        }
        Err(self.err("expected SELECT, UPDATE, DELETE or INSERT"))
    }

    fn select(&mut self) -> Result<Statement> {
        let mut count = false;
        let mut projections = Vec::new();
        if matches!(self.peek(), Some(Token::Ident(i)) if i.eq_ignore_ascii_case("COUNT")) {
            // COUNT ( * )
            self.pos += 1;
            if !matches!(self.next(), Some(Token::LParen)) {
                return Err(self.err("expected `(` after COUNT"));
            }
            if !matches!(self.next(), Some(Token::Star)) {
                return Err(self.err("expected `*` in COUNT(*)"));
            }
            if !matches!(self.next(), Some(Token::RParen)) {
                return Err(self.err("expected `)` after COUNT(*"));
            }
            count = true;
            // COUNT still needs a range to bind; project the first var.
            projections.push(Operand::Path { var: "*".into(), path: Vec::new() });
        } else {
            loop {
                if matches!(self.peek(), Some(Token::Star)) {
                    self.pos += 1;
                    projections.push(Operand::Path { var: "*".into(), path: Vec::new() });
                } else {
                    projections.push(self.path_operand()?);
                }
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect_keyword("FROM")?;
        let ranges = self.ranges()?;
        let condition = self.opt_where()?;
        let for_clause = if self.eat_keyword("FOR") {
            if self.eat_keyword("READ") {
                ForClause::Read
            } else if self.eat_keyword("UPDATE") {
                ForClause::Update
            } else {
                return Err(self.err("expected READ or UPDATE after FOR"));
            }
        } else {
            ForClause::Read
        };
        Ok(Statement::Select(Query { projections, count, ranges, condition, for_clause }))
    }

    fn update(&mut self) -> Result<Statement> {
        // UPDATE var.path = literal FROM ranges [WHERE cond]
        let target = self.path_operand()?;
        if !matches!(self.next(), Some(Token::Eq)) {
            return Err(self.err("expected `=` in UPDATE"));
        }
        let value = self.literal()?;
        self.expect_keyword("FROM")?;
        let ranges = self.ranges()?;
        let condition = self.opt_where()?;
        Ok(Statement::Update { target, value, ranges, condition })
    }

    /// `INSERT INTO relation VALUES (attr: literal, …)` — flat tuples only;
    /// nested complex objects are inserted through the API
    /// ([`Statement::Insert`] with a pre-built value).
    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INTO")?;
        let relation = self.expect_ident()?;
        self.expect_keyword("VALUES")?;
        if !matches!(self.next(), Some(Token::LParen)) {
            return Err(self.err("expected `(`"));
        }
        let mut fields = Vec::new();
        loop {
            let name = self.expect_ident()?;
            if !matches!(self.next(), Some(Token::Colon)) {
                return Err(self.err("expected `:` after attribute name"));
            }
            let value = self.literal()?;
            fields.push((name, value));
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(self.err(format!("expected `,` or `)`, found {other:?}"))),
            }
        }
        Ok(Statement::Insert { relation, value: Value::Tuple(fields) })
    }

    fn delete(&mut self) -> Result<Statement> {
        let var = self.expect_ident()?;
        self.expect_keyword("FROM")?;
        let ranges = self.ranges()?;
        let condition = self.opt_where()?;
        Ok(Statement::Delete { var, ranges, condition })
    }

    fn ranges(&mut self) -> Result<Vec<RangeDecl>> {
        let mut out = vec![self.range()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            out.push(self.range()?);
        }
        Ok(out)
    }

    fn range(&mut self) -> Result<RangeDecl> {
        let var = self.expect_ident()?;
        self.expect_keyword("IN")?;
        let first = self.expect_ident()?;
        if matches!(self.peek(), Some(Token::Dot)) {
            let mut path = Vec::new();
            while matches!(self.peek(), Some(Token::Dot)) {
                self.pos += 1;
                path.push(self.expect_ident()?);
            }
            Ok(RangeDecl { var, source: RangeSource::Path { parent: first, path } })
        } else {
            Ok(RangeDecl { var, source: RangeSource::Relation(first) })
        }
    }

    fn opt_where(&mut self) -> Result<Option<Condition>> {
        if self.eat_keyword("WHERE") {
            Ok(Some(self.condition()?))
        } else {
            Ok(None)
        }
    }

    fn condition(&mut self) -> Result<Condition> {
        let mut left = self.conjunction()?;
        while self.eat_keyword("OR") {
            let right = self.conjunction()?;
            left = Condition::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Condition> {
        let mut left = self.atom()?;
        while self.eat_keyword("AND") {
            let right = self.atom()?;
            left = Condition::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Condition> {
        if self.eat_keyword("NOT") {
            return Ok(Condition::Not(Box::new(self.atom()?)));
        }
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let c = self.condition()?;
            if !matches!(self.next(), Some(Token::RParen)) {
                return Err(self.err("expected `)`"));
            }
            return Ok(c);
        }
        let left = self.operand()?;
        let op = match self.next() {
            Some(Token::Eq) => Comparison::Eq,
            Some(Token::Neq) => Comparison::Neq,
            Some(Token::Lt) => Comparison::Lt,
            Some(Token::Le) => Comparison::Le,
            Some(Token::Gt) => Comparison::Gt,
            Some(Token::Ge) => Comparison::Ge,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        let right = self.operand()?;
        Ok(Condition::Cmp { left, op, right })
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.peek() {
            Some(Token::Ident(_)) => self.path_operand(),
            _ => Ok(Operand::Literal(self.literal()?)),
        }
    }

    fn path_operand(&mut self) -> Result<Operand> {
        let var = self.expect_ident()?;
        let mut path = Vec::new();
        while matches!(self.peek(), Some(Token::Dot)) {
            self.pos += 1;
            path.push(self.expect_ident()?);
        }
        Ok(Operand::Path { var, path })
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Real(r)) => Ok(Value::Real(r)),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Value::Bool(true)),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Value::Bool(false)),
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let s = parse(
            "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ",
        )
        .unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.ranges.len(), 2);
        assert_eq!(q.for_clause, ForClause::Read);
        assert_eq!(
            q.ranges[1].source,
            RangeSource::Path { parent: "c".into(), path: vec!["c_objects".into()] }
        );
    }

    #[test]
    fn parses_q2_and_q3() {
        for (robot, _) in [("r1", ()), ("r2", ())] {
            let s = parse(&format!(
                "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = '{robot}' FOR UPDATE"
            ))
            .unwrap();
            let Statement::Select(q) = s else { panic!() };
            assert_eq!(q.for_clause, ForClause::Update);
            assert!(matches!(q.condition, Some(Condition::And(_, _))));
        }
    }

    #[test]
    fn parses_update_statement() {
        let s = parse(
            "UPDATE r.trajectory = 'vertical' FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r2'",
        )
        .unwrap();
        let Statement::Update { target, value, ranges, condition } = s else { panic!() };
        assert_eq!(target, Operand::Path { var: "r".into(), path: vec!["trajectory".into()] });
        assert_eq!(value, Value::str("vertical"));
        assert_eq!(ranges.len(), 2);
        assert!(condition.is_some());
    }

    #[test]
    fn parses_delete_statement() {
        let s = parse("DELETE e FROM e IN effectors WHERE e.eff_id = 'e3'").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn parses_or_not_parens() {
        let s = parse(
            "SELECT c FROM c IN cells WHERE NOT (c.cell_id = 'c1' OR c.cell_id = 'c2') FOR READ",
        )
        .unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert!(matches!(q.condition, Some(Condition::Not(_))));
    }

    #[test]
    fn default_for_clause_is_read() {
        let s = parse("SELECT c FROM c IN cells").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.for_clause, ForClause::Read);
    }

    #[test]
    fn star_projection() {
        let s = parse("SELECT * FROM c IN cells FOR READ").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.projections, vec![Operand::Path { var: "*".into(), path: vec![] }]);
    }

    #[test]
    fn error_on_missing_from() {
        assert!(matches!(parse("SELECT c WHERE x = 1"), Err(QueryError::Parse { .. })));
    }

    #[test]
    fn error_on_trailing_tokens() {
        assert!(parse("SELECT c FROM c IN cells FOR READ garbage").is_err());
    }

    #[test]
    fn numeric_and_bool_literals() {
        let s = parse("SELECT c FROM c IN cells WHERE c.size >= 10 AND c.live = TRUE FOR READ")
            .unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert!(q.condition.is_some());
    }
}
