//! Semantic analysis: binding range variables, extracting key predicates and
//! accessed attribute paths (§4.1: "Each query to be processed is first
//! analyzed to find out which attributes will be accessed, and which kind of
//! access (read, update, …) will be done").
//!
//! Key-equality predicates (`c.cell_id = 'c1'`, `r.robot_id = 'r1'`) are
//! treated as *addressing*: they select the object/element directly and do
//! not themselves generate data locks — which is exactly why Fig. 7 shows no
//! S lock on the `cell_id` BLU for Q2. All other accessed attributes
//! (projections, update targets, non-key predicates) are lockable accesses.

use crate::ast::*;
use crate::error::QueryError;
use crate::Result;
use colock_core::optimizer::AccessEstimate;
use colock_core::AccessMode;
use colock_nf2::{AttrPath, AttrType, Catalog, ObjectKey, Value};

/// A range variable bound against the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundRange {
    /// Variable name.
    pub var: String,
    /// The relation the variable ultimately ranges within.
    pub relation: String,
    /// Parent variable for dependent ranges.
    pub parent: Option<String>,
    /// Schema path from the complex-object root to the ranged container
    /// (empty for relation ranges).
    pub path: AttrPath,
    /// Key attribute of the ranged tuples, if any.
    pub key_attr: Option<String>,
    /// Key value from an equality predicate, if the WHERE clause pins one.
    pub key_predicate: Option<ObjectKey>,
}

/// One lockable access discovered in the query.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// The variable it hangs off.
    pub var: String,
    /// Absolute schema path from the object root (may equal the range path
    /// for whole-element access).
    pub path: AttrPath,
    /// Read or update.
    pub mode: AccessMode,
    /// Whether the access targets whole elements of the ranged container
    /// (projection `SELECT r`) rather than an attribute below them.
    pub whole_element: bool,
}

/// Result of analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Bound ranges, outermost first.
    pub ranges: Vec<BoundRange>,
    /// Lockable accesses.
    pub accesses: Vec<Access>,
    /// Optimizer inputs derived from the accesses and catalog statistics.
    pub estimates: Vec<AccessEstimate>,
}

impl Analysis {
    /// The bound range for a variable.
    pub fn range(&self, var: &str) -> Option<&BoundRange> {
        self.ranges.iter().find(|r| r.var == var)
    }
}

/// Analyzes a statement against the catalog.
pub fn analyze(catalog: &Catalog, stmt: &Statement) -> Result<Analysis> {
    let (ranges, condition, accesses_raw) = match stmt {
        Statement::Select(q) => {
            let mut acc = Vec::new();
            for proj in &q.projections {
                acc.push((operand_path(proj)?, mode_of(q.for_clause)));
            }
            (&q.ranges, &q.condition, acc)
        }
        Statement::Update { target, ranges, condition, .. } => {
            let acc = vec![(operand_path(target)?, AccessMode::Update)];
            (ranges, condition, acc)
        }
        Statement::Delete { var, ranges, condition } => {
            let acc = vec![((var.clone(), Vec::new()), AccessMode::Update)];
            (ranges, condition, acc)
        }
        Statement::Insert { relation, .. } => {
            // Inserts have no ranges; the executor locks the new object.
            catalog
                .schema()
                .relation(relation)
                .map_err(|e| QueryError::Analysis(e.to_string()))?;
            return Ok(Analysis { ranges: Vec::new(), accesses: Vec::new(), estimates: Vec::new() });
        }
    };

    let mut bound = bind_ranges(catalog, ranges)?;
    extract_key_predicates(catalog, &mut bound, condition.as_ref());

    let mut accesses = Vec::new();
    // Projection / update / delete target.
    for ((var, subpath), mode) in accesses_raw {
        if var == "*" {
            let first = bound
                .first()
                .ok_or_else(|| QueryError::Analysis("no range for *".into()))?;
            accesses.push(Access {
                var: first.var.clone(),
                path: first.path.clone(),
                mode,
                whole_element: true,
            });
            continue;
        }
        let range = bound
            .iter()
            .find(|r| r.var == var)
            .ok_or_else(|| QueryError::Analysis(format!("unknown variable `{var}`")))?;
        let mut path = range.path.clone();
        for s in &subpath {
            path = path.child(s);
        }
        // Validate the path resolves (unless it is the object root).
        if !path.is_root() {
            let rel = catalog
                .schema()
                .relation(&range.relation)
                .map_err(|e| QueryError::Analysis(e.to_string()))?;
            path.resolve(rel)
                .map_err(|e| QueryError::Analysis(e.to_string()))?;
        }
        accesses.push(Access {
            var: var.clone(),
            path,
            mode,
            whole_element: subpath.is_empty(),
        });
    }

    // Non-key predicate attributes are read accesses.
    if let Some(cond) = condition {
        collect_predicate_accesses(catalog, &bound, cond, &mut accesses)?;
    }

    let estimates = build_estimates(catalog, &bound, &accesses);
    Ok(Analysis { ranges: bound, accesses, estimates })
}

fn mode_of(f: ForClause) -> AccessMode {
    match f {
        ForClause::Read => AccessMode::Read,
        ForClause::Update => AccessMode::Update,
    }
}

fn operand_path(op: &Operand) -> Result<(String, Vec<String>)> {
    match op {
        Operand::Path { var, path } => Ok((var.clone(), path.clone())),
        Operand::Literal(_) => Err(QueryError::Analysis("expected a path, found literal".into())),
    }
}

fn bind_ranges(catalog: &Catalog, ranges: &[RangeDecl]) -> Result<Vec<BoundRange>> {
    let mut bound: Vec<BoundRange> = Vec::new();
    for r in ranges {
        match &r.source {
            RangeSource::Relation(rel) => {
                let schema = catalog
                    .schema()
                    .relation(rel)
                    .map_err(|e| QueryError::Analysis(e.to_string()))?;
                bound.push(BoundRange {
                    var: r.var.clone(),
                    relation: rel.clone(),
                    parent: None,
                    path: AttrPath::root(),
                    key_attr: schema.key_attribute().map(|a| a.name.clone()),
                    key_predicate: None,
                });
            }
            RangeSource::Path { parent, path } => {
                let parent_range = bound
                    .iter()
                    .find(|b| &b.var == parent)
                    .ok_or_else(|| {
                        QueryError::Analysis(format!("unknown parent variable `{parent}`"))
                    })?
                    .clone();
                let mut abs = parent_range.path.clone();
                for s in path {
                    abs = abs.child(s);
                }
                let rel = catalog
                    .schema()
                    .relation(&parent_range.relation)
                    .map_err(|e| QueryError::Analysis(e.to_string()))?;
                let ty = abs.resolve(rel).map_err(|e| QueryError::Analysis(e.to_string()))?;
                if !ty.is_homogeneous() {
                    return Err(QueryError::Analysis(format!(
                        "`{}` does not range over a set/list",
                        r.var
                    )));
                }
                let key_attr = ty.element().and_then(|e| match e {
                    AttrType::Tuple(fields) => {
                        fields.iter().find(|a| a.key).map(|a| a.name.clone())
                    }
                    _ => None,
                });
                bound.push(BoundRange {
                    var: r.var.clone(),
                    relation: parent_range.relation.clone(),
                    parent: Some(parent.clone()),
                    path: abs,
                    key_attr,
                    key_predicate: None,
                });
            }
        }
    }
    Ok(bound)
}

/// Walks the top-level conjunction extracting `var.key = literal` predicates.
fn extract_key_predicates(
    _catalog: &Catalog,
    bound: &mut [BoundRange],
    cond: Option<&Condition>,
) {
    fn walk(cond: &Condition, bound: &mut [BoundRange]) {
        match cond {
            Condition::And(a, b) => {
                walk(a, bound);
                walk(b, bound);
            }
            Condition::Cmp { left, op: Comparison::Eq, right } => {
                let (path_op, lit) = match (left, right) {
                    (Operand::Path { .. }, Operand::Literal(v)) => (left, v),
                    (Operand::Literal(v), Operand::Path { .. }) => (right, v),
                    _ => return,
                };
                let Operand::Path { var, path } = path_op else {
                    return;
                };
                if path.len() != 1 {
                    return;
                }
                let Some(range) = bound.iter_mut().find(|r| &r.var == var) else {
                    return;
                };
                if range.key_attr.as_deref() == Some(path[0].as_str()) {
                    if let Some(k) = lit.as_key() {
                        range.key_predicate = Some(k);
                    }
                }
            }
            // OR / NOT branches cannot pin keys soundly.
            _ => {}
        }
    }
    if let Some(c) = cond {
        walk(c, bound);
    }
}

/// Adds read accesses for non-key predicate attributes.
fn collect_predicate_accesses(
    catalog: &Catalog,
    bound: &[BoundRange],
    cond: &Condition,
    out: &mut Vec<Access>,
) -> Result<()> {
    match cond {
        Condition::And(a, b) | Condition::Or(a, b) => {
            collect_predicate_accesses(catalog, bound, a, out)?;
            collect_predicate_accesses(catalog, bound, b, out)?;
        }
        Condition::Not(c) => collect_predicate_accesses(catalog, bound, c, out)?,
        Condition::Cmp { left, op, right } => {
            for operand in [left, right] {
                let Operand::Path { var, path } = operand else {
                    continue;
                };
                let Some(range) = bound.iter().find(|r| &r.var == var) else {
                    return Err(QueryError::Analysis(format!("unknown variable `{var}`")));
                };
                // Key-equality addressing generates no lockable access.
                let is_key_addressing = *op == Comparison::Eq
                    && path.len() == 1
                    && range.key_attr.as_deref() == Some(path[0].as_str())
                    && range.key_predicate.is_some();
                if is_key_addressing {
                    continue;
                }
                let mut abs = range.path.clone();
                for s in path {
                    abs = abs.child(s);
                }
                if !abs.is_root() {
                    let rel = catalog
                        .schema()
                        .relation(&range.relation)
                        .map_err(|e| QueryError::Analysis(e.to_string()))?;
                    abs.resolve(rel).map_err(|e| QueryError::Analysis(e.to_string()))?;
                }
                if !out.iter().any(|a| a.var == *var && a.path == abs) {
                    out.push(Access {
                        var: var.clone(),
                        path: abs,
                        mode: AccessMode::Read,
                        whole_element: false,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Builds optimizer estimates from bound ranges + accesses + statistics.
fn build_estimates(catalog: &Catalog, bound: &[BoundRange], accesses: &[Access]) -> Vec<AccessEstimate> {
    accesses
        .iter()
        .map(|a| {
            let range = bound.iter().find(|r| r.var == a.var);
            let object_var = range.map(|r| outermost(bound, r)).unwrap_or(None);
            let objects_expected = match object_var {
                Some(ov) if ov.key_predicate.is_some() => 1.0,
                _ => catalog
                    .relation_stats(range.map(|r| r.relation.as_str()).unwrap_or(""))
                    .cardinality
                    .max(1) as f64,
            };
            let elems_expected = match range {
                Some(r) if r.path.is_root() => 1.0, // the object itself
                Some(r) if r.key_predicate.is_some() => 1.0,
                Some(r) => catalog
                    .estimated_instances(&r.relation, &r.path)
                    .unwrap_or(1.0),
                None => 1.0,
            };
            AccessEstimate {
                relation: range.map(|r| r.relation.clone()).unwrap_or_default(),
                path: a.path.clone(),
                access: a.mode,
                objects_expected,
                elems_expected,
            }
        })
        .collect()
}

fn outermost<'b>(bound: &'b [BoundRange], r: &'b BoundRange) -> Option<&'b BoundRange> {
    let mut cur = r;
    while let Some(parent) = &cur.parent {
        cur = bound.iter().find(|b| &b.var == parent)?;
    }
    Some(cur)
}

/// Evaluates an operand against variable bindings (used by the executor; the
/// function lives here to keep path semantics in one place).
pub fn eval_operand(
    bindings: &[(String, Value)],
    op: &Operand,
) -> std::result::Result<Value, QueryError> {
    match op {
        Operand::Literal(v) => Ok(v.clone()),
        Operand::Path { var, path } => {
            let (_, base) = bindings
                .iter()
                .find(|(v, _)| v == var)
                .ok_or_else(|| QueryError::Execution(format!("unbound variable `{var}`")))?;
            let mut cur = base;
            for step in path {
                cur = cur.field(step).ok_or_else(|| {
                    QueryError::Execution(format!("no field `{step}` in `{var}`"))
                })?;
            }
            Ok(cur.clone())
        }
    }
}

/// Evaluates a condition against bindings.
pub fn eval_condition(
    bindings: &[(String, Value)],
    cond: &Condition,
) -> std::result::Result<bool, QueryError> {
    match cond {
        Condition::Cmp { left, op, right } => {
            let l = eval_operand(bindings, left)?;
            let r = eval_operand(bindings, right)?;
            Ok(op.eval(&l, &r))
        }
        Condition::And(a, b) => Ok(eval_condition(bindings, a)? && eval_condition(bindings, b)?),
        Condition::Or(a, b) => Ok(eval_condition(bindings, a)? || eval_condition(bindings, b)?),
        Condition::Not(c) => Ok(!eval_condition(bindings, c)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use colock_core::fixtures::fig1_catalog;

    fn analyzed(q: &str) -> Analysis {
        analyze(&fig1_catalog(), &parse(q).unwrap()).unwrap()
    }

    #[test]
    fn q2_binds_ranges_and_keys() {
        let a = analyzed(
            "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE",
        );
        let c = a.range("c").unwrap();
        assert_eq!(c.relation, "cells");
        assert_eq!(c.key_predicate, Some(ObjectKey::from("c1")));
        let r = a.range("r").unwrap();
        assert_eq!(r.path.to_string(), "robots");
        assert_eq!(r.key_attr.as_deref(), Some("robot_id"));
        assert_eq!(r.key_predicate, Some(ObjectKey::from("r1")));
        // Only the projection access (key predicates are addressing).
        assert_eq!(a.accesses.len(), 1);
        assert_eq!(a.accesses[0].mode, AccessMode::Update);
        assert!(a.accesses[0].whole_element);
    }

    #[test]
    fn non_key_predicate_becomes_read_access() {
        let a = analyzed(
            "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.trajectory = 't1' FOR UPDATE",
        );
        let paths: Vec<String> = a.accesses.iter().map(|x| x.path.to_string()).collect();
        assert!(paths.contains(&"robots.trajectory".to_string()), "{paths:?}");
        let r = a.range("r").unwrap();
        assert!(r.key_predicate.is_none());
    }

    #[test]
    fn key_in_or_branch_is_not_addressing() {
        let a = analyzed(
            "SELECT c FROM c IN cells WHERE c.cell_id = 'c1' OR c.cell_id = 'c2' FOR READ",
        );
        assert!(a.range("c").unwrap().key_predicate.is_none());
    }

    #[test]
    fn unknown_variable_rejected() {
        let e = analyze(
            &fig1_catalog(),
            &parse("SELECT x FROM c IN cells FOR READ").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(e, QueryError::Analysis(_)));
    }

    #[test]
    fn bad_range_path_rejected() {
        let e = analyze(
            &fig1_catalog(),
            &parse("SELECT r FROM c IN cells, r IN c.cell_id FOR READ").unwrap(),
        )
        .unwrap_err();
        assert!(matches!(e, QueryError::Analysis(_)));
    }

    #[test]
    fn estimates_reflect_key_predicates() {
        let mut cat = fig1_catalog();
        cat.relation_stats_mut("cells").cardinality = 50;
        cat.record_cardinality("cells", "robots", 4.0);
        let keyed = analyze(
            &cat,
            &parse("SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id='c1' AND r.robot_id='r1' FOR UPDATE").unwrap(),
        )
        .unwrap();
        assert_eq!(keyed.estimates[0].objects_expected, 1.0);
        assert_eq!(keyed.estimates[0].elems_expected, 1.0);

        let scan = analyze(
            &cat,
            &parse("SELECT r FROM c IN cells, r IN c.robots FOR READ").unwrap(),
        )
        .unwrap();
        assert_eq!(scan.estimates[0].objects_expected, 50.0);
        assert_eq!(scan.estimates[0].elems_expected, 4.0);
    }

    #[test]
    fn condition_evaluation() {
        use colock_nf2::value::build::tup;
        let bindings = vec![(
            "r".to_string(),
            tup(vec![("robot_id", Value::str("r1")), ("n", Value::Int(5))]),
        )];
        let cond = parse("SELECT r FROM c IN cells WHERE r.robot_id = 'r1' AND r.n > 3 FOR READ");
        let Statement::Select(q) = cond.unwrap() else { panic!() };
        assert!(eval_condition(&bindings, &q.condition.unwrap()).unwrap());
    }
}
