//! Query execution (§4.1 step 3): "During query execution, the stored
//! granule and mode information are obtained from the query-specific lock
//! graphs, and locks are requested from a lock manager. … If a lock is
//! granted, the corresponding data may be accessed."

use crate::analyze::{analyze, eval_condition, eval_operand, BoundRange};
use crate::ast::{Condition, Operand, Statement};
use crate::error::QueryError;
use crate::plan::{plan_locks, QueryPlan};
use crate::Result;
use colock_core::optimizer::{Granularity, Optimizer};
use colock_core::{AccessMode, InstanceTarget};
use colock_lockmgr::LockMode;
use colock_nf2::{ObjectKey, Value};
use colock_txn::Transaction;
use std::collections::{HashMap, HashSet};

/// One result row: the projected value.
pub type Row = Value;

/// Outcome of executing a statement.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Projected rows (SELECT).
    pub rows: Vec<Row>,
    /// Number of subvalues updated.
    pub updated: usize,
    /// Number of objects/elements deleted.
    pub deleted: usize,
    /// Lock requests issued on behalf of this statement (granted,
    /// non-redundant).
    pub lock_requests: usize,
    /// Entry points locked by downward propagation.
    pub entry_points_locked: u64,
}

/// Parses, analyzes, plans and executes `input` within `txn`.
pub fn run(txn: &Transaction<'_>, input: &str, optimizer: &Optimizer) -> Result<ExecOutcome> {
    let stmt = crate::parser::parse(input)?;
    run_statement(txn, stmt, optimizer)
}

/// Analyzes, plans and executes a statement within `txn`.
pub fn run_statement(
    txn: &Transaction<'_>,
    stmt: Statement,
    optimizer: &Optimizer,
) -> Result<ExecOutcome> {
    let catalog = txn.manager().store().catalog().clone();
    let analysis = analyze(&catalog, &stmt)?;
    let plan = plan_locks(&catalog, stmt, analysis, optimizer)?;
    execute(txn, &plan)
}

/// Executes a planned statement within `txn`.
pub fn execute(txn: &Transaction<'_>, plan: &QueryPlan) -> Result<ExecOutcome> {
    let mut exec = Executor {
        txn,
        plan,
        outcome: ExecOutcome::default(),
        relation_locked: HashSet::new(),
    };
    exec.run()?;
    Ok(exec.outcome)
}

struct Executor<'t, 'p> {
    txn: &'t Transaction<'t>,
    plan: &'p QueryPlan,
    outcome: ExecOutcome,
    relation_locked: HashSet<String>,
}

/// A bound row during iteration.
#[derive(Clone)]
struct Frame {
    bindings: Vec<(String, Value)>,
    targets: HashMap<String, InstanceTarget>,
}

impl Executor<'_, '_> {
    fn run(&mut self) -> Result<()> {
        match &self.plan.statement {
            Statement::Insert { relation, value } => {
                self.txn
                    .insert(relation, value.clone())
                    .map_err(|e| QueryError::Execution(e.to_string()))?;
                self.outcome.updated += 1;
                Ok(())
            }
            Statement::Select(q) => {
                self.lock_relation_granules()?;
                let projections = q.projections.clone();
                let count = q.count;
                let condition = q.condition.clone();
                let mut rows = Vec::new();
                let mut matches = 0u64;
                self.iterate(0, &mut Frame { bindings: Vec::new(), targets: HashMap::new() }, &condition, &mut |frame| {
                    if count {
                        matches += 1;
                        return Ok(());
                    }
                    if projections.len() == 1 {
                        rows.push(project(&projections[0], frame)?);
                    } else {
                        let mut fields = Vec::with_capacity(projections.len());
                        for p in &projections {
                            fields.push((projection_name(p), project(p, frame)?));
                        }
                        rows.push(Value::Tuple(fields));
                    }
                    Ok(())
                })?;
                if count {
                    rows.push(Value::Int(matches as i64));
                }
                self.outcome.rows = rows;
                Ok(())
            }
            Statement::Update { target, value, condition, .. } => {
                self.lock_relation_granules()?;
                let condition = condition.clone();
                let target = target.clone();
                let mut updates: Vec<(InstanceTarget, Value)> = Vec::new();
                self.iterate(0, &mut Frame { bindings: Vec::new(), targets: HashMap::new() }, &condition, &mut |frame| {
                    let Operand::Path { var, path } = &target else {
                        return Err(QueryError::Execution("UPDATE target must be a path".into()));
                    };
                    let t = frame
                        .targets
                        .get(var)
                        .ok_or_else(|| QueryError::Execution(format!("unbound `{var}`")))?;
                    let mut t = t.clone();
                    for s in path {
                        t = t.attr(s);
                    }
                    updates.push((t, value.clone()));
                    Ok(())
                })?;
                for (t, v) in updates {
                    self.txn.update(&t, v).map_err(|e| QueryError::Execution(e.to_string()))?;
                    self.outcome.updated += 1;
                }
                Ok(())
            }
            Statement::Delete { var, condition, .. } => {
                self.lock_relation_granules()?;
                let condition = condition.clone();
                let var = var.clone();
                let mut victims: Vec<InstanceTarget> = Vec::new();
                self.iterate(0, &mut Frame { bindings: Vec::new(), targets: HashMap::new() }, &condition, &mut |frame| {
                    let t = frame
                        .targets
                        .get(&var)
                        .ok_or_else(|| QueryError::Execution(format!("unbound `{var}`")))?;
                    victims.push(t.clone());
                    Ok(())
                })?;
                for t in victims {
                    let res = if t.steps.is_empty() {
                        let key = t.object.clone().expect("object target");
                        self.txn.delete(&t.relation, &key)
                    } else {
                        self.txn.delete_element(&t)
                    };
                    res.map_err(|e| QueryError::Execution(e.to_string()))?;
                    self.outcome.deleted += 1;
                }
                Ok(())
            }
        }
    }

    /// Locks all Relation-granule plan entries up front.
    fn lock_relation_granules(&mut self) -> Result<()> {
        for (planned, _access) in
            self.plan.lock_plan.locks.iter().zip(&self.plan.analysis.accesses)
        {
            if planned.granularity == Granularity::Relation
                && self.relation_locked.insert(planned.relation.clone())
            {
                let mode = mode_to_access(planned.mode);
                let report = self
                    .txn
                    .lock(&InstanceTarget::relation(&planned.relation), mode)
                    .map_err(|e| QueryError::Execution(e.to_string()))?;
                self.absorb(&report);
            }
        }
        Ok(())
    }

    fn absorb(&mut self, report: &colock_core::LockReport) {
        self.outcome.lock_requests += report.lock_count();
        self.outcome.entry_points_locked += report.entry_points_locked;
    }

    /// Nested-loop iteration over the bound ranges with lock acquisition at
    /// binding time, per the query-specific lock graph.
    fn iterate(
        &mut self,
        idx: usize,
        frame: &mut Frame,
        condition: &Option<Condition>,
        visit: &mut dyn FnMut(&Frame) -> Result<()>,
    ) -> Result<()> {
        let ranges = &self.plan.analysis.ranges;
        if idx == ranges.len() {
            let keep = match condition {
                Some(c) => eval_condition(&frame.bindings, c)?,
                None => true,
            };
            if keep {
                visit(frame)?;
            }
            return Ok(());
        }
        let range = ranges[idx].clone();
        match &range.parent {
            None => {
                // Relation range: candidates by key predicate or full scan.
                let store = self.txn.manager().store().clone();
                let keys: Vec<ObjectKey> = match &range.key_predicate {
                    Some(k) => {
                        if store.contains(&range.relation, k) {
                            vec![k.clone()]
                        } else {
                            Vec::new()
                        }
                    }
                    None => store
                        .keys(&range.relation)
                        .map_err(|e| QueryError::Execution(e.to_string()))?,
                };
                for key in keys {
                    let target = InstanceTarget::object(&range.relation, key.clone());
                    self.fire_object_rules(&range, &target)?;
                    let value = store
                        .get(&range.relation, &key)
                        .map_err(|e| QueryError::Execution(e.to_string()))?;
                    frame.bindings.push((range.var.clone(), value));
                    frame.targets.insert(range.var.clone(), target);
                    self.iterate(idx + 1, frame, condition, visit)?;
                    frame.bindings.pop();
                    frame.targets.remove(&range.var);
                }
                Ok(())
            }
            Some(parent) => {
                // Dependent range: elements of a container below the parent
                // binding.
                let parent_target = frame
                    .targets
                    .get(parent)
                    .ok_or_else(|| QueryError::Execution(format!("unbound `{parent}`")))?
                    .clone();
                let parent_value = frame
                    .bindings
                    .iter()
                    .find(|(v, _)| v == parent)
                    .map(|(_, v)| v.clone())
                    .expect("parent bound");
                // Path of this range relative to its parent.
                let parent_range = self
                    .plan
                    .analysis
                    .range(parent)
                    .expect("parent analyzed");
                let rel_steps: Vec<String> = range.path.steps()
                    [parent_range.path.steps().len()..]
                    .to_vec();
                // Navigate within the bound value.
                let mut container = &parent_value;
                for s in &rel_steps {
                    container = container.field(s).ok_or_else(|| {
                        QueryError::Execution(format!("no attribute `{s}`"))
                    })?;
                }
                let elem_ty = self.element_type(&range)?;
                let elements: Vec<(Option<ObjectKey>, Value)> = container
                    .elements()
                    .map(|es| {
                        es.iter()
                            .map(|e| (elem_ty.as_ref().and_then(|t| e.element_key(t)), e.clone()))
                            .collect()
                    })
                    .unwrap_or_default();
                for (key, value) in elements {
                    if let Some(pred) = &range.key_predicate {
                        if key.as_ref() != Some(pred) {
                            continue;
                        }
                    }
                    // The element's instance target.
                    let mut target = parent_target.clone();
                    for (i, s) in rel_steps.iter().enumerate() {
                        if i + 1 == rel_steps.len() {
                            match &key {
                                Some(k) => target = target.elem(s, k.clone()),
                                None => target = target.attr(s),
                            }
                        } else {
                            target = target.attr(s);
                        }
                    }
                    self.fire_element_rules(&range, &target)?;
                    frame.bindings.push((range.var.clone(), value));
                    frame.targets.insert(range.var.clone(), target);
                    self.iterate(idx + 1, frame, condition, visit)?;
                    frame.bindings.pop();
                    frame.targets.remove(&range.var);
                }
                Ok(())
            }
        }
    }

    fn element_type(&self, range: &BoundRange) -> Result<Option<colock_nf2::AttrType>> {
        let catalog = self.txn.manager().store().catalog();
        let rel = catalog
            .schema()
            .relation(&range.relation)
            .map_err(|e| QueryError::Execution(e.to_string()))?;
        Ok(range.path.resolve(rel).ok().and_then(|t| t.element().cloned()))
    }

    /// Fires Object/Subtree lock rules when an object binding is created.
    fn fire_object_rules(&mut self, range: &BoundRange, object: &InstanceTarget) -> Result<()> {
        let rules: Vec<_> = self
            .plan
            .lock_plan
            .locks
            .iter()
            .zip(&self.plan.analysis.accesses)
            .filter(|(planned, access)| {
                planned.relation == range.relation
                    && matches!(planned.granularity, Granularity::Object | Granularity::Subtree)
                    && self.outermost_var(&access.var).as_deref() == Some(range.var.as_str())
            })
            .map(|(planned, access)| (planned.clone(), access.clone()))
            .collect();
        for (planned, access) in rules {
            let target = match planned.granularity {
                Granularity::Object => object.clone(),
                Granularity::Subtree => {
                    // Lock the ranged container (HoLU) of the access's var.
                    let holu_path = self
                        .plan
                        .analysis
                        .range(&access.var)
                        .map(|r| r.path.clone())
                        .unwrap_or_else(|| access.path.clone());
                    let mut t = object.clone();
                    for s in holu_path.steps() {
                        t = t.attr(s);
                    }
                    t
                }
                _ => continue,
            };
            let report = self
                .lock_planned(&target, planned.mode, &access.var)
                .map_err(|e| QueryError::Execution(e.to_string()))?;
            self.absorb(&report);
        }
        Ok(())
    }

    /// Fires Elements lock rules when an element binding is created.
    fn fire_element_rules(&mut self, range: &BoundRange, element: &InstanceTarget) -> Result<()> {
        let rules: Vec<_> = self
            .plan
            .lock_plan
            .locks
            .iter()
            .zip(&self.plan.analysis.accesses)
            .filter(|(planned, access)| {
                planned.granularity == Granularity::Elements && access.var == range.var
            })
            .map(|(planned, access)| (planned.clone(), access.clone()))
            .collect();
        for (planned, access) in rules {
            // Semantic container mode first (root-to-leaf, rule 5): Member/
            // Insert/Delete on the set/list replaces the plain intent so
            // distinct-element operations commute.
            if let Some(container_mode) = planned.container_mode {
                if let Some(container) = container_of(element) {
                    let report = self
                        .txn
                        .lock_with_mode_blocking(&container, container_mode)
                        .map_err(|e| QueryError::Execution(e.to_string()))?;
                    self.absorb(&report);
                }
            }
            // Trailing attribute steps below the element (e.g. trajectory).
            let trailing: Vec<String> =
                access.path.steps()[range.path.steps().len()..].to_vec();
            let mut target = element.clone();
            for s in &trailing {
                target = target.attr(s);
            }
            let report = self
                .lock_planned(&target, planned.mode, &access.var)
                .map_err(|e| QueryError::Execution(e.to_string()))?;
            self.absorb(&report);
        }
        Ok(())
    }

    /// Locks `target` in the planned mode, exploiting query semantics
    /// (§4.5): the DELETE target variable never dereferences its references,
    /// so downward propagation is skipped for it.
    fn lock_planned(
        &self,
        target: &InstanceTarget,
        mode: LockMode,
        var: &str,
    ) -> colock_txn::Result<colock_core::LockReport> {
        let no_deref = matches!(&self.plan.statement, Statement::Delete { var: dv, .. } if dv == var);
        if no_deref {
            self.txn.lock_no_deref(target, mode_to_access(mode))
        } else {
            self.txn.lock_with_mode_blocking(target, mode)
        }
    }

    fn outermost_var(&self, var: &str) -> Option<String> {
        let mut cur = self.plan.analysis.range(var)?;
        while let Some(parent) = &cur.parent {
            cur = self.plan.analysis.range(parent)?;
        }
        Some(cur.var.clone())
    }
}

fn mode_to_access(mode: LockMode) -> AccessMode {
    // Write-side modes are exactly those whose parents must announce IX
    // (SIX, X, IX itself, and the semantic Insert/Delete, which sit *below*
    // IX and so would be misread by a bare `covers(IX)` test).
    if mode.required_parent_intent() == LockMode::IX {
        AccessMode::Update
    } else {
        AccessMode::Read
    }
}

/// The enclosing container target of an element target (`…robots[r1]` →
/// `…robots`), if the target's last step is element-qualified.
fn container_of(element: &InstanceTarget) -> Option<InstanceTarget> {
    element.steps.last()?.elem.as_ref()?;
    let mut container = element.clone();
    let last = container.steps.pop()?;
    container.steps.push(colock_core::TargetStep::attr(last.attr));
    Some(container)
}

fn projection_name(p: &Operand) -> String {
    match p {
        Operand::Path { var, path } if path.is_empty() => var.clone(),
        Operand::Path { var, path } => format!("{var}.{}", path.join(".")),
        Operand::Literal(_) => "literal".to_string(),
    }
}

fn project(projection: &Operand, frame: &Frame) -> Result<Value> {
    match projection {
        Operand::Path { var, path } if var == "*" && path.is_empty() => frame
            .bindings
            .first()
            .map(|(_, v)| v.clone())
            .ok_or_else(|| QueryError::Execution("empty frame".into())),
        other => eval_operand(&frame.bindings, other),
    }
}
