//! Query errors.

use std::fmt;

/// Errors across the query pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte position in the input.
        position: usize,
        /// Description.
        message: String,
    },
    /// Parse error.
    Parse {
        /// Token position (index).
        position: usize,
        /// Description.
        message: String,
    },
    /// Semantic error (unknown variable, bad path, type mismatch, …).
    Analysis(String),
    /// Execution-time error (storage/locking) carried as text to keep the
    /// crate decoupled; the executor also returns the structured error.
    Execution(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { position, message } => write!(f, "lex error @{position}: {message}"),
            QueryError::Parse { position, message } => {
                write!(f, "parse error @token {position}: {message}")
            }
            QueryError::Analysis(m) => write!(f, "analysis error: {m}"),
            QueryError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QueryError::Analysis("x".into()).to_string().contains("analysis"));
        assert!(QueryError::Lex { position: 3, message: "bad".into() }
            .to_string()
            .contains("@3"));
    }
}
