#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # `colock-query` — an HDBL-flavoured query language
//!
//! The paper's queries (Fig. 3) are written in "a query language which is an
//! extension of SQL" — essentially HDBL, the Heidelberg Database Language of
//! AIM-P. This crate implements the subset the paper uses, plus updates and
//! deletes:
//!
//! ```text
//! SELECT o FROM c IN cells, o IN c.c_objects
//!   WHERE c.cell_id = 'c1' FOR READ
//!
//! SELECT r FROM c IN cells, r IN c.robots
//!   WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE
//!
//! UPDATE r.trajectory = 'vertical' FROM c IN cells, r IN c.robots
//!   WHERE c.cell_id = 'c1' AND r.robot_id = 'r2'
//!
//! DELETE r FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r1'
//! ```
//!
//! The pipeline follows §4.1 exactly:
//!
//! 1. [`parser`] — text → AST,
//! 2. [`analyze`] — which attributes are accessed, which kind of access,
//! 3. [`plan`] — "optimal" lock requests via the escalation-anticipating
//!    optimizer; the result is the *query-specific lock graph*,
//! 4. [`exec`] — execution: locks are requested from the lock manager using
//!    the stored granule/mode information, then the data is accessed.

pub mod analyze;
pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use analyze::{Analysis, BoundRange};
pub use ast::{Comparison, Condition, Operand, Query, RangeDecl, Statement};
pub use error::QueryError;
pub use exec::{execute, ExecOutcome, Row};
pub use parser::parse;
pub use plan::{plan_locks, QueryPlan};

/// Result alias.
pub type Result<T> = std::result::Result<T, QueryError>;
