//! Lock planning: analysis + optimizer → the query-specific lock graph.

use crate::analyze::Analysis;
use crate::ast::Statement;
use crate::Result;
use colock_core::optimizer::{Granularity, LockPlan, Optimizer};
use colock_lockmgr::LockMode;
use colock_nf2::Catalog;

/// A fully planned query: statement, analysis and the query-specific lock
/// graph (§4.1 steps 1–2; execution is step 3).
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The statement.
    pub statement: Statement,
    /// Its analysis.
    pub analysis: Analysis,
    /// The query-specific lock graph: granule + mode per access.
    pub lock_plan: LockPlan,
}

impl QueryPlan {
    /// Renders the plan like a database EXPLAIN: ranges, accesses and the
    /// query-specific lock graph (granule + mode per access).
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "ranges:");
        for r in &self.analysis.ranges {
            let _ = writeln!(
                out,
                "  {} IN {}.{}{}",
                r.var,
                r.relation,
                r.path,
                match &r.key_predicate {
                    Some(k) => format!("  [key = {k}]"),
                    None => String::new(),
                }
            );
        }
        let _ = writeln!(out, "lock plan (query-specific lock graph):");
        for (planned, access) in self.lock_plan.locks.iter().zip(&self.analysis.accesses) {
            let _ = writeln!(
                out,
                "  {:?} {} on {}.{}{} (via {})",
                planned.granularity,
                planned.mode,
                planned.relation,
                planned.path,
                match planned.container_mode {
                    Some(m) => format!(" [container {m}]"),
                    None => String::new(),
                },
                access.var
            );
        }
        if self.lock_plan.anticipated_escalations > 0 {
            let _ = writeln!(
                out,
                "anticipated escalations: {}",
                self.lock_plan.anticipated_escalations
            );
        }
        out
    }
}

/// Plans the lock requests for an analyzed statement.
pub fn plan_locks(
    catalog: &Catalog,
    statement: Statement,
    analysis: Analysis,
    optimizer: &Optimizer,
) -> Result<QueryPlan> {
    let mut lock_plan = optimizer.plan(catalog, &analysis.estimates);
    // Execution-side correction: `Elements` granularity is only realizable
    // when the element keys are known before the data is read, i.e. when the
    // range variable has a key predicate. Otherwise the subtree must be
    // locked (there is nothing finer to address).
    for (planned, access) in lock_plan.locks.iter_mut().zip(&analysis.accesses) {
        if planned.granularity == Granularity::Elements {
            let keyed = analysis
                .range(&access.var)
                .map(|r| r.key_predicate.is_some() || r.path.is_root())
                .unwrap_or(false);
            if !keyed {
                planned.granularity = Granularity::Subtree;
                // An unanticipated escalation forced at run time — exactly
                // what the optimizer is measured on in E5.
                lock_plan.anticipated_escalations += 1;
            }
        }
        // Least-restrictive mode (§4.6 advantage 4): a scan-update reads the
        // whole subtree but only updates the elements the predicate matches.
        // SIX (= S + IX) covers exactly that; the matched elements get their
        // X at update time (always safe — the write path X-locks each element
        // it touches). A plain X on the subtree would needlessly exclude
        // readers of untouched sibling elements.
        if planned.granularity == Granularity::Subtree && planned.mode == LockMode::X {
            let keyed = analysis
                .range(&access.var)
                .map(|r| r.key_predicate.is_some())
                .unwrap_or(false);
            if !keyed {
                planned.mode = LockMode::SIX;
            }
        }
        // Semantic commutativity modes: an element-granular access on a
        // keyed set/list gets its container locked Member (read) or
        // Insert/Delete (mutation) instead of the plain IS/IX intent —
        // distinct-element operations then commute in the lock table.
        if planned.granularity == Granularity::Elements
            && catalog.admits_semantic_modes(&planned.relation, &planned.path).unwrap_or(false)
        {
            planned.container_mode = match (&statement, planned.mode) {
                // Element removal commutes with other structural edits.
                (Statement::Delete { .. }, LockMode::X) => Some(LockMode::Delete),
                // Membership probe / element read.
                (_, LockMode::S) => Some(LockMode::Member),
                // In-place element update: the classical IX intent is already
                // the least-restrictive container announcement (element
                // inserts come through `Transaction::insert_element`, which
                // requests the Insert mode itself).
                _ => None,
            };
        }
    }
    Ok(QueryPlan { statement, analysis, lock_plan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse;
    use colock_core::fixtures::fig1_catalog;

    fn planned(q: &str, theta: f64, stats: impl FnOnce(&mut Catalog)) -> QueryPlan {
        let mut cat = fig1_catalog();
        stats(&mut cat);
        let stmt = parse(q).unwrap();
        let analysis = analyze(&cat, &stmt).unwrap();
        plan_locks(&cat, stmt, analysis, &Optimizer::new(theta)).unwrap()
    }

    #[test]
    fn q2_plans_single_element_x_lock() {
        let p = planned(
            "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id='c1' AND r.robot_id='r1' FOR UPDATE",
            16.0,
            |c| {
                c.relation_stats_mut("cells").cardinality = 10;
                c.record_cardinality("cells", "robots", 4.0);
            },
        );
        assert_eq!(p.lock_plan.locks.len(), 1);
        let l = &p.lock_plan.locks[0];
        assert_eq!(l.granularity, Granularity::Elements);
        assert_eq!(l.mode, LockMode::X);
    }

    #[test]
    fn unkeyed_element_scan_falls_back_to_subtree() {
        let p = planned(
            "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id='c1' FOR READ",
            16.0,
            |c| {
                c.record_cardinality("cells", "robots", 4.0);
            },
        );
        let l = &p.lock_plan.locks[0];
        assert_eq!(l.granularity, Granularity::Subtree);
        assert_eq!(l.mode, LockMode::S);
    }

    #[test]
    fn explain_renders_plan() {
        let p = planned(
            "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id='c1' AND r.robot_id='r1' FOR UPDATE",
            16.0,
            |_| {},
        );
        let text = p.explain();
        assert!(text.contains("c IN cells"), "{text}");
        assert!(text.contains("[key = c1]"), "{text}");
        assert!(text.contains("Elements X on cells.robots"), "{text}");
    }

    #[test]
    fn unkeyed_scan_update_plans_six() {
        // A scan-update reads every robot but updates only matches: the
        // subtree gets SIX, not X.
        let p = planned(
            "UPDATE r.trajectory = 'v' FROM c IN cells, r IN c.robots WHERE c.cell_id='c1' AND r.trajectory = 'old'",
            16.0,
            |c| {
                c.record_cardinality("cells", "robots", 4.0);
            },
        );
        let l = &p.lock_plan.locks[0];
        assert_eq!(l.granularity, Granularity::Subtree);
        assert_eq!(l.mode, LockMode::SIX);
    }

    #[test]
    fn keyed_element_delete_plans_semantic_container_delete() {
        let p = planned(
            "DELETE r FROM c IN cells, r IN c.robots WHERE c.cell_id='c1' AND r.robot_id='r1'",
            16.0,
            |c| {
                c.record_cardinality("cells", "robots", 4.0);
            },
        );
        let l = &p.lock_plan.locks[0];
        assert_eq!(l.granularity, Granularity::Elements);
        assert_eq!(l.mode, LockMode::X);
        assert_eq!(l.container_mode, Some(LockMode::Delete));
        assert!(p.explain().contains("[container DL]"), "{}", p.explain());
    }

    #[test]
    fn keyed_element_read_plans_semantic_member() {
        let p = planned(
            "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id='c1' AND r.robot_id='r1' FOR READ",
            16.0,
            |_| {},
        );
        let l = &p.lock_plan.locks[0];
        assert_eq!(l.granularity, Granularity::Elements);
        assert_eq!(l.mode, LockMode::S);
        assert_eq!(l.container_mode, Some(LockMode::Member));
    }

    #[test]
    fn element_update_keeps_the_classical_intent() {
        // In-place element modification is already least-restrictively
        // announced by IX; no semantic container mode applies.
        let p = planned(
            "UPDATE r.trajectory = 'v' FROM c IN cells, r IN c.robots WHERE c.cell_id='c1' AND r.robot_id='r1'",
            16.0,
            |_| {},
        );
        let l = &p.lock_plan.locks[0];
        assert_eq!(l.granularity, Granularity::Elements);
        assert_eq!(l.container_mode, None);
    }

    #[test]
    fn full_relation_scan_escalates_to_relation() {
        let p = planned("SELECT c FROM c IN cells FOR READ", 16.0, |c| {
            c.relation_stats_mut("cells").cardinality = 1000;
        });
        assert_eq!(p.lock_plan.locks[0].granularity, Granularity::Relation);
    }

    #[test]
    fn keyed_object_access_plans_object_granule() {
        let p = planned(
            "SELECT c FROM c IN cells WHERE c.cell_id = 'c1' FOR UPDATE",
            16.0,
            |c| {
                c.relation_stats_mut("cells").cardinality = 1000;
            },
        );
        assert_eq!(p.lock_plan.locks[0].granularity, Granularity::Object);
        assert_eq!(p.lock_plan.locks[0].mode, LockMode::X);
    }
}
