//! Abstract syntax of the query language.

use colock_nf2::Value;
use std::fmt;

/// A range declaration: `c IN cells` or `r IN c.robots`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeDecl {
    /// Range variable name.
    pub var: String,
    /// Source: a relation name, or a parent variable with a path.
    pub source: RangeSource,
}

/// Where a range variable draws its elements from.
#[derive(Debug, Clone, PartialEq)]
pub enum RangeSource {
    /// A relation: `c IN cells`.
    Relation(String),
    /// A path below another variable: `r IN c.robots`.
    Path {
        /// Parent range variable.
        parent: String,
        /// Dot path below the parent.
        path: Vec<String>,
    },
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An operand of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `var.path` (path may be empty for the variable itself).
    Path {
        /// Range variable.
        var: String,
        /// Dot path below it.
        path: Vec<String>,
    },
    /// A literal value.
    Literal(Value),
}

/// A boolean condition (disjunction of conjunctions of atoms).
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Comparison atom.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Operator.
        op: Comparison,
        /// Right operand.
        right: Operand,
    },
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

/// The FOR clause of a SELECT (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForClause {
    /// `FOR READ`.
    Read,
    /// `FOR UPDATE`.
    Update,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projections: one or more `var[.path]` items (a bare `*` projects the
    /// first range var). With several items, each result row is a tuple.
    pub projections: Vec<Operand>,
    /// `SELECT COUNT(*)`: return the match count instead of rows.
    pub count: bool,
    /// Range declarations, outermost first.
    pub ranges: Vec<RangeDecl>,
    /// Optional WHERE condition.
    pub condition: Option<Condition>,
    /// FOR READ / FOR UPDATE (defaults to READ).
    pub for_clause: ForClause,
}

impl Query {
    /// The first projection (every query has at least one unless `count`).
    pub fn primary_projection(&self) -> Option<&Operand> {
        self.projections.first()
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT … FROM … [WHERE …] FOR READ|UPDATE`.
    Select(Query),
    /// `UPDATE var.path = literal FROM … [WHERE …]`.
    Update {
        /// Target to assign (a var.path operand).
        target: Operand,
        /// New value.
        value: Value,
        /// Ranges.
        ranges: Vec<RangeDecl>,
        /// Condition.
        condition: Option<Condition>,
    },
    /// `DELETE var FROM … [WHERE …]` — deletes matching complex objects (the
    /// variable must range over a relation).
    Delete {
        /// Variable naming what to delete.
        var: String,
        /// Ranges.
        ranges: Vec<RangeDecl>,
        /// Condition.
        condition: Option<Condition>,
    },
    /// Programmatic insert (no literal syntax for nested values).
    Insert {
        /// Target relation.
        relation: String,
        /// The complex object.
        value: Value,
    },
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Eq => "=",
            Comparison::Neq => "<>",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
        };
        f.write_str(s)
    }
}

impl Comparison {
    /// Evaluates the comparison over two values (same-kind comparisons only;
    /// mixed kinds compare false).
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        use std::cmp::Ordering;
        let ord = match (left, right) {
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => {
                return match self {
                    Comparison::Eq => a == b,
                    Comparison::Neq => a != b,
                    Comparison::Lt => a < b,
                    Comparison::Le => a <= b,
                    Comparison::Gt => a > b,
                    Comparison::Ge => a >= b,
                };
            }
            (Value::Int(a), Value::Real(b)) => {
                return Comparison::eval(self, &Value::Real(*a as f64), &Value::Real(*b));
            }
            (Value::Real(a), Value::Int(b)) => {
                return Comparison::eval(self, &Value::Real(*a), &Value::Real(*b as f64));
            }
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => return matches!(self, Comparison::Neq),
        };
        match self {
            Comparison::Eq => ord == Ordering::Equal,
            Comparison::Neq => ord != Ordering::Equal,
            Comparison::Lt => ord == Ordering::Less,
            Comparison::Le => ord != Ordering::Greater,
            Comparison::Gt => ord == Ordering::Greater,
            Comparison::Ge => ord != Ordering::Less,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_eval_strings_and_numbers() {
        assert!(Comparison::Eq.eval(&Value::str("a"), &Value::str("a")));
        assert!(Comparison::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(Comparison::Ge.eval(&Value::Real(2.0), &Value::Int(2)));
        assert!(Comparison::Neq.eval(&Value::Int(1), &Value::str("1")));
        assert!(!Comparison::Eq.eval(&Value::Int(1), &Value::str("1")));
    }

    #[test]
    fn display_ops() {
        assert_eq!(Comparison::Le.to_string(), "<=");
    }
}
