//! Tokenizer for the HDBL-flavoured language.

use crate::error::QueryError;
use crate::Result;
use std::fmt;

/// Tokens of the query language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased).
    Keyword(String),
    /// Identifier (case-preserved).
    Ident(String),
    /// String literal (quotes removed).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `*`
    Star,
    /// `:`
    Colon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Eq => f.write_str("="),
            Token::Neq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::Star => f.write_str("*"),
            Token::Colon => f.write_str(":"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "FOR", "READ", "UPDATE", "IN", "AND", "OR", "DELETE", "SET",
    "TRUE", "FALSE", "NOT", "INSERT", "INTO", "VALUES",
];

/// Tokenizes `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QueryError::Lex {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                let mut j = i + 1;
                let mut is_real = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !is_real && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit())
                    {
                        is_real = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                if is_real {
                    let v = text.parse().map_err(|_| QueryError::Lex {
                        position: start,
                        message: format!("bad real literal `{text}`"),
                    })?;
                    tokens.push(Token::Real(v));
                } else {
                    let v = text.parse().map_err(|_| QueryError::Lex {
                        position: start,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    tokens.push(Token::Int(v));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..j];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
                i = j;
            }
            other => {
                return Err(QueryError::Lex {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_q2() {
        let q = "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE";
        let t = tokenize(q).unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert!(t.contains(&Token::Str("c1".into())));
        assert!(t.contains(&Token::Keyword("UPDATE".into())));
        assert!(t.contains(&Token::Dot));
    }

    #[test]
    fn keywords_case_insensitive_identifiers_not() {
        let t = tokenize("select Robots").unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Ident("Robots".into()));
    }

    #[test]
    fn numbers_and_comparisons() {
        let t = tokenize("x >= 10 AND y < 2.5 OR z <> -3").unwrap();
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Real(2.5)));
        assert!(t.contains(&Token::Int(-3)));
        assert!(t.contains(&Token::Neq));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("WHERE a = 'oops"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(tokenize("a ; b"), Err(QueryError::Lex { .. })));
    }
}
