//! [`InstanceSource`] implementation: the store feeds the lock protocols.

use crate::navigate;
use crate::store::Store;
use colock_core::{InstanceSource, InstanceTarget, ReverseScan, TargetStep};
use colock_nf2::{AttrType, ObjectKey, ObjectRef, Value};

impl InstanceSource for Store {
    fn refs_under(&self, target: &InstanceTarget) -> Vec<ObjectRef> {
        let Some(key) = &target.object else {
            return self.refs_in_relation(&target.relation);
        };
        let Ok(schema) = self.catalog().schema().relation(&target.relation) else {
            return Vec::new();
        };
        self.with_object(&target.relation, key, |obj| {
            navigate::navigate(schema, obj, &target.steps)
                .map(|sub| {
                    let mut refs = Vec::new();
                    sub.collect_refs(&mut refs);
                    refs.into_iter().cloned().collect()
                })
                .unwrap_or_default()
        })
        .unwrap_or_default()
    }

    fn refs_in_relation(&self, relation: &str) -> Vec<ObjectRef> {
        let Ok(keys) = self.keys(relation) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for key in keys {
            let _ = self.with_object(relation, &key, |obj| {
                let mut refs = Vec::new();
                obj.collect_refs(&mut refs);
                out.extend(refs.into_iter().cloned());
            });
        }
        out
    }

    fn tuples_under(&self, target: &InstanceTarget) -> Vec<InstanceTarget> {
        let Some(key) = &target.object else {
            return Vec::new();
        };
        let Ok(schema) = self.catalog().schema().relation(&target.relation) else {
            return Vec::new();
        };
        self.with_object(&target.relation, key, |obj| {
            let mut out = Vec::new();
            // The object's root tuple counts once when the whole object (or a
            // heterogeneous top) is targeted.
            if target.steps.is_empty() {
                out.push(InstanceTarget::object(&target.relation, key.clone()));
            }
            let Some(sub) = navigate::navigate(schema, obj, &target.steps) else {
                return out;
            };
            let sub_ty = resolve_target_type(&schema.tuple_type(), &target.steps);
            if let Some(ty) = sub_ty {
                collect_element_tuples(
                    &target.relation,
                    key,
                    &target.steps,
                    sub,
                    &ty,
                    &mut out,
                );
            }
            out
        })
        .unwrap_or_default()
    }

    fn referencing_objects(&self, relation: &str, key: &ObjectKey) -> ReverseScan {
        let mut scan = ReverseScan::default();
        let schema = self.catalog().schema();
        for rel in &schema.relations {
            if !rel.direct_ref_targets().contains(&relation) {
                continue;
            }
            let Ok(keys) = self.keys(&rel.name) else {
                continue;
            };
            for obj_key in keys {
                scan.objects_scanned += 1;
                let _ = self.with_object(&rel.name, &obj_key, |obj| {
                    find_referencing_paths(
                        &rel.name,
                        &obj_key,
                        obj,
                        &rel.tuple_type(),
                        relation,
                        key,
                        &mut Vec::new(),
                        &mut scan.referencing,
                    );
                });
            }
        }
        self.bump_scan_visits(scan.objects_scanned);
        scan
    }

    fn object_keys(&self, relation: &str) -> Vec<ObjectKey> {
        self.keys(relation).unwrap_or_default()
    }
}

/// Resolves the `AttrType` at the end of target steps (stepping through
/// set/list constructors; elem steps consume the element type).
fn resolve_target_type(root: &AttrType, steps: &[TargetStep]) -> Option<AttrType> {
    let mut cur = root.clone();
    for s in steps {
        let t = colock_nf2::path::resolve_step(&cur, &s.attr)?.clone();
        cur = if s.elem.is_some() { t.element()?.clone() } else { t };
    }
    Some(cur)
}

/// Collects the basic element tuples in `value` (of type `ty`) as lock
/// targets: each element of each set/list, recursively.
fn collect_element_tuples(
    relation: &str,
    obj_key: &ObjectKey,
    prefix: &[TargetStep],
    value: &Value,
    ty: &AttrType,
    out: &mut Vec<InstanceTarget>,
) {
    match ty {
        AttrType::Tuple(fields) => {
            for f in fields {
                if let Some(v) = value.field(&f.name) {
                    let mut p = prefix.to_vec();
                    p.push(TargetStep::attr(&f.name));
                    collect_element_tuples(relation, obj_key, &p, v, &f.ty, out);
                }
            }
        }
        AttrType::Set(elem) | AttrType::List(elem) => {
            let Some(es) = value.elements() else {
                return;
            };
            for e in es {
                let Some(k) = e.element_key(elem) else {
                    continue;
                };
                let mut p = prefix.to_vec();
                // Replace the trailing bare attr step with an elem step.
                if let Some(last) = p.last_mut() {
                    if last.elem.is_none() {
                        last.elem = Some(k.clone());
                    }
                }
                out.push(InstanceTarget {
                    relation: relation.to_string(),
                    object: Some(obj_key.clone()),
                    steps: p.clone(),
                });
                collect_element_tuples(relation, obj_key, &p, e, elem, out);
            }
        }
        _ => {}
    }
}

/// Walks `value` looking for references to `target_rel[target_key]`,
/// recording the path of the innermost enclosing element (or the object
/// itself).
#[allow(clippy::too_many_arguments)]
fn find_referencing_paths(
    relation: &str,
    obj_key: &ObjectKey,
    value: &Value,
    ty: &AttrType,
    target_rel: &str,
    target_key: &ObjectKey,
    prefix: &mut Vec<TargetStep>,
    out: &mut Vec<InstanceTarget>,
) {
    match (value, ty) {
        (Value::Ref(r), _)
            if r.relation == target_rel && &r.key == target_key => {
                // Cut at the last element step: the referencing *subobject*.
                let cut = prefix
                    .iter()
                    .rposition(|s| s.elem.is_some())
                    .map(|i| i + 1)
                    .unwrap_or(0);
                out.push(InstanceTarget {
                    relation: relation.to_string(),
                    object: Some(obj_key.clone()),
                    steps: prefix[..cut].to_vec(),
                });
            }
        (Value::Tuple(fields), AttrType::Tuple(fts)) => {
            for ((name, v), ft) in fields.iter().zip(fts) {
                debug_assert_eq!(name, &ft.name);
                prefix.push(TargetStep::attr(name));
                find_referencing_paths(relation, obj_key, v, &ft.ty, target_rel, target_key, prefix, out);
                prefix.pop();
            }
        }
        (Value::Set(es), AttrType::Set(elem)) | (Value::List(es), AttrType::List(elem)) => {
            for e in es {
                let k = e.element_key(elem);
                if let Some(last) = prefix.last_mut() {
                    last.elem = k.clone();
                }
                find_referencing_paths(relation, obj_key, e, elem, target_rel, target_key, prefix, out);
                if let Some(last) = prefix.last_mut() {
                    last.elem = None;
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::fixtures::fig1_catalog;
    use colock_nf2::value::build::*;
    use std::sync::Arc;

    fn populated() -> Store {
        let s = Store::new(Arc::new(fig1_catalog()));
        for (e, t) in [("e1", "grip"), ("e2", "weld"), ("e3", "drill")] {
            s.insert(
                "effectors",
                tup(vec![("eff_id", Value::str(e)), ("tool", Value::str(t))]),
            )
            .unwrap();
        }
        s.insert(
            "cells",
            tup(vec![
                ("cell_id", Value::str("c1")),
                (
                    "c_objects",
                    set(vec![
                        tup(vec![("obj_id", Value::str("o1")), ("obj_name", Value::str("n1"))]),
                        tup(vec![("obj_id", Value::str("o2")), ("obj_name", Value::str("n2"))]),
                    ]),
                ),
                (
                    "robots",
                    list(vec![
                        tup(vec![
                            ("robot_id", Value::str("r1")),
                            ("trajectory", Value::str("t1")),
                            (
                                "effectors",
                                set(vec![
                                    Value::reference("effectors", "e1"),
                                    Value::reference("effectors", "e2"),
                                ]),
                            ),
                        ]),
                        tup(vec![
                            ("robot_id", Value::str("r2")),
                            ("trajectory", Value::str("t2")),
                            (
                                "effectors",
                                set(vec![
                                    Value::reference("effectors", "e2"),
                                    Value::reference("effectors", "e3"),
                                ]),
                            ),
                        ]),
                    ]),
                ),
            ]),
        )
        .unwrap();
        s
    }

    #[test]
    fn refs_under_robot() {
        let s = populated();
        let t = InstanceTarget::object("cells", "c1").elem("robots", "r1");
        let refs: Vec<String> = s.refs_under(&t).iter().map(|r| r.key.to_string()).collect();
        assert_eq!(refs, vec!["e1", "e2"]);
    }

    #[test]
    fn refs_under_whole_object_and_relation() {
        let s = populated();
        assert_eq!(s.refs_under(&InstanceTarget::object("cells", "c1")).len(), 4);
        assert_eq!(s.refs_in_relation("cells").len(), 4);
        assert!(s.refs_in_relation("effectors").is_empty());
    }

    #[test]
    fn tuples_under_counts_elements_and_root() {
        let s = populated();
        let all = s.tuples_under(&InstanceTarget::object("cells", "c1"));
        // root + 2 c_objects + 2 robots = 5 (effector refs are not tuples)
        assert_eq!(all.len(), 5, "{all:?}");
        let names: Vec<String> = all.iter().map(|t| t.to_string()).collect();
        assert!(names.contains(&"cells[c1]".to_string()));
        assert!(names.contains(&"cells[c1].c_objects[o2]".to_string()));
        assert!(names.contains(&"cells[c1].robots[r2]".to_string()));
    }

    #[test]
    fn tuples_under_subtree_only() {
        let s = populated();
        let robots = s.tuples_under(&InstanceTarget::object("cells", "c1").attr("robots"));
        assert_eq!(robots.len(), 2);
    }

    #[test]
    fn reverse_scan_finds_both_robots_for_e2() {
        let s = populated();
        let scan = s.referencing_objects("effectors", &ObjectKey::from("e2"));
        let who: Vec<String> = scan.referencing.iter().map(|t| t.to_string()).collect();
        assert_eq!(who, vec!["cells[c1].robots[r1]", "cells[c1].robots[r2]"]);
        assert_eq!(scan.objects_scanned, 1);
        assert_eq!(s.scan_visits(), 1);
    }

    #[test]
    fn reverse_scan_cost_grows_with_relation_size() {
        let s = populated();
        for i in 2..=20 {
            s.insert(
                "cells",
                tup(vec![
                    ("cell_id", Value::str(format!("c{i}"))),
                    ("c_objects", set(vec![])),
                    ("robots", list(vec![])),
                ]),
            )
            .unwrap();
        }
        let scan = s.referencing_objects("effectors", &ObjectKey::from("e1"));
        assert_eq!(scan.objects_scanned, 20, "every cell must be visited");
        assert_eq!(scan.referencing.len(), 1);
    }

    #[test]
    fn object_keys_lists_relation() {
        let s = populated();
        assert_eq!(s.object_keys("effectors").len(), 3);
        assert!(s.object_keys("missing").is_empty());
    }
}
