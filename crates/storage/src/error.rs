//! Storage errors.

use colock_nf2::{Nf2Error, ObjectKey};
use std::fmt;

/// Errors raised by the store.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Schema/type error from the data model layer.
    Model(Nf2Error),
    /// Unknown relation.
    UnknownRelation(String),
    /// No object with this key.
    UnknownObject {
        /// Relation searched.
        relation: String,
        /// Missing key.
        key: ObjectKey,
    },
    /// Insert with an already-present key.
    DuplicateObject {
        /// Relation.
        relation: String,
        /// Conflicting key.
        key: ObjectKey,
    },
    /// A reference inside a value does not resolve to a stored object.
    DanglingReference {
        /// Target relation.
        relation: String,
        /// Target key that does not exist.
        key: ObjectKey,
    },
    /// Delete of an object still referenced from elsewhere.
    StillReferenced {
        /// Relation of the object.
        relation: String,
        /// Its key.
        key: ObjectKey,
        /// Number of referencing subobjects found.
        referencers: usize,
    },
    /// A target path did not resolve inside the object value.
    BadTarget(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Model(e) => write!(f, "model error: {e}"),
            StorageError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            StorageError::UnknownObject { relation, key } => {
                write!(f, "no object `{key}` in `{relation}`")
            }
            StorageError::DuplicateObject { relation, key } => {
                write!(f, "object `{key}` already exists in `{relation}`")
            }
            StorageError::DanglingReference { relation, key } => {
                write!(f, "dangling reference to `{relation}[{key}]`")
            }
            StorageError::StillReferenced { relation, key, referencers } => {
                write!(f, "`{relation}[{key}]` is still referenced by {referencers} subobject(s)")
            }
            StorageError::BadTarget(t) => write!(f, "target `{t}` does not resolve"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<Nf2Error> for StorageError {
    fn from(e: Nf2Error) -> Self {
        StorageError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_paths() {
        let e = StorageError::DanglingReference {
            relation: "effectors".into(),
            key: ObjectKey::from("e9"),
        };
        assert!(e.to_string().contains("effectors[e9]"));
    }
}
