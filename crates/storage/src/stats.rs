//! Statistics collection: measured cardinalities feed the catalog so the
//! §4.5 optimizer plans against real data.

use crate::store::Store;
use colock_nf2::{AttrPath, AttrType, Catalog, Value};
use std::collections::HashMap;

/// Computes a catalog whose statistics reflect the store's current contents:
/// relation cardinalities plus average set/list cardinalities per attribute
/// path.
pub fn catalog_with_stats(store: &Store) -> Catalog {
    let mut catalog = (**store.catalog()).clone();
    let schema = catalog.schema().clone();
    for rel in &schema.relations {
        let keys = store.keys(&rel.name).unwrap_or_default();
        let n = keys.len() as u64;
        catalog.relation_stats_mut(&rel.name).cardinality = n;
        if n == 0 {
            continue;
        }
        // Accumulate (sum, count-of-parents) per homogeneous path.
        let mut sums: HashMap<String, (f64, f64)> = HashMap::new();
        for key in &keys {
            let _ = store.with_object(&rel.name, key, |obj| {
                walk(obj, &rel.tuple_type(), &AttrPath::root(), &mut sums);
            });
        }
        for (path, (sum, parents)) in sums {
            if parents > 0.0 {
                catalog.record_cardinality(&rel.name, &path, sum / parents);
            }
        }
    }
    catalog
}

fn walk(value: &Value, ty: &AttrType, path: &AttrPath, sums: &mut HashMap<String, (f64, f64)>) {
    match (value, ty) {
        (Value::Tuple(fields), AttrType::Tuple(fts)) => {
            for ((_, v), ft) in fields.iter().zip(fts) {
                walk(v, &ft.ty, &path.child(&ft.name), sums);
            }
        }
        (Value::Set(es), AttrType::Set(elem)) | (Value::List(es), AttrType::List(elem)) => {
            let entry = sums.entry(path.to_string()).or_insert((0.0, 0.0));
            entry.0 += es.len() as f64;
            entry.1 += 1.0;
            for e in es {
                walk(e, elem, path, sums);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::fixtures::fig1_catalog;
    use colock_nf2::value::build::*;
    use std::sync::Arc;

    #[test]
    fn measured_cardinalities_land_in_catalog() {
        let s = Store::new(Arc::new(fig1_catalog()));
        s.insert("effectors", tup(vec![("eff_id", Value::str("e1")), ("tool", Value::str("t"))]))
            .unwrap();
        for c in ["c1", "c2"] {
            s.insert(
                "cells",
                tup(vec![
                    ("cell_id", Value::str(c)),
                    (
                        "c_objects",
                        set(vec![
                            tup(vec![("obj_id", Value::str(format!("{c}o1"))), ("obj_name", Value::str("n"))]),
                            tup(vec![("obj_id", Value::str(format!("{c}o2"))), ("obj_name", Value::str("n"))]),
                            tup(vec![("obj_id", Value::str(format!("{c}o3"))), ("obj_name", Value::str("n"))]),
                        ]),
                    ),
                    (
                        "robots",
                        list(vec![tup(vec![
                            ("robot_id", Value::str(format!("{c}r1"))),
                            ("trajectory", Value::str("t")),
                            ("effectors", set(vec![Value::reference("effectors", "e1")])),
                        ])]),
                    ),
                ]),
            )
            .unwrap();
        }
        let cat = catalog_with_stats(&s);
        assert_eq!(cat.relation_stats("cells").cardinality, 2);
        assert_eq!(cat.relation_stats("effectors").cardinality, 1);
        let robots = cat
            .estimated_instances("cells", &AttrPath::parse("robots"))
            .unwrap();
        assert_eq!(robots, 1.0);
        let c_objects = cat
            .estimated_instances("cells", &AttrPath::parse("c_objects"))
            .unwrap();
        assert_eq!(c_objects, 3.0);
        let eff_refs = cat
            .estimated_instances("cells", &AttrPath::parse("robots.effectors"))
            .unwrap();
        assert_eq!(eff_refs, 1.0);
    }

    #[test]
    fn empty_relations_keep_default_stats() {
        let s = Store::new(Arc::new(fig1_catalog()));
        let cat = catalog_with_stats(&s);
        assert_eq!(cat.relation_stats("cells").cardinality, 0);
    }
}
