//! The store: relations of complex objects with referential integrity.

use crate::error::StorageError;
use crate::navigate;
use crate::Result;
use colock_core::TargetStep;
use colock_nf2::{Catalog, ObjectKey, ObjectRef, RelationSchema, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-recovering latch acquisition: a reader/writer that panicked cannot
/// leave a relation permanently unusable — the data is guarded by the
/// transaction locks above, the latch only protects the map structure.
trait Latch<T> {
    fn read_latch(&self) -> RwLockReadGuard<'_, T>;
    fn write_latch(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> Latch<T> for RwLock<T> {
    fn read_latch(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_latch(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
struct RelationData {
    objects: BTreeMap<ObjectKey, Value>,
}

/// A consistent snapshot of one relation (keys in order).
#[derive(Debug, Clone)]
pub struct RelationSnapshot {
    /// Relation name.
    pub relation: String,
    /// `(key, value)` pairs in key order.
    pub objects: Vec<(ObjectKey, Value)>,
}

/// The in-memory complex-object store.
///
/// Thread-safe: relations are guarded by per-relation read/write locks (the
/// *physical* latches of a storage engine — distinct from the transaction
/// locks of `colock-lockmgr`, which are the paper's subject).
///
/// ```
/// use colock_core::fixtures::fig1_catalog;
/// use colock_nf2::value::build::tup;
/// use colock_nf2::{ObjectKey, Value};
/// use colock_storage::Store;
/// use std::sync::Arc;
///
/// let store = Store::new(Arc::new(fig1_catalog()));
/// store.insert("effectors", tup(vec![
///     ("eff_id", Value::str("e1")),
///     ("tool", Value::str("gripper")),
/// ])).unwrap();
/// let v = store.get("effectors", &ObjectKey::from("e1")).unwrap();
/// assert_eq!(v.field("tool"), Some(&Value::str("gripper")));
/// // A reference to a missing object is rejected (referential integrity).
/// assert!(store.insert("effectors", tup(vec![
///     ("eff_id", Value::Int(3)), // wrong type, schema validation fires too
///     ("tool", Value::str("t")),
/// ])).is_err());
/// ```
pub struct Store {
    catalog: Arc<Catalog>,
    relations: BTreeMap<String, RwLock<RelationData>>,
    /// Objects visited by reverse-reference scans (cumulative, for E2).
    scan_visits: AtomicU64,
}

impl Store {
    /// Creates an empty store over a catalog.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        let relations = catalog
            .schema()
            .relations
            .iter()
            .map(|r| (r.name.clone(), RwLock::new(RelationData::default())))
            .collect();
        Store { catalog, relations, scan_visits: AtomicU64::new(0) }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    fn schema_of(&self, relation: &str) -> Result<&RelationSchema> {
        self.catalog
            .schema()
            .relation(relation)
            .map_err(|_| StorageError::UnknownRelation(relation.to_string()))
    }

    fn data(&self, relation: &str) -> Result<&RwLock<RelationData>> {
        self.relations
            .get(relation)
            .ok_or_else(|| StorageError::UnknownRelation(relation.to_string()))
    }

    /// Inserts a complex object; validates the value against the schema and
    /// checks that every contained reference resolves. Returns the key.
    pub fn insert(&self, relation: &str, value: Value) -> Result<ObjectKey> {
        let schema = self.schema_of(relation)?;
        let key = value.check_object(schema)?;
        self.check_refs_resolve(&value)?;
        let mut data = self.data(relation)?.write_latch();
        if data.objects.contains_key(&key) {
            return Err(StorageError::DuplicateObject {
                relation: relation.to_string(),
                key,
            });
        }
        data.objects.insert(key.clone(), value);
        Ok(key)
    }

    /// Reads a full object (cloned).
    pub fn get(&self, relation: &str, key: &ObjectKey) -> Result<Value> {
        let data = self.data(relation)?.read_latch();
        data.objects.get(key).cloned().ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })
    }

    /// Runs `f` over an object without cloning it.
    pub fn with_object<T>(
        &self,
        relation: &str,
        key: &ObjectKey,
        f: impl FnOnce(&Value) -> T,
    ) -> Result<T> {
        let data = self.data(relation)?.read_latch();
        data.objects
            .get(key)
            .map(f)
            .ok_or_else(|| StorageError::UnknownObject {
                relation: relation.to_string(),
                key: key.clone(),
            })
    }

    /// Reads the subvalue at `steps` within an object (cloned).
    pub fn get_at(&self, relation: &str, key: &ObjectKey, steps: &[TargetStep]) -> Result<Value> {
        let schema = self.schema_of(relation)?;
        self.with_object(relation, key, |v| {
            navigate::navigate(schema, v, steps).cloned().ok_or_else(|| {
                StorageError::BadTarget(format!("{relation}[{key}].{steps:?}"))
            })
        })?
    }

    /// Replaces the whole object; returns the before-image.
    pub fn update(&self, relation: &str, key: &ObjectKey, value: Value) -> Result<Value> {
        let schema = self.schema_of(relation)?;
        let new_key = value.check_object(schema)?;
        if &new_key != key {
            return Err(StorageError::BadTarget(format!(
                "update must preserve key ({key} -> {new_key})"
            )));
        }
        self.check_refs_resolve(&value)?;
        let mut data = self.data(relation)?.write_latch();
        match data.objects.get_mut(key) {
            Some(slot) => Ok(std::mem::replace(slot, value)),
            None => Err(StorageError::UnknownObject {
                relation: relation.to_string(),
                key: key.clone(),
            }),
        }
    }

    /// Replaces the subvalue at `steps`; returns the before-image of the
    /// *replaced subvalue*. Undo granularity matches lock granularity: a
    /// rollback must restore only the subtree this update touched, or it
    /// would clobber concurrent (element-locked) sibling writes.
    pub fn update_at(
        &self,
        relation: &str,
        key: &ObjectKey,
        steps: &[TargetStep],
        new_value: Value,
    ) -> Result<Value> {
        let schema = self.schema_of(relation)?;
        self.check_refs_resolve(&new_value)?;
        let mut data = self.data(relation)?.write_latch();
        let obj = data.objects.get_mut(key).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })?;
        let whole_before = obj.clone();
        let slot = navigate::navigate_mut(schema, obj, steps).ok_or_else(|| {
            StorageError::BadTarget(format!("{relation}[{key}].{steps:?}"))
        })?;
        let before = std::mem::replace(slot, new_value);
        // Re-validate the whole object (type + key stability).
        let new_key = obj.check_object(schema)?;
        if &new_key != key {
            *obj = whole_before;
            return Err(StorageError::BadTarget("update_at must not change the key".into()));
        }
        Ok(before)
    }

    /// Writes a rollback image back at `steps` (the inverse of
    /// [`Store::update_at`]). Like [`Store::restore`], no referential checks
    /// are performed: the image is a state the object already held.
    pub fn restore_at(
        &self,
        relation: &str,
        key: &ObjectKey,
        steps: &[TargetStep],
        image: Value,
    ) -> Result<()> {
        let schema = self.schema_of(relation)?;
        let mut data = self.data(relation)?.write_latch();
        let obj = data.objects.get_mut(key).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })?;
        let slot = navigate::navigate_mut(schema, obj, steps).ok_or_else(|| {
            StorageError::BadTarget(format!("{relation}[{key}].{steps:?}"))
        })?;
        *slot = image;
        Ok(())
    }

    /// Deletes an object; rejected while other objects still reference it
    /// (referential integrity). Returns the before-image.
    pub fn delete(&self, relation: &str, key: &ObjectKey) -> Result<Value> {
        let referencers = self.count_referencers(relation, key)?;
        if referencers > 0 {
            return Err(StorageError::StillReferenced {
                relation: relation.to_string(),
                key: key.clone(),
                referencers,
            });
        }
        let mut data = self.data(relation)?.write_latch();
        data.objects.remove(key).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })
    }

    /// Restores an object to a previous image (transaction rollback); also
    /// used to undo a delete (re-insert) or an insert (remove, pass `None`).
    pub fn restore(&self, relation: &str, key: &ObjectKey, image: Option<Value>) -> Result<()> {
        let mut data = self.data(relation)?.write_latch();
        match image {
            Some(v) => {
                data.objects.insert(key.clone(), v);
            }
            None => {
                data.objects.remove(key);
            }
        }
        Ok(())
    }

    /// Keys of a relation, in order.
    pub fn keys(&self, relation: &str) -> Result<Vec<ObjectKey>> {
        Ok(self.data(relation)?.read_latch().objects.keys().cloned().collect())
    }

    /// Number of objects in a relation.
    pub fn len(&self, relation: &str) -> Result<usize> {
        Ok(self.data(relation)?.read_latch().objects.len())
    }

    /// Whether a relation is empty.
    pub fn is_empty(&self, relation: &str) -> Result<bool> {
        Ok(self.len(relation)? == 0)
    }

    /// Whether an object exists.
    pub fn contains(&self, relation: &str, key: &ObjectKey) -> bool {
        self.data(relation)
            .map(|d| d.read_latch().objects.contains_key(key))
            .unwrap_or(false)
    }

    /// A consistent snapshot of one relation.
    pub fn snapshot(&self, relation: &str) -> Result<RelationSnapshot> {
        let data = self.data(relation)?.read_latch();
        Ok(RelationSnapshot {
            relation: relation.to_string(),
            objects: data.objects.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        })
    }

    /// Objects visited by all reverse scans so far.
    pub fn scan_visits(&self) -> u64 {
        self.scan_visits.load(Ordering::Relaxed)
    }

    pub(crate) fn bump_scan_visits(&self, n: u64) {
        self.scan_visits.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts subobjects referencing `relation[key]` — a full scan over the
    /// relations whose schema can reference `relation`.
    pub fn count_referencers(&self, relation: &str, key: &ObjectKey) -> Result<usize> {
        let mut count = 0;
        for rel in &self.catalog.schema().relations {
            if !rel.direct_ref_targets().contains(&relation) {
                continue;
            }
            let data = self.data(&rel.name)?.read_latch();
            for obj in data.objects.values() {
                let mut refs = Vec::new();
                obj.collect_refs(&mut refs);
                count += refs
                    .iter()
                    .filter(|r| r.relation == relation && &r.key == key)
                    .count();
            }
        }
        Ok(count)
    }

    fn check_refs_resolve(&self, value: &Value) -> Result<()> {
        let mut refs: Vec<&ObjectRef> = Vec::new();
        value.collect_refs(&mut refs);
        for r in refs {
            let data = self.data(&r.relation)?;
            if !data.read_latch().objects.contains_key(&r.key) {
                return Err(StorageError::DanglingReference {
                    relation: r.relation.clone(),
                    key: r.key.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::fixtures::fig1_catalog;
    use colock_nf2::value::build::*;

    fn store() -> Store {
        Store::new(Arc::new(fig1_catalog()))
    }

    fn effector(id: &str, tool: &str) -> Value {
        tup(vec![("eff_id", Value::str(id)), ("tool", Value::str(tool))])
    }

    fn cell(id: &str, robots: Vec<(&str, Vec<&str>)>) -> Value {
        tup(vec![
            ("cell_id", Value::str(id)),
            ("c_objects", set(vec![])),
            (
                "robots",
                list(
                    robots
                        .into_iter()
                        .map(|(rid, effs)| {
                            tup(vec![
                                ("robot_id", Value::str(rid)),
                                ("trajectory", Value::str(format!("t-{rid}"))),
                                (
                                    "effectors",
                                    set(effs
                                        .into_iter()
                                        .map(|e| Value::reference("effectors", e))
                                        .collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn insert_get_roundtrip() {
        let s = store();
        s.insert("effectors", effector("e1", "gripper")).unwrap();
        let v = s.get("effectors", &ObjectKey::from("e1")).unwrap();
        assert_eq!(v.field("tool"), Some(&Value::str("gripper")));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let err = s.insert("effectors", effector("e1", "b")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateObject { .. }));
    }

    #[test]
    fn dangling_reference_rejected() {
        let s = store();
        let err = s.insert("cells", cell("c1", vec![("r1", vec!["e1"])])).unwrap_err();
        assert!(matches!(err, StorageError::DanglingReference { .. }));
    }

    #[test]
    fn referenced_object_cannot_be_deleted() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        s.insert("cells", cell("c1", vec![("r1", vec!["e1"])])).unwrap();
        let err = s.delete("effectors", &ObjectKey::from("e1")).unwrap_err();
        assert!(matches!(err, StorageError::StillReferenced { referencers: 1, .. }));
        // Unreferenced objects delete fine.
        s.insert("effectors", effector("e2", "b")).unwrap();
        assert!(s.delete("effectors", &ObjectKey::from("e2")).is_ok());
    }

    #[test]
    fn update_at_returns_subvalue_before_image() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        s.insert("cells", cell("c1", vec![("r1", vec!["e1"])])).unwrap();
        let key = ObjectKey::from("c1");
        let before = s
            .update_at(
                "cells",
                &key,
                &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")],
                Value::str("t-new"),
            )
            .unwrap();
        // The before-image is the replaced subvalue itself (path-granular).
        assert_eq!(before, Value::str("t-r1"));
        // And restore_at is its inverse.
        s.restore_at(
            "cells",
            &key,
            &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")],
            before,
        )
        .unwrap();
        let restored = s
            .get_at("cells", &key, &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")])
            .unwrap();
        assert_eq!(restored, Value::str("t-r1"));
        s.update_at(
            "cells",
            &key,
            &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")],
            Value::str("t-new"),
        )
        .unwrap();
        let now = s
            .get_at("cells", &key, &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")])
            .unwrap();
        assert_eq!(now, Value::str("t-new"));
    }

    #[test]
    fn update_at_rejects_key_change() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let err = s
            .update_at("effectors", &ObjectKey::from("e1"), &[TargetStep::attr("eff_id")], Value::str("e9"))
            .unwrap_err();
        assert!(matches!(err, StorageError::BadTarget(_)));
        // Object unchanged.
        let v = s.get("effectors", &ObjectKey::from("e1")).unwrap();
        assert_eq!(v.field("eff_id"), Some(&Value::str("e1")));
    }

    #[test]
    fn restore_rolls_back() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let key = ObjectKey::from("e1");
        let before = s.update("effectors", &key, effector("e1", "b")).unwrap();
        s.restore("effectors", &key, Some(before)).unwrap();
        let v = s.get("effectors", &key).unwrap();
        assert_eq!(v.field("tool"), Some(&Value::str("a")));
        // Undo an insert.
        s.restore("effectors", &key, None).unwrap();
        assert!(!s.contains("effectors", &key));
    }

    #[test]
    fn keys_are_ordered() {
        let s = store();
        for e in ["e3", "e1", "e2"] {
            s.insert("effectors", effector(e, "t")).unwrap();
        }
        let keys: Vec<String> = s.keys("effectors").unwrap().iter().map(|k| k.to_string()).collect();
        assert_eq!(keys, vec!["e1", "e2", "e3"]);
        assert_eq!(s.len("effectors").unwrap(), 3);
    }

    #[test]
    fn unknown_relation_errors() {
        let s = store();
        assert!(matches!(s.keys("nope"), Err(StorageError::UnknownRelation(_))));
        assert!(s.get("nope", &ObjectKey::from("x")).is_err());
    }

    #[test]
    fn snapshot_is_deep() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let snap = s.snapshot("effectors").unwrap();
        s.update("effectors", &ObjectKey::from("e1"), effector("e1", "b")).unwrap();
        assert_eq!(snap.objects[0].1.field("tool"), Some(&Value::str("a")));
    }
}
