//! The store: relations of complex objects with referential integrity and a
//! multiversion read overlay.
//!
//! Every committed state of an object is kept as an entry of a per-object
//! **version chain**, stamped by a monotonic commit timestamp from the
//! store's [`CommitClock`]. The live map holds the current (possibly
//! uncommitted) state behind `Arc` copy-on-write: installing a version is an
//! `Arc` clone, and the first in-place mutation after it pays the deep copy.
//! Snapshot readers resolve "newest version ≤ ts" against the chains and
//! never consult the live map, so uncommitted in-place writes are invisible
//! to them by construction.

use crate::error::StorageError;
use crate::navigate;
use crate::Result;
use colock_core::TargetStep;
use colock_nf2::{Catalog, ObjectKey, ObjectRef, RelationSchema, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-recovering latch acquisition: a reader/writer that panicked cannot
/// leave a relation permanently unusable — the data is guarded by the
/// transaction locks above, the latch only protects the map structure.
trait Latch<T> {
    fn read_latch(&self) -> RwLockReadGuard<'_, T>;
    fn write_latch(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> Latch<T> for RwLock<T> {
    fn read_latch(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_latch(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One committed state: the commit timestamp and the object image as of that
/// commit (`None` = the object was deleted by that commit).
type ChainEntry = (u64, Option<Arc<Value>>);

#[derive(Debug, Default)]
struct RelationData {
    /// Live (current) states; shared with chain entries via `Arc`
    /// copy-on-write, so an unmodified install costs one refcount.
    objects: BTreeMap<ObjectKey, Arc<Value>>,
    /// Per-object version chains, ascending by commit timestamp. Every
    /// committed object has at least one entry (non-transactional mutators
    /// auto-commit one version); a key absent here is invisible to every
    /// snapshot.
    chains: BTreeMap<ObjectKey, Vec<ChainEntry>>,
}

/// Newest chain entry visible at snapshot `ts` (`None` if the object did not
/// exist — never committed before `ts`, or deleted by then).
fn visible(chain: &[ChainEntry], ts: u64) -> Option<&Arc<Value>> {
    chain.iter().rev().find(|(t, _)| *t <= ts).and_then(|(_, v)| v.as_ref())
}

/// The monotonic commit-timestamp counter (GTM-style) behind the
/// multiversion overlay.
///
/// `stable` is the newest timestamp whose commit is fully installed; readers
/// snapshot it without any lock. The `gate` mutex serializes commits so a
/// multi-object install publishes atomically: a snapshot taken at `stable`
/// can never observe half of a commit.
#[derive(Debug, Default)]
pub struct CommitClock {
    stable: AtomicU64,
    gate: Mutex<()>,
}

impl CommitClock {
    /// The newest fully-installed commit timestamp — the snapshot timestamp
    /// a read-only transaction takes at begin.
    pub fn stable(&self) -> u64 {
        self.stable.load(Ordering::Acquire)
    }

    /// Runs `f` with a fresh commit timestamp under the commit gate and
    /// publishes the timestamp as stable afterwards. `f` installs the
    /// commit's versions; until it returns, no reader can take a snapshot
    /// that covers the new timestamp.
    pub fn commit<R>(&self, f: impl FnOnce(u64) -> R) -> R {
        let _gate = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        let ts = self.stable.load(Ordering::Relaxed) + 1;
        let out = f(ts);
        self.stable.store(ts, Ordering::Release);
        out
    }
}

/// How a committing transaction's new version of one object is derived (see
/// [`Store::install_version`]).
#[derive(Debug, Clone)]
pub enum VersionPatch {
    /// The whole live object is the new version (the writer held a
    /// whole-object X lock, e.g. it inserted the object).
    Full,
    /// Compose the new version from the last committed image plus the listed
    /// subtrees copied from the live object — the paths this transaction
    /// held element X locks on. A raw live clone would leak the uncommitted
    /// writes of concurrent sibling-element writers into the chain.
    Paths(Vec<Vec<TargetStep>>),
    /// The object was deleted.
    Tombstone,
}

/// An O(1) versioned handle to one relation: a snapshot timestamp plus a
/// borrow of the store. Materialization ([`RelationSnapshot::objects`],
/// [`RelationSnapshot::get`]) resolves against the version chains at the
/// handle's timestamp, so later writes never show through.
#[derive(Debug, Clone, Copy)]
pub struct RelationSnapshot<'s> {
    store: &'s Store,
    relation: &'s str,
    ts: u64,
}

impl RelationSnapshot<'_> {
    /// Relation name.
    pub fn relation(&self) -> &str {
        self.relation
    }

    /// The snapshot timestamp.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// `(key, value)` pairs visible at the snapshot, in key order.
    pub fn objects(&self) -> Vec<(ObjectKey, Value)> {
        let data = self.store.data(self.relation).expect("validated at snapshot()").read_latch();
        data.chains
            .iter()
            .filter_map(|(k, chain)| {
                visible(chain, self.ts).map(|v| (k.clone(), (**v).clone()))
            })
            .collect()
    }

    /// The value of one object at the snapshot, if visible.
    pub fn get(&self, key: &ObjectKey) -> Option<Value> {
        let data = self.store.data(self.relation).ok()?.read_latch();
        visible(data.chains.get(key)?, self.ts).map(|v| (**v).clone())
    }

    /// Keys visible at the snapshot, in order.
    pub fn keys(&self) -> Vec<ObjectKey> {
        let data = self.store.data(self.relation).expect("validated at snapshot()").read_latch();
        data.chains
            .iter()
            .filter(|(_, chain)| visible(chain, self.ts).is_some())
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of objects visible at the snapshot.
    pub fn len(&self) -> usize {
        let data = self.store.data(self.relation).expect("validated at snapshot()").read_latch();
        data.chains.values().filter(|chain| visible(chain, self.ts).is_some()).count()
    }

    /// Whether nothing is visible at the snapshot.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The in-memory complex-object store.
///
/// Thread-safe: relations are guarded by per-relation read/write locks (the
/// *physical* latches of a storage engine — distinct from the transaction
/// locks of `colock-lockmgr`, which are the paper's subject).
///
/// ```
/// use colock_core::fixtures::fig1_catalog;
/// use colock_nf2::value::build::tup;
/// use colock_nf2::{ObjectKey, Value};
/// use colock_storage::Store;
/// use std::sync::Arc;
///
/// let store = Store::new(Arc::new(fig1_catalog()));
/// store.insert("effectors", tup(vec![
///     ("eff_id", Value::str("e1")),
///     ("tool", Value::str("gripper")),
/// ])).unwrap();
/// let v = store.get("effectors", &ObjectKey::from("e1")).unwrap();
/// assert_eq!(v.field("tool"), Some(&Value::str("gripper")));
/// // A reference to a missing object is rejected (referential integrity).
/// assert!(store.insert("effectors", tup(vec![
///     ("eff_id", Value::Int(3)), // wrong type, schema validation fires too
///     ("tool", Value::str("t")),
/// ])).is_err());
/// ```
#[derive(Debug)]
pub struct Store {
    catalog: Arc<Catalog>,
    relations: BTreeMap<String, RwLock<RelationData>>,
    clock: CommitClock,
    /// Objects visited by reverse-reference scans (cumulative, for E2).
    scan_visits: AtomicU64,
    /// Versions installed into chains (cumulative).
    versions_installed: AtomicU64,
    /// Chain entries dropped by [`Store::prune_versions`] (cumulative).
    versions_pruned: AtomicU64,
}

impl Store {
    /// Creates an empty store over a catalog.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        let relations = catalog
            .schema()
            .relations
            .iter()
            .map(|r| (r.name.clone(), RwLock::new(RelationData::default())))
            .collect();
        Store {
            catalog,
            relations,
            clock: CommitClock::default(),
            scan_visits: AtomicU64::new(0),
            versions_installed: AtomicU64::new(0),
            versions_pruned: AtomicU64::new(0),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The commit-timestamp clock of the multiversion overlay.
    pub fn clock(&self) -> &CommitClock {
        &self.clock
    }

    fn schema_of(&self, relation: &str) -> Result<&RelationSchema> {
        self.catalog
            .schema()
            .relation(relation)
            .map_err(|_| StorageError::UnknownRelation(relation.to_string()))
    }

    fn data(&self, relation: &str) -> Result<&RwLock<RelationData>> {
        self.relations
            .get(relation)
            .ok_or_else(|| StorageError::UnknownRelation(relation.to_string()))
    }

    /// Inserts a complex object; validates the value against the schema and
    /// checks that every contained reference resolves. Returns the key.
    /// Auto-commits one version (the non-transactional entry point).
    pub fn insert(&self, relation: &str, value: Value) -> Result<ObjectKey> {
        self.clock.commit(|ts| self.insert_inner(relation, value, Some(ts)))
    }

    /// Transactional insert: identical checks, but no version is installed —
    /// the object stays invisible to snapshots until the owning transaction
    /// commits it via [`Store::install_version`].
    pub fn insert_pending(&self, relation: &str, value: Value) -> Result<ObjectKey> {
        self.insert_inner(relation, value, None)
    }

    fn insert_inner(&self, relation: &str, value: Value, version: Option<u64>) -> Result<ObjectKey> {
        let schema = self.schema_of(relation)?;
        let key = value.check_object(schema)?;
        self.check_refs_resolve(&value)?;
        let mut data = self.data(relation)?.write_latch();
        if data.objects.contains_key(&key) {
            return Err(StorageError::DuplicateObject {
                relation: relation.to_string(),
                key,
            });
        }
        let arc = Arc::new(value);
        if let Some(ts) = version {
            data.chains.entry(key.clone()).or_default().push((ts, Some(Arc::clone(&arc))));
            self.versions_installed.fetch_add(1, Ordering::Relaxed);
        }
        data.objects.insert(key.clone(), arc);
        Ok(key)
    }

    /// Reads a full object (cloned).
    pub fn get(&self, relation: &str, key: &ObjectKey) -> Result<Value> {
        let data = self.data(relation)?.read_latch();
        data.objects.get(key).map(|v| (**v).clone()).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })
    }

    /// Runs `f` over an object without cloning it.
    pub fn with_object<T>(
        &self,
        relation: &str,
        key: &ObjectKey,
        f: impl FnOnce(&Value) -> T,
    ) -> Result<T> {
        let data = self.data(relation)?.read_latch();
        data.objects
            .get(key)
            .map(|v| f(v))
            .ok_or_else(|| StorageError::UnknownObject {
                relation: relation.to_string(),
                key: key.clone(),
            })
    }

    /// Reads the subvalue at `steps` within an object (cloned).
    pub fn get_at(&self, relation: &str, key: &ObjectKey, steps: &[TargetStep]) -> Result<Value> {
        let schema = self.schema_of(relation)?;
        self.with_object(relation, key, |v| {
            navigate::navigate(schema, v, steps).cloned().ok_or_else(|| {
                StorageError::BadTarget(format!("{relation}[{key}].{steps:?}"))
            })
        })?
    }

    /// Reads the subvalue at `steps` as of snapshot timestamp `ts` — against
    /// the version chains only, never the live map, so no lock or latch held
    /// by a writer is ever needed.
    pub fn get_at_snapshot(
        &self,
        relation: &str,
        key: &ObjectKey,
        steps: &[TargetStep],
        ts: u64,
    ) -> Result<Value> {
        let schema = self.schema_of(relation)?;
        let data = self.data(relation)?.read_latch();
        let img = data.chains.get(key).and_then(|chain| visible(chain, ts)).ok_or_else(|| {
            StorageError::UnknownObject { relation: relation.to_string(), key: key.clone() }
        })?;
        navigate::navigate(schema, img, steps)
            .cloned()
            .ok_or_else(|| StorageError::BadTarget(format!("{relation}[{key}].{steps:?}")))
    }

    /// Whether an object is visible at snapshot timestamp `ts`.
    pub fn contains_at(&self, relation: &str, key: &ObjectKey, ts: u64) -> bool {
        self.data(relation)
            .map(|d| {
                d.read_latch().chains.get(key).and_then(|c| visible(c, ts)).is_some()
            })
            .unwrap_or(false)
    }

    /// Keys visible at snapshot timestamp `ts`, in order.
    pub fn keys_at(&self, relation: &str, ts: u64) -> Result<Vec<ObjectKey>> {
        let data = self.data(relation)?.read_latch();
        Ok(data
            .chains
            .iter()
            .filter(|(_, c)| visible(c, ts).is_some())
            .map(|(k, _)| k.clone())
            .collect())
    }

    /// Replaces the whole object; returns the before-image. Auto-commits one
    /// version (the non-transactional entry point).
    pub fn update(&self, relation: &str, key: &ObjectKey, value: Value) -> Result<Value> {
        let schema = self.schema_of(relation)?;
        let new_key = value.check_object(schema)?;
        if &new_key != key {
            return Err(StorageError::BadTarget(format!(
                "update must preserve key ({key} -> {new_key})"
            )));
        }
        self.check_refs_resolve(&value)?;
        self.clock.commit(|ts| {
            let mut data = self.data(relation)?.write_latch();
            match data.objects.get_mut(key) {
                Some(slot) => {
                    let arc = Arc::new(value);
                    let before = std::mem::replace(slot, Arc::clone(&arc));
                    data.chains.entry(key.clone()).or_default().push((ts, Some(arc)));
                    self.versions_installed.fetch_add(1, Ordering::Relaxed);
                    Ok((*before).clone())
                }
                None => Err(StorageError::UnknownObject {
                    relation: relation.to_string(),
                    key: key.clone(),
                }),
            }
        })
    }

    /// Replaces the subvalue at `steps`; returns the before-image of the
    /// *replaced subvalue*. Undo granularity matches lock granularity: a
    /// rollback must restore only the subtree this update touched, or it
    /// would clobber concurrent (element-locked) sibling writes.
    /// Auto-commits one version (the non-transactional entry point).
    pub fn update_at(
        &self,
        relation: &str,
        key: &ObjectKey,
        steps: &[TargetStep],
        new_value: Value,
    ) -> Result<Value> {
        self.clock.commit(|ts| self.update_at_inner(relation, key, steps, new_value, Some(ts)))
    }

    /// Transactional sub-object update: identical semantics, but the result
    /// stays out of the version chains until the owning transaction commits
    /// it via [`Store::install_version`].
    pub fn update_at_pending(
        &self,
        relation: &str,
        key: &ObjectKey,
        steps: &[TargetStep],
        new_value: Value,
    ) -> Result<Value> {
        self.update_at_inner(relation, key, steps, new_value, None)
    }

    fn update_at_inner(
        &self,
        relation: &str,
        key: &ObjectKey,
        steps: &[TargetStep],
        new_value: Value,
        version: Option<u64>,
    ) -> Result<Value> {
        let schema = self.schema_of(relation)?;
        self.check_refs_resolve(&new_value)?;
        let mut data = self.data(relation)?.write_latch();
        let slot = data.objects.get_mut(key).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })?;
        let whole_before = Arc::clone(slot);
        let obj = Arc::make_mut(slot);
        let subtree = navigate::navigate_mut(schema, obj, steps).ok_or_else(|| {
            StorageError::BadTarget(format!("{relation}[{key}].{steps:?}"))
        })?;
        let before = std::mem::replace(subtree, new_value);
        // Re-validate the whole object (type + key stability).
        let new_key = obj.check_object(schema)?;
        if &new_key != key {
            *slot = whole_before;
            return Err(StorageError::BadTarget("update_at must not change the key".into()));
        }
        if let Some(ts) = version {
            let arc = Arc::clone(slot);
            data.chains.entry(key.clone()).or_default().push((ts, Some(arc)));
            self.versions_installed.fetch_add(1, Ordering::Relaxed);
        }
        Ok(before)
    }

    /// Transactional element insert: appends `element` to the keyed set/list
    /// at `container` within `relation[key]` and returns the derived element
    /// key. No version is installed — the element stays invisible to
    /// snapshots until the owning transaction commits it via
    /// [`Store::install_version`] with the element's path in its patch.
    pub fn insert_element_pending(
        &self,
        relation: &str,
        key: &ObjectKey,
        container: &[TargetStep],
        element: Value,
    ) -> Result<ObjectKey> {
        let schema = self.schema_of(relation)?;
        self.check_refs_resolve(&element)?;
        let elem_ty = navigate::path_type(schema, container)
            .and_then(|t| t.element().cloned())
            .ok_or_else(|| {
                StorageError::BadTarget(format!("{relation}[{key}].{container:?} is not a set/list"))
            })?;
        let elem_key = element.element_key(&elem_ty).ok_or_else(|| {
            StorageError::BadTarget(format!(
                "element inserted at {relation}[{key}].{container:?} has no derivable key"
            ))
        })?;
        let mut data = self.data(relation)?.write_latch();
        let slot = data.objects.get_mut(key).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })?;
        let whole_before = Arc::clone(slot);
        let obj = Arc::make_mut(slot);
        let cont = navigate::navigate_mut(schema, obj, container).ok_or_else(|| {
            StorageError::BadTarget(format!("{relation}[{key}].{container:?}"))
        })?;
        if navigate::find_element(cont, &elem_ty, &elem_key).is_some() {
            return Err(StorageError::DuplicateObject {
                relation: format!("{relation}[{key}].{container:?}"),
                key: elem_key,
            });
        }
        cont.elements_mut()
            .expect("path_type proved this is a container")
            .push(element);
        // Re-validate the whole object (element type, set-key uniqueness).
        if let Err(e) = obj.check_object(schema) {
            *slot = whole_before;
            return Err(e.into());
        }
        Ok(elem_key)
    }

    /// Transactional element removal: removes the element with `elem_key`
    /// from the keyed set/list at `container` and returns its position and
    /// before-image. Snapshots keep seeing the element until a commit
    /// installs a version carrying the removal.
    pub fn remove_element_pending(
        &self,
        relation: &str,
        key: &ObjectKey,
        container: &[TargetStep],
        elem_key: &ObjectKey,
    ) -> Result<(usize, Value)> {
        let schema = self.schema_of(relation)?;
        let elem_ty = navigate::path_type(schema, container)
            .and_then(|t| t.element().cloned())
            .ok_or_else(|| {
                StorageError::BadTarget(format!("{relation}[{key}].{container:?} is not a set/list"))
            })?;
        let mut data = self.data(relation)?.write_latch();
        let slot = data.objects.get_mut(key).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })?;
        let obj = Arc::make_mut(slot);
        let cont = navigate::navigate_mut(schema, obj, container).ok_or_else(|| {
            StorageError::BadTarget(format!("{relation}[{key}].{container:?}"))
        })?;
        navigate::remove_element(cont, &elem_ty, elem_key).ok_or_else(|| {
            StorageError::UnknownObject {
                relation: format!("{relation}[{key}].{container:?}"),
                key: elem_key.clone(),
            }
        })
    }

    /// Rollback inverse of the element ops: `Some((at, image))`
    /// re-establishes the element at its original position (undoing a
    /// removal), `None` drops it (undoing an insert). Like
    /// [`Store::restore`], no checks run and no version is installed — the
    /// image is a state the element already held.
    pub fn restore_element(
        &self,
        relation: &str,
        key: &ObjectKey,
        container: &[TargetStep],
        elem_key: &ObjectKey,
        image: Option<(usize, Value)>,
    ) -> Result<()> {
        let schema = self.schema_of(relation)?;
        let elem_ty = navigate::path_type(schema, container)
            .and_then(|t| t.element().cloned())
            .ok_or_else(|| {
                StorageError::BadTarget(format!("{relation}[{key}].{container:?} is not a set/list"))
            })?;
        let mut data = self.data(relation)?.write_latch();
        let slot = data.objects.get_mut(key).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })?;
        let obj = Arc::make_mut(slot);
        let cont = navigate::navigate_mut(schema, obj, container).ok_or_else(|| {
            StorageError::BadTarget(format!("{relation}[{key}].{container:?}"))
        })?;
        navigate::remove_element(cont, &elem_ty, elem_key);
        if let Some((at, v)) = image {
            if let Some(es) = cont.elements_mut() {
                es.insert(at.min(es.len()), v);
            }
        }
        Ok(())
    }

    /// Writes a rollback image back at `steps` (the inverse of
    /// [`Store::update_at`]). Like [`Store::restore`], no referential checks
    /// are performed and no version is installed: the image is a state the
    /// object already held.
    pub fn restore_at(
        &self,
        relation: &str,
        key: &ObjectKey,
        steps: &[TargetStep],
        image: Value,
    ) -> Result<()> {
        let schema = self.schema_of(relation)?;
        let mut data = self.data(relation)?.write_latch();
        let slot = data.objects.get_mut(key).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })?;
        let obj = Arc::make_mut(slot);
        let subtree = navigate::navigate_mut(schema, obj, steps).ok_or_else(|| {
            StorageError::BadTarget(format!("{relation}[{key}].{steps:?}"))
        })?;
        *subtree = image;
        Ok(())
    }

    /// Deletes an object; rejected while other objects still reference it
    /// (referential integrity). Returns the before-image. Auto-commits a
    /// tombstone version (the non-transactional entry point).
    pub fn delete(&self, relation: &str, key: &ObjectKey) -> Result<Value> {
        self.clock.commit(|ts| self.delete_inner(relation, key, Some(ts)))
    }

    /// Transactional delete: the object leaves the live map now, but stays
    /// visible to snapshots until the owning transaction commits a tombstone
    /// via [`Store::install_version`].
    pub fn delete_pending(&self, relation: &str, key: &ObjectKey) -> Result<Value> {
        self.delete_inner(relation, key, None)
    }

    fn delete_inner(&self, relation: &str, key: &ObjectKey, version: Option<u64>) -> Result<Value> {
        let referencers = self.count_referencers(relation, key)?;
        if referencers > 0 {
            return Err(StorageError::StillReferenced {
                relation: relation.to_string(),
                key: key.clone(),
                referencers,
            });
        }
        let mut data = self.data(relation)?.write_latch();
        let gone = data.objects.remove(key).ok_or_else(|| StorageError::UnknownObject {
            relation: relation.to_string(),
            key: key.clone(),
        })?;
        if let Some(ts) = version {
            data.chains.entry(key.clone()).or_default().push((ts, None));
            self.versions_installed.fetch_add(1, Ordering::Relaxed);
        }
        Ok((*gone).clone())
    }

    /// Restores an object to a previous image (transaction rollback); also
    /// used to undo a delete (re-insert) or an insert (remove, pass `None`).
    /// Never versions: rollback re-establishes a state the chains already
    /// end in.
    pub fn restore(&self, relation: &str, key: &ObjectKey, image: Option<Value>) -> Result<()> {
        let mut data = self.data(relation)?.write_latch();
        match image {
            Some(v) => {
                data.objects.insert(key.clone(), Arc::new(v));
            }
            None => {
                data.objects.remove(key);
            }
        }
        Ok(())
    }

    /// Installs one object's new committed version at timestamp `ts` — the
    /// commit step of a writing transaction, called under
    /// [`CommitClock::commit`] while the writer still holds its X locks.
    ///
    /// `Paths` composition exists because element X locks admit concurrent
    /// writers on *sibling* elements of the same object: the live object may
    /// carry their uncommitted data, so the new version is the last
    /// committed image plus only the committing transaction's own locked
    /// subtrees. If composition is impossible (no prior committed image, a
    /// path that no longer navigates), the whole live object is installed.
    pub fn install_version(
        &self,
        relation: &str,
        key: &ObjectKey,
        ts: u64,
        patch: &VersionPatch,
    ) -> Result<()> {
        let schema = self.schema_of(relation)?;
        let mut data = self.data(relation)?.write_latch();
        let data = &mut *data;
        let entry = match patch {
            VersionPatch::Tombstone => (ts, None),
            VersionPatch::Full => {
                let live = data.objects.get(key).ok_or_else(|| StorageError::UnknownObject {
                    relation: relation.to_string(),
                    key: key.clone(),
                })?;
                (ts, Some(Arc::clone(live)))
            }
            VersionPatch::Paths(paths) => {
                let live = data.objects.get(key).ok_or_else(|| StorageError::UnknownObject {
                    relation: relation.to_string(),
                    key: key.clone(),
                })?;
                let base = data.chains.get(key).and_then(|c| c.last()).and_then(|(_, v)| v.as_ref());
                match base {
                    None => (ts, Some(Arc::clone(live))),
                    Some(base) => {
                        let mut img = (**base).clone();
                        let composed =
                            paths.iter().all(|path| compose_path(schema, live, &mut img, path));
                        if composed {
                            (ts, Some(Arc::new(img)))
                        } else {
                            (ts, Some(Arc::clone(live)))
                        }
                    }
                }
            }
        };
        data.chains.entry(key.clone()).or_default().push(entry);
        self.versions_installed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Drops chain entries no active snapshot can reach: per chain, every
    /// entry older than the newest entry ≤ `watermark` (the oldest active
    /// snapshot timestamp). A chain whose only remaining entry is a
    /// tombstone ≤ `watermark` is removed entirely. Returns the number of
    /// entries dropped.
    pub fn prune_versions(&self, watermark: u64) -> u64 {
        let mut pruned = 0u64;
        for lock in self.relations.values() {
            let mut data = lock.write_latch();
            data.chains.retain(|_, chain| {
                let keep_from = chain.iter().rposition(|(t, _)| *t <= watermark).unwrap_or(0);
                pruned += keep_from as u64;
                chain.drain(..keep_from);
                if chain.len() == 1 && chain[0].0 <= watermark && chain[0].1.is_none() {
                    pruned += 1;
                    return false;
                }
                true
            });
        }
        self.versions_pruned.fetch_add(pruned, Ordering::Relaxed);
        pruned
    }

    /// Total chain entries of one relation (GC observability).
    pub fn version_entries(&self, relation: &str) -> Result<usize> {
        Ok(self.data(relation)?.read_latch().chains.values().map(Vec::len).sum())
    }

    /// Versions installed into chains so far (cumulative).
    pub fn versions_installed(&self) -> u64 {
        self.versions_installed.load(Ordering::Relaxed)
    }

    /// Chain entries dropped by pruning so far (cumulative).
    pub fn versions_pruned(&self) -> u64 {
        self.versions_pruned.load(Ordering::Relaxed)
    }

    /// Keys of a relation, in order.
    pub fn keys(&self, relation: &str) -> Result<Vec<ObjectKey>> {
        Ok(self.data(relation)?.read_latch().objects.keys().cloned().collect())
    }

    /// Number of objects in a relation.
    pub fn len(&self, relation: &str) -> Result<usize> {
        Ok(self.data(relation)?.read_latch().objects.len())
    }

    /// Whether a relation is empty.
    pub fn is_empty(&self, relation: &str) -> Result<bool> {
        Ok(self.len(relation)? == 0)
    }

    /// Whether an object exists.
    pub fn contains(&self, relation: &str, key: &ObjectKey) -> bool {
        self.data(relation)
            .map(|d| d.read_latch().objects.contains_key(key))
            .unwrap_or(false)
    }

    /// An O(1) versioned snapshot handle of one relation, pinned at the
    /// current stable commit timestamp. Later writes never show through;
    /// materialization is deferred to the accessors.
    pub fn snapshot(&self, relation: &str) -> Result<RelationSnapshot<'_>> {
        let (name, _) = self
            .relations
            .get_key_value(relation)
            .ok_or_else(|| StorageError::UnknownRelation(relation.to_string()))?;
        Ok(RelationSnapshot { store: self, relation: name, ts: self.clock.stable() })
    }

    /// Objects visited by all reverse scans so far.
    pub fn scan_visits(&self) -> u64 {
        self.scan_visits.load(Ordering::Relaxed)
    }

    pub(crate) fn bump_scan_visits(&self, n: u64) {
        self.scan_visits.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts subobjects referencing `relation[key]` — a full scan over the
    /// relations whose schema can reference `relation`.
    pub fn count_referencers(&self, relation: &str, key: &ObjectKey) -> Result<usize> {
        let mut count = 0;
        for rel in &self.catalog.schema().relations {
            if !rel.direct_ref_targets().contains(&relation) {
                continue;
            }
            let data = self.data(&rel.name)?.read_latch();
            for obj in data.objects.values() {
                let mut refs = Vec::new();
                obj.collect_refs(&mut refs);
                count += refs
                    .iter()
                    .filter(|r| r.relation == relation && &r.key == key)
                    .count();
            }
        }
        Ok(count)
    }

    fn check_refs_resolve(&self, value: &Value) -> Result<()> {
        let mut refs: Vec<&ObjectRef> = Vec::new();
        value.collect_refs(&mut refs);
        for r in refs {
            let data = self.data(&r.relation)?;
            if !data.read_latch().objects.contains_key(&r.key) {
                return Err(StorageError::DanglingReference {
                    relation: r.relation.clone(),
                    key: r.key.clone(),
                });
            }
        }
        Ok(())
    }
}

/// Copies the subtree at `path` from `live` into `img`, element-aware: a
/// trailing elem step that navigates in `live` but not in `img` is an
/// element *insert* (appended to `img`'s container), one that navigates in
/// `img` but not in `live` is an element *removal*. Returns `false` when the
/// path cannot be composed (the caller falls back to the whole live object).
fn compose_path(
    schema: &RelationSchema,
    live: &Arc<Value>,
    img: &mut Value,
    path: &[TargetStep],
) -> bool {
    // The container path of a trailing elem step, plus its element type.
    let elem_context = || {
        let (last, prefix) = path.split_last()?;
        let elem_key = last.elem.clone()?;
        let mut cpath = prefix.to_vec();
        cpath.push(TargetStep::attr(last.attr.clone()));
        let elem_ty = navigate::path_type(schema, &cpath)?.element()?.clone();
        Some((cpath, elem_ty, elem_key))
    };
    match navigate::navigate(schema, live, path).cloned() {
        Some(src) => {
            if let Some(dst) = navigate::navigate_mut(schema, img, path) {
                *dst = src;
                return true;
            }
            // In live but not in the committed base: an inserted element.
            let Some((cpath, elem_ty, elem_key)) = elem_context() else {
                return false;
            };
            let Some(es) = navigate::navigate_mut(schema, img, &cpath)
                .and_then(Value::elements_mut)
            else {
                return false;
            };
            es.retain(|e| e.element_key(&elem_ty).as_ref() != Some(&elem_key));
            es.push(src);
            true
        }
        None => {
            // Gone from live: a removed element (anything else can't compose).
            let Some((cpath, elem_ty, elem_key)) = elem_context() else {
                return false;
            };
            match navigate::navigate_mut(schema, img, &cpath).and_then(Value::elements_mut) {
                Some(es) => {
                    es.retain(|e| e.element_key(&elem_ty).as_ref() != Some(&elem_key));
                    true
                }
                None => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_core::fixtures::fig1_catalog;
    use colock_nf2::value::build::*;

    fn store() -> Store {
        Store::new(Arc::new(fig1_catalog()))
    }

    fn effector(id: &str, tool: &str) -> Value {
        tup(vec![("eff_id", Value::str(id)), ("tool", Value::str(tool))])
    }

    fn cell(id: &str, robots: Vec<(&str, Vec<&str>)>) -> Value {
        tup(vec![
            ("cell_id", Value::str(id)),
            ("c_objects", set(vec![])),
            (
                "robots",
                list(
                    robots
                        .into_iter()
                        .map(|(rid, effs)| {
                            tup(vec![
                                ("robot_id", Value::str(rid)),
                                ("trajectory", Value::str(format!("t-{rid}"))),
                                (
                                    "effectors",
                                    set(effs
                                        .into_iter()
                                        .map(|e| Value::reference("effectors", e))
                                        .collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn insert_get_roundtrip() {
        let s = store();
        s.insert("effectors", effector("e1", "gripper")).unwrap();
        let v = s.get("effectors", &ObjectKey::from("e1")).unwrap();
        assert_eq!(v.field("tool"), Some(&Value::str("gripper")));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let err = s.insert("effectors", effector("e1", "b")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateObject { .. }));
    }

    #[test]
    fn dangling_reference_rejected() {
        let s = store();
        let err = s.insert("cells", cell("c1", vec![("r1", vec!["e1"])])).unwrap_err();
        assert!(matches!(err, StorageError::DanglingReference { .. }));
    }

    #[test]
    fn referenced_object_cannot_be_deleted() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        s.insert("cells", cell("c1", vec![("r1", vec!["e1"])])).unwrap();
        let err = s.delete("effectors", &ObjectKey::from("e1")).unwrap_err();
        assert!(matches!(err, StorageError::StillReferenced { referencers: 1, .. }));
        // Unreferenced objects delete fine.
        s.insert("effectors", effector("e2", "b")).unwrap();
        assert!(s.delete("effectors", &ObjectKey::from("e2")).is_ok());
    }

    #[test]
    fn update_at_returns_subvalue_before_image() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        s.insert("cells", cell("c1", vec![("r1", vec!["e1"])])).unwrap();
        let key = ObjectKey::from("c1");
        let before = s
            .update_at(
                "cells",
                &key,
                &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")],
                Value::str("t-new"),
            )
            .unwrap();
        // The before-image is the replaced subvalue itself (path-granular).
        assert_eq!(before, Value::str("t-r1"));
        // And restore_at is its inverse.
        s.restore_at(
            "cells",
            &key,
            &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")],
            before,
        )
        .unwrap();
        let restored = s
            .get_at("cells", &key, &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")])
            .unwrap();
        assert_eq!(restored, Value::str("t-r1"));
        s.update_at(
            "cells",
            &key,
            &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")],
            Value::str("t-new"),
        )
        .unwrap();
        let now = s
            .get_at("cells", &key, &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")])
            .unwrap();
        assert_eq!(now, Value::str("t-new"));
    }

    #[test]
    fn update_at_rejects_key_change() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let err = s
            .update_at("effectors", &ObjectKey::from("e1"), &[TargetStep::attr("eff_id")], Value::str("e9"))
            .unwrap_err();
        assert!(matches!(err, StorageError::BadTarget(_)));
        // Object unchanged.
        let v = s.get("effectors", &ObjectKey::from("e1")).unwrap();
        assert_eq!(v.field("eff_id"), Some(&Value::str("e1")));
    }

    #[test]
    fn restore_rolls_back() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let key = ObjectKey::from("e1");
        let before = s.update("effectors", &key, effector("e1", "b")).unwrap();
        s.restore("effectors", &key, Some(before)).unwrap();
        let v = s.get("effectors", &key).unwrap();
        assert_eq!(v.field("tool"), Some(&Value::str("a")));
        // Undo an insert.
        s.restore("effectors", &key, None).unwrap();
        assert!(!s.contains("effectors", &key));
    }

    #[test]
    fn keys_are_ordered() {
        let s = store();
        for e in ["e3", "e1", "e2"] {
            s.insert("effectors", effector(e, "t")).unwrap();
        }
        let keys: Vec<String> = s.keys("effectors").unwrap().iter().map(|k| k.to_string()).collect();
        assert_eq!(keys, vec!["e1", "e2", "e3"]);
        assert_eq!(s.len("effectors").unwrap(), 3);
    }

    #[test]
    fn unknown_relation_errors() {
        let s = store();
        assert!(matches!(s.keys("nope"), Err(StorageError::UnknownRelation(_))));
        assert!(s.get("nope", &ObjectKey::from("x")).is_err());
    }

    #[test]
    fn snapshot_is_deep() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let snap = s.snapshot("effectors").unwrap();
        s.update("effectors", &ObjectKey::from("e1"), effector("e1", "b")).unwrap();
        assert_eq!(snap.objects()[0].1.field("tool"), Some(&Value::str("a")));
    }

    #[test]
    fn snapshot_handle_is_lazy_and_pinned() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let snap = s.snapshot("effectors").unwrap();
        let ts = snap.ts();
        s.insert("effectors", effector("e2", "b")).unwrap();
        s.delete("effectors", &ObjectKey::from("e1")).unwrap();
        // The handle still sees exactly the state at its timestamp.
        assert_eq!(snap.keys().len(), 1);
        assert_eq!(snap.get(&ObjectKey::from("e1")).unwrap().field("tool"), Some(&Value::str("a")));
        assert!(snap.get(&ObjectKey::from("e2")).is_none());
        assert_eq!(snap.len(), 1);
        assert!(!snap.is_empty());
        // A fresh handle sees the new state.
        let now = s.snapshot("effectors").unwrap();
        assert!(now.ts() > ts);
        assert_eq!(now.keys(), vec![ObjectKey::from("e2")]);
    }

    #[test]
    fn pending_writes_are_invisible_to_snapshots() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let ts = s.clock().stable();
        // Pending update: live changes, chains do not.
        s.update_at_pending("effectors", &ObjectKey::from("e1"), &[TargetStep::attr("tool")], Value::str("dirty"))
            .unwrap();
        let read = s
            .get_at_snapshot("effectors", &ObjectKey::from("e1"), &[TargetStep::attr("tool")], ts)
            .unwrap();
        assert_eq!(read, Value::str("a"));
        // Pending insert: invisible until installed.
        s.insert_pending("effectors", effector("e2", "b")).unwrap();
        assert!(!s.contains_at("effectors", &ObjectKey::from("e2"), s.clock().stable()));
        // Install both at one commit timestamp.
        s.clock().commit(|ts| {
            s.install_version("effectors", &ObjectKey::from("e1"), ts, &VersionPatch::Paths(vec![vec![
                TargetStep::attr("tool"),
            ]]))
            .unwrap();
            s.install_version("effectors", &ObjectKey::from("e2"), ts, &VersionPatch::Full).unwrap();
        });
        let now = s.clock().stable();
        assert_eq!(
            s.get_at_snapshot("effectors", &ObjectKey::from("e1"), &[TargetStep::attr("tool")], now)
                .unwrap(),
            Value::str("dirty")
        );
        assert!(s.contains_at("effectors", &ObjectKey::from("e2"), now));
        // The old snapshot still reads the old value.
        assert_eq!(
            s.get_at_snapshot("effectors", &ObjectKey::from("e1"), &[TargetStep::attr("tool")], ts)
                .unwrap(),
            Value::str("a")
        );
    }

    #[test]
    fn paths_patch_excludes_sibling_dirty_data() {
        let s = store();
        s.insert("effectors", effector("e1", "x")).unwrap();
        s.insert("effectors", effector("e2", "y")).unwrap();
        s.insert("cells", cell("c1", vec![("r1", vec!["e1"]), ("r2", vec!["e2"])])).unwrap();
        let key = ObjectKey::from("c1");
        let r1 = vec![TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")];
        let r2 = vec![TargetStep::elem("robots", "r2"), TargetStep::attr("trajectory")];
        // Two concurrent element writers: T1 updates r1, T2 updates r2.
        // Both are pending; T1 commits first.
        s.update_at_pending("cells", &key, &r1, Value::str("t1-traj")).unwrap();
        s.update_at_pending("cells", &key, &r2, Value::str("t2-dirty")).unwrap();
        s.clock().commit(|ts| {
            s.install_version("cells", &key, ts, &VersionPatch::Paths(vec![r1.clone()])).unwrap();
        });
        let now = s.clock().stable();
        // T1's commit carries its own subtree but NOT T2's uncommitted write.
        assert_eq!(s.get_at_snapshot("cells", &key, &r1, now).unwrap(), Value::str("t1-traj"));
        assert_eq!(s.get_at_snapshot("cells", &key, &r2, now).unwrap(), Value::str("t-r2"));
        // After T2 commits, its subtree is visible too.
        s.clock().commit(|ts| {
            s.install_version("cells", &key, ts, &VersionPatch::Paths(vec![r2.clone()])).unwrap();
        });
        let later = s.clock().stable();
        assert_eq!(s.get_at_snapshot("cells", &key, &r2, later).unwrap(), Value::str("t2-dirty"));
        assert_eq!(s.get_at_snapshot("cells", &key, &r1, later).unwrap(), Value::str("t1-traj"));
    }

    fn robot(id: &str) -> Value {
        tup(vec![
            ("robot_id", Value::str(id)),
            ("trajectory", Value::str(format!("t-{id}"))),
            ("effectors", set(vec![])),
        ])
    }

    #[test]
    fn element_insert_remove_restore_roundtrip() {
        let s = store();
        s.insert("cells", cell("c1", vec![("r1", vec![])])).unwrap();
        let key = ObjectKey::from("c1");
        let robots = [TargetStep::attr("robots")];
        // Insert derives the element key from the key attribute.
        let ek = s.insert_element_pending("cells", &key, &robots, robot("r2")).unwrap();
        assert_eq!(ek, ObjectKey::from("r2"));
        assert!(s
            .get_at("cells", &key, &[TargetStep::elem("robots", "r2")])
            .is_ok());
        // Same key again is a duplicate.
        assert!(matches!(
            s.insert_element_pending("cells", &key, &robots, robot("r2")),
            Err(StorageError::DuplicateObject { .. })
        ));
        // Removal returns the before-image; restore re-establishes it.
        let before = s.remove_element_pending("cells", &key, &robots, &ek).unwrap();
        assert!(s.get_at("cells", &key, &[TargetStep::elem("robots", "r2")]).is_err());
        s.restore_element("cells", &key, &robots, &ek, Some(before)).unwrap();
        assert!(s.get_at("cells", &key, &[TargetStep::elem("robots", "r2")]).is_ok());
        // Undo of an insert: restore with None.
        s.restore_element("cells", &key, &robots, &ek, None).unwrap();
        assert!(s.get_at("cells", &key, &[TargetStep::elem("robots", "r2")]).is_err());
    }

    #[test]
    fn element_insert_rejects_bad_targets() {
        let s = store();
        s.insert("cells", cell("c1", vec![("r1", vec![])])).unwrap();
        let key = ObjectKey::from("c1");
        // A scalar attribute is not a container.
        assert!(matches!(
            s.insert_element_pending("cells", &key, &[TargetStep::attr("cell_id")], robot("r2")),
            Err(StorageError::BadTarget(_))
        ));
        // A schema-typed element that fails validation is rolled back whole.
        let bad = tup(vec![("robot_id", Value::Int(9))]);
        assert!(s
            .insert_element_pending("cells", &key, &[TargetStep::attr("robots")], bad)
            .is_err());
        assert_eq!(
            s.get("cells", &key).unwrap().field("robots").unwrap().elements().unwrap().len(),
            1
        );
    }

    #[test]
    fn element_insert_composes_without_leaking_sibling_writes() {
        // The regression install_version's element-awareness exists for: a
        // committing element INSERT used to fall back to the whole live
        // clone, carrying a concurrent sibling writer's uncommitted update
        // into the committed chain.
        let s = store();
        s.insert("cells", cell("c1", vec![("r1", vec![])])).unwrap();
        let key = ObjectKey::from("c1");
        let robots = [TargetStep::attr("robots")];
        let r1_traj = vec![TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")];
        let r2_path = vec![TargetStep::elem("robots", "r2")];
        // T1 inserts element r2; T2 updates sibling r1 — both pending.
        s.insert_element_pending("cells", &key, &robots, robot("r2")).unwrap();
        s.update_at_pending("cells", &key, &r1_traj, Value::str("t2-dirty")).unwrap();
        // T1 commits alone.
        s.clock().commit(|ts| {
            s.install_version("cells", &key, ts, &VersionPatch::Paths(vec![r2_path.clone()]))
                .unwrap();
        });
        let now = s.clock().stable();
        // The insert is visible, the sibling's dirty write is not.
        assert!(s.get_at_snapshot("cells", &key, &r2_path, now).is_ok());
        assert_eq!(s.get_at_snapshot("cells", &key, &r1_traj, now).unwrap(), Value::str("t-r1"));
        // T2 commits; its update lands on top of the insert.
        s.clock().commit(|ts| {
            s.install_version("cells", &key, ts, &VersionPatch::Paths(vec![r1_traj.clone()]))
                .unwrap();
        });
        let later = s.clock().stable();
        assert_eq!(
            s.get_at_snapshot("cells", &key, &r1_traj, later).unwrap(),
            Value::str("t2-dirty")
        );
        assert!(s.get_at_snapshot("cells", &key, &r2_path, later).is_ok());
    }

    #[test]
    fn element_removal_composes_into_the_committed_image() {
        let s = store();
        s.insert("cells", cell("c1", vec![("r1", vec![]), ("r2", vec![])])).unwrap();
        let key = ObjectKey::from("c1");
        let robots = [TargetStep::attr("robots")];
        let r2_path = vec![TargetStep::elem("robots", "r2")];
        let before_ts = s.clock().stable();
        s.remove_element_pending("cells", &key, &robots, &ObjectKey::from("r2")).unwrap();
        // Visible to snapshots until the removal commits.
        assert!(s.get_at_snapshot("cells", &key, &r2_path, s.clock().stable()).is_ok());
        s.clock().commit(|ts| {
            s.install_version("cells", &key, ts, &VersionPatch::Paths(vec![r2_path.clone()]))
                .unwrap();
        });
        assert!(s.get_at_snapshot("cells", &key, &r2_path, s.clock().stable()).is_err());
        // Old snapshots still see it.
        assert!(s.get_at_snapshot("cells", &key, &r2_path, before_ts).is_ok());
    }

    #[test]
    fn tombstone_hides_object_from_later_snapshots() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        let before = s.clock().stable();
        s.delete_pending("effectors", &ObjectKey::from("e1")).unwrap();
        // Still visible to snapshots until the tombstone commits.
        assert!(s.contains_at("effectors", &ObjectKey::from("e1"), s.clock().stable()));
        s.clock().commit(|ts| {
            s.install_version("effectors", &ObjectKey::from("e1"), ts, &VersionPatch::Tombstone)
                .unwrap();
        });
        assert!(!s.contains_at("effectors", &ObjectKey::from("e1"), s.clock().stable()));
        assert!(s.contains_at("effectors", &ObjectKey::from("e1"), before));
        assert_eq!(s.keys_at("effectors", before).unwrap().len(), 1);
        assert!(s.keys_at("effectors", s.clock().stable()).unwrap().is_empty());
    }

    #[test]
    fn prune_keeps_watermark_visibility() {
        let s = store();
        s.insert("effectors", effector("e1", "v0")).unwrap();
        for i in 1..=5 {
            s.update("effectors", &ObjectKey::from("e1"), effector("e1", &format!("v{i}")))
                .unwrap();
        }
        assert_eq!(s.version_entries("effectors").unwrap(), 6);
        let watermark = 3; // an active snapshot at ts=3
        let pruned = s.prune_versions(watermark);
        assert_eq!(pruned, 2); // ts 1 and 2 dropped; 3,4,5,6 kept
        assert_eq!(s.version_entries("effectors").unwrap(), 4);
        // The watermark snapshot still reads its version.
        let v = s
            .get_at_snapshot("effectors", &ObjectKey::from("e1"), &[TargetStep::attr("tool")], watermark)
            .unwrap();
        assert_eq!(v, Value::str("v2"));
        assert_eq!(s.versions_pruned(), 2);
        assert!(s.versions_installed() >= 6);
    }

    #[test]
    fn prune_drops_dead_tombstone_chains() {
        let s = store();
        s.insert("effectors", effector("e1", "a")).unwrap();
        s.delete("effectors", &ObjectKey::from("e1")).unwrap();
        assert_eq!(s.version_entries("effectors").unwrap(), 2);
        // Watermark past the tombstone: the whole chain is unreachable.
        let pruned = s.prune_versions(s.clock().stable());
        assert_eq!(pruned, 2);
        assert_eq!(s.version_entries("effectors").unwrap(), 0);
    }
}
