#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # `colock-storage` — in-memory store for complex objects
//!
//! The storage substrate underneath the lock technique: a database holds
//! segments, segments hold relations, relations hold complex objects
//! (validated NF² values). The store implements
//! [`colock_core::InstanceSource`], supplying the protocols with
//!
//! * the references contained in a subtree (downward propagation discovers
//!   entry points from the data being read anyway, §4.4.2.1),
//! * the basic element tuples of a subtree (tuple-level baseline),
//! * reverse-reference scans (naive-DAG baseline; the scan cost is counted
//!   and reported — the paper's "very time-consuming task", §3.2.2).
//!
//! Referential integrity is enforced on insert/update (references must
//! resolve) and delete (referenced objects cannot be removed), matching the
//! paper's assumption that references always target existing complex objects
//! of a relation. Before-images are returned by mutating operations so the
//! transaction layer can roll back.

pub mod error;
pub mod navigate;
pub mod source;
pub mod stats;
pub mod store;

pub use error::StorageError;
pub use store::{CommitClock, RelationSnapshot, Store, VersionPatch};

/// Result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
