//! Navigation of NF² values along instance-target steps.
//!
//! A [`TargetStep`] names an attribute and optionally one element of a
//! set/list by key; navigation needs the schema to extract element keys
//! (sets of tuples are keyed by their key attribute).

use colock_core::TargetStep;
use colock_nf2::{AttrType, ObjectKey, RelationSchema, Value};

/// Resolves the attribute type for a step within `ty` (stepping through
/// set/list constructors like `AttrPath` resolution does).
fn step_type<'t>(ty: &'t AttrType, attr: &str) -> Option<&'t AttrType> {
    colock_nf2::path::resolve_step(ty, attr)
}

/// Navigates `value` (an object of `relation`) along `steps`, returning the
/// referenced subvalue. An elem step selects one element of a set/list; a
/// bare attr step selects the whole attribute value.
pub fn navigate<'v>(
    relation: &RelationSchema,
    value: &'v Value,
    steps: &[TargetStep],
) -> Option<&'v Value> {
    let mut cur = value;
    let mut cur_ty = relation.tuple_type();
    for step in steps {
        let attr_ty = step_type(&cur_ty, &step.attr)?.clone();
        cur = cur.field(&step.attr)?;
        if let Some(key) = &step.elem {
            let elem_ty = attr_ty.element()?.clone();
            cur = find_element(cur, &elem_ty, key)?;
            cur_ty = elem_ty;
        } else {
            cur_ty = attr_ty;
        }
    }
    Some(cur)
}

/// Mutable navigation; same semantics as [`navigate`].
pub fn navigate_mut<'v>(
    relation: &RelationSchema,
    value: &'v mut Value,
    steps: &[TargetStep],
) -> Option<&'v mut Value> {
    let mut cur = value;
    let mut cur_ty = relation.tuple_type();
    for step in steps {
        let attr_ty = step_type(&cur_ty, &step.attr)?.clone();
        cur = cur.field_mut(&step.attr)?;
        if let Some(key) = &step.elem {
            let elem_ty = attr_ty.element()?.clone();
            cur = find_element_mut(cur, &elem_ty, key)?;
            cur_ty = elem_ty;
        } else {
            cur_ty = attr_ty;
        }
    }
    Some(cur)
}

/// Finds a set/list element by key.
pub fn find_element<'v>(container: &'v Value, elem_ty: &AttrType, key: &ObjectKey) -> Option<&'v Value> {
    container
        .elements()?
        .iter()
        .find(|e| e.element_key(elem_ty).as_ref() == Some(key))
}

fn find_element_mut<'v>(
    container: &'v mut Value,
    elem_ty: &AttrType,
    key: &ObjectKey,
) -> Option<&'v mut Value> {
    container
        .elements_mut()?
        .iter_mut()
        .find(|e| e.element_key(elem_ty).as_ref() == Some(key))
}

/// Removes the element with `key` from a set/list value, returning its
/// position and before-image (the position lets a rollback re-insert a list
/// element where it was).
pub fn remove_element(
    container: &mut Value,
    elem_ty: &AttrType,
    key: &ObjectKey,
) -> Option<(usize, Value)> {
    let es = container.elements_mut()?;
    let idx = es.iter().position(|e| e.element_key(elem_ty).as_ref() == Some(key))?;
    Some((idx, es.remove(idx)))
}

/// The attribute type at the end of `steps` (elem steps resolve to the
/// element type), starting from the relation's tuple type.
pub fn path_type(relation: &RelationSchema, steps: &[TargetStep]) -> Option<AttrType> {
    let mut cur_ty = relation.tuple_type();
    for step in steps {
        let t = step_type(&cur_ty, &step.attr)?.clone();
        cur_ty = if step.elem.is_some() { t.element()?.clone() } else { t };
    }
    Some(cur_ty)
}

/// Enumerates the element keys of the set/list at the end of `steps`.
pub fn element_keys(
    relation: &RelationSchema,
    value: &Value,
    steps: &[TargetStep],
) -> Vec<ObjectKey> {
    let Some(container) = navigate(relation, value, steps) else {
        return Vec::new();
    };
    // Determine the element type of the container.
    let mut cur_ty = relation.tuple_type();
    for step in steps {
        let Some(t) = step_type(&cur_ty, &step.attr) else {
            return Vec::new();
        };
        let t = t.clone();
        cur_ty = if step.elem.is_some() {
            match t.element() {
                Some(e) => e.clone(),
                None => return Vec::new(),
            }
        } else {
            t
        };
    }
    let Some(elem_ty) = cur_ty.element() else {
        return Vec::new();
    };
    container
        .elements()
        .map(|es| es.iter().filter_map(|e| e.element_key(elem_ty)).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_nf2::builder::RelationBuilder;
    use colock_nf2::types::shorthand::*;
    use colock_nf2::value::build::{list as vlist, set as vset, tup};

    fn cells_schema() -> RelationSchema {
        RelationBuilder::new("cells", "seg1")
            .attr("cell_id", str_())
            .attr(
                "robots",
                list(tuple(vec![
                    attr("robot_id", str_()),
                    attr("trajectory", str_()),
                    attr("effectors", set(ref_("effectors"))),
                ])),
            )
            .finish()
    }

    fn c1() -> Value {
        tup(vec![
            ("cell_id", Value::str("c1")),
            (
                "robots",
                vlist(vec![
                    tup(vec![
                        ("robot_id", Value::str("r1")),
                        ("trajectory", Value::str("t1")),
                        ("effectors", vset(vec![Value::reference("effectors", "e1")])),
                    ]),
                    tup(vec![
                        ("robot_id", Value::str("r2")),
                        ("trajectory", Value::str("t2")),
                        ("effectors", vset(vec![])),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn navigate_to_attr_and_elem() {
        let schema = cells_schema();
        let v = c1();
        let robots = navigate(&schema, &v, &[TargetStep::attr("robots")]).unwrap();
        assert_eq!(robots.elements().unwrap().len(), 2);
        let r2 = navigate(&schema, &v, &[TargetStep::elem("robots", "r2")]).unwrap();
        assert_eq!(r2.field("trajectory"), Some(&Value::str("t2")));
        let traj = navigate(
            &schema,
            &v,
            &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")],
        )
        .unwrap();
        assert_eq!(traj, &Value::str("t1"));
    }

    #[test]
    fn navigate_missing_elem_is_none() {
        let schema = cells_schema();
        let v = c1();
        assert!(navigate(&schema, &v, &[TargetStep::elem("robots", "r9")]).is_none());
        assert!(navigate(&schema, &v, &[TargetStep::attr("nope")]).is_none());
    }

    #[test]
    fn navigate_mut_allows_in_place_update() {
        let schema = cells_schema();
        let mut v = c1();
        let traj = navigate_mut(
            &schema,
            &mut v,
            &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")],
        )
        .unwrap();
        *traj = Value::str("new");
        assert_eq!(
            navigate(&schema, &v, &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")]),
            Some(&Value::str("new"))
        );
    }

    #[test]
    fn element_keys_of_robots() {
        let schema = cells_schema();
        let v = c1();
        let keys = element_keys(&schema, &v, &[TargetStep::attr("robots")]);
        assert_eq!(keys, vec![ObjectKey::from("r1"), ObjectKey::from("r2")]);
    }

    #[test]
    fn element_keys_of_non_container_is_empty() {
        let schema = cells_schema();
        let v = c1();
        assert!(element_keys(&schema, &v, &[TargetStep::elem("robots", "r1")]).is_empty());
    }
}
