//! Property-based and concurrency tests of the store.

use colock_core::fixtures::fig1_catalog;
use colock_core::TargetStep;
use colock_nf2::value::build::{list, set, tup};
use colock_nf2::{ObjectKey, Value};
use colock_storage::{StorageError, Store};
use colock_testkit::prop::string_of;
use colock_testkit::{ensure, ensure_eq, forall, run_threads};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn store() -> Store {
    Store::new(Arc::new(fig1_catalog()))
}

fn effector(id: &str, tool: &str) -> Value {
    tup(vec![("eff_id", Value::str(id)), ("tool", Value::str(tool))])
}

fn cell(id: &str, n_objects: usize, robots: &[(&str, &str)]) -> Value {
    tup(vec![
        ("cell_id", Value::str(id)),
        (
            "c_objects",
            set((0..n_objects)
                .map(|i| {
                    tup(vec![
                        ("obj_id", Value::str(format!("{id}-o{i}"))),
                        ("obj_name", Value::str(format!("n{i}"))),
                    ])
                })
                .collect()),
        ),
        (
            "robots",
            list(robots
                .iter()
                .map(|(rid, traj)| {
                    tup(vec![
                        ("robot_id", Value::str(*rid)),
                        ("trajectory", Value::str(*traj)),
                        ("effectors", set(vec![])),
                    ])
                })
                .collect()),
        ),
    ])
}

#[test]
fn insert_get_identity() {
    forall!(
        cases: 64,
        |rng| (rng.gen_range(0usize..20), string_of(rng, "abcdefghijklmnopqrstuvwxyz", 1..11)),
        |(n, tool): &(usize, String)| {
            let s = store();
            s.insert("effectors", effector("e1", tool)).unwrap();
            s.insert("cells", cell("c1", *n, &[("r1", "t1")])).unwrap();
            let v = s.get("cells", &ObjectKey::from("c1")).unwrap();
            ensure_eq!(v.field("c_objects").unwrap().elements().unwrap().len(), *n);
            let e = s.get("effectors", &ObjectKey::from("e1")).unwrap();
            ensure_eq!(e.field("tool"), Some(&Value::str(tool.clone())));
            Ok(())
        }
    );
}

#[test]
fn update_at_then_get_at_roundtrip() {
    forall!(
        cases: 64,
        |rng| string_of(rng, "abcdefghijklmnopqrstuvwxyz0123456789 ", 0..21),
        |traj: &String| {
            let s = store();
            s.insert("cells", cell("c1", 2, &[("r1", "t1"), ("r2", "t2")])).unwrap();
            let steps = vec![TargetStep::elem("robots", "r2"), TargetStep::attr("trajectory")];
            s.update_at("cells", &ObjectKey::from("c1"), &steps, Value::str(traj.clone())).unwrap();
            let got = s.get_at("cells", &ObjectKey::from("c1"), &steps).unwrap();
            ensure_eq!(got, Value::str(traj.clone()));
            // The sibling robot is untouched.
            let other = s
                .get_at(
                    "cells",
                    &ObjectKey::from("c1"),
                    &[TargetStep::elem("robots", "r1"), TargetStep::attr("trajectory")],
                )
                .unwrap();
            ensure_eq!(other, Value::str("t1"));
            Ok(())
        }
    );
}

#[test]
fn restore_is_inverse_of_update() {
    forall!(
        cases: 64,
        |rng| (
            string_of(rng, "abcdefghijklmnopqrstuvwxyz", 1..9),
            string_of(rng, "abcdefghijklmnopqrstuvwxyz", 1..9),
        ),
        |(before_tool, after_tool): &(String, String)| {
            let s = store();
            s.insert("effectors", effector("e1", before_tool)).unwrap();
            let key = ObjectKey::from("e1");
            let image = s.update("effectors", &key, effector("e1", after_tool)).unwrap();
            s.restore("effectors", &key, Some(image)).unwrap();
            let v = s.get("effectors", &key).unwrap();
            ensure_eq!(v.field("tool"), Some(&Value::str(before_tool.clone())));
            Ok(())
        }
    );
}

#[test]
fn count_referencers_matches_reality() {
    forall!(
        cases: 64,
        |rng| (rng.gen_range(1usize..6), rng.gen_range(0usize..6)),
        |&(n_robots, used)| {
            let s = store();
            s.insert("effectors", effector("e1", "t")).unwrap();
            let used = used.min(n_robots);
            let robots: Vec<Value> = (0..n_robots)
                .map(|i| {
                    let refs = if i < used {
                        set(vec![Value::reference("effectors", "e1")])
                    } else {
                        set(vec![])
                    };
                    tup(vec![
                        ("robot_id", Value::str(format!("r{i}"))),
                        ("trajectory", Value::str("t")),
                        ("effectors", refs),
                    ])
                })
                .collect();
            s.insert(
                "cells",
                tup(vec![
                    ("cell_id", Value::str("c1")),
                    ("c_objects", set(vec![])),
                    ("robots", list(robots)),
                ]),
            )
            .unwrap();
            ensure_eq!(s.count_referencers("effectors", &ObjectKey::from("e1")).unwrap(), used);
            let deletion = s.delete("effectors", &ObjectKey::from("e1"));
            if used > 0 {
                let still_referenced =
                    matches!(deletion, Err(StorageError::StillReferenced { .. }));
                ensure!(still_referenced);
            } else {
                ensure!(deletion.is_ok());
            }
            Ok(())
        }
    );
}

#[test]
fn concurrent_readers_and_writers_do_not_corrupt() {
    let s = Arc::new(store());
    for i in 0..8 {
        s.insert("effectors", effector(&format!("e{i}"), "t0")).unwrap();
    }
    let s2 = Arc::clone(&s);
    run_threads(4, Duration::from_secs(30), move |w| {
        for round in 0..50 {
            let key = ObjectKey::from(format!("e{}", (w + round) % 8));
            if w % 2 == 0 {
                let _ = s2.update(
                    "effectors",
                    &key,
                    effector(&key.to_string(), &format!("t{round}")),
                );
            } else {
                let v = s2.get("effectors", &key).unwrap();
                assert!(v.field("tool").is_some());
            }
        }
    });
    // All objects intact and typed.
    for i in 0..8 {
        let v = s.get("effectors", &ObjectKey::from(format!("e{i}"))).unwrap();
        assert_eq!(v.field("eff_id"), Some(&Value::str(format!("e{i}"))));
    }
}

#[test]
fn snapshot_consistent_under_writes() {
    let s = Arc::new(store());
    for i in 0..4 {
        s.insert("effectors", effector(&format!("e{i}"), "start")).unwrap();
    }
    let writer = {
        let s = Arc::clone(&s);
        thread::spawn(move || {
            for round in 0..100 {
                for i in 0..4 {
                    let _ = s.update(
                        "effectors",
                        &ObjectKey::from(format!("e{i}")),
                        effector(&format!("e{i}"), &format!("r{round}")),
                    );
                }
            }
        })
    };
    for _ in 0..50 {
        let snap = s.snapshot("effectors").unwrap();
        assert_eq!(snap.objects().len(), 4);
    }
    writer.join().unwrap();
}

/// The `snapshot_is_deep` isolation guarantee as a property: a snapshot
/// handle taken at any point materializes the same objects every time, no
/// matter how many concurrent writers commit after it.
#[test]
fn snapshot_handle_is_stable_under_concurrent_writers() {
    let s = Arc::new(store());
    for i in 0..4 {
        s.insert("effectors", effector(&format!("e{i}"), "start")).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut round = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for i in 0..4 {
                    let _ = s.update(
                        "effectors",
                        &ObjectKey::from(format!("e{i}")),
                        effector(&format!("e{i}"), &format!("r{round}")),
                    );
                }
                round += 1;
            }
        })
    };
    for _ in 0..25 {
        let snap = s.snapshot("effectors").unwrap();
        let first = snap.objects();
        assert_eq!(first.len(), 4);
        // Re-materializing the same handle later gives the same bytes,
        // regardless of the writer's progress in between.
        for _ in 0..5 {
            assert_eq!(snap.objects(), first);
            assert_eq!(snap.keys().len(), 4);
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
    // GC with no active snapshots collapses the chains back to one entry
    // per object without disturbing the live state.
    s.prune_versions(s.clock().stable());
    assert_eq!(s.version_entries("effectors").unwrap(), 4);
    for i in 0..4 {
        assert!(s.get("effectors", &ObjectKey::from(format!("e{i}"))).is_ok());
    }
}
