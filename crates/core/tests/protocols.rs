//! Integration tests comparing the proposed protocol against the three
//! baselines — executable versions of the §3 problem statements.

use colock_core::authorization::{Authorization, Right};
use colock_core::fixtures::{fig1_catalog, fig6_source_with, StaticSource};
use colock_core::protocol::{AccessMode, InstanceTarget, ProtocolEngine, ProtocolOptions};
use colock_core::resource::ResourcePath;
use colock_lockmgr::{LockManager, LockMode, TxnId};
use std::sync::Arc;

fn setup(n_objects: usize) -> (ProtocolEngine, LockManager<ResourcePath>, StaticSource) {
    (
        ProtocolEngine::new(Arc::new(fig1_catalog())),
        LockManager::new(),
        fig6_source_with(n_objects),
    )
}

fn q1() -> InstanceTarget {
    InstanceTarget::object("cells", "c1").attr("c_objects")
}

fn q2() -> InstanceTarget {
    InstanceTarget::object("cells", "c1").elem("robots", "r1")
}

#[test]
fn granule_problem_whole_object_serializes_q1_q2() {
    // §3.2.1: "locking 'cells' objects as a whole would serialize Q1 and Q2
    // unnecessarily."
    let (engine, lm, src) = setup(10);
    let authz = Authorization::allow_all();
    engine
        .lock_whole_object(&lm, TxnId(1), &src, &authz, &q1(), AccessMode::Read, ProtocolOptions::default())
        .unwrap();
    let r = engine.lock_whole_object(
        &lm,
        TxnId(2),
        &src,
        &authz,
        &q2(),
        AccessMode::Update,
        ProtocolOptions::default().try_lock(),
    );
    assert!(r.is_err(), "whole-object locking must serialize Q1/Q2");
}

#[test]
fn granule_problem_proposed_runs_q1_q2_concurrently() {
    let (engine, lm, src) = setup(10);
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    engine
        .lock_proposed(&lm, TxnId(1), &src, &authz, &q1(), AccessMode::Read, ProtocolOptions::default())
        .unwrap();
    let r = engine.lock_proposed(
        &lm,
        TxnId(2),
        &src,
        &authz,
        &q2(),
        AccessMode::Update,
        ProtocolOptions::default().try_lock(),
    );
    assert!(r.is_ok(), "{r:?}");
}

#[test]
fn tuple_level_lock_count_grows_with_data() {
    // §3.2.1: "one cell may contain hundreds of c_objects" — tuple-level
    // locking pays per element; the proposed technique pays O(depth).
    let authz = Authorization::allow_all();
    let mut counts = Vec::new();
    for n in [10usize, 100] {
        let (engine, lm, src) = setup(n);
        let whole_cell = InstanceTarget::object("cells", "c1");
        let report = engine
            .lock_tuple_level(&lm, TxnId(1), &src, &authz, &whole_cell, AccessMode::Read, ProtocolOptions::default())
            .unwrap();
        counts.push(report.lock_count());
    }
    assert!(counts[1] > counts[0] + 80, "tuple locks must scale with elements: {counts:?}");

    // The proposed protocol on the same access: constant-size footprint.
    let (engine, lm, src) = setup(100);
    let report = engine
        .lock_proposed(
            &lm,
            TxnId(1),
            &src,
            &authz,
            &InstanceTarget::object("cells", "c1"),
            AccessMode::Read,
            ProtocolOptions::default(),
        )
        .unwrap();
    assert!(
        report.lock_count() <= 10,
        "proposed footprint must stay small, got {}",
        report.lock_count()
    );
}

#[test]
fn naive_dag_x_on_shared_data_pays_reverse_scan() {
    // §3.2.2: to X-lock an effector, the naive protocol must find and lock
    // every robot referencing it.
    let (engine, lm, src) = setup(2);
    let authz = Authorization::allow_all();
    let e2 = InstanceTarget::object("effectors", "e2");
    let report = engine
        .lock_naive_dag(&lm, TxnId(1), &src, &authz, &e2, AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    assert!(report.scan_cost >= 1, "reverse scan must be paid");
    // Both referencing robots are IX-locked, with their full chains.
    let r1 = ResourcePath::database("db1")
        .segment("seg1")
        .relation("cells")
        .object("c1")
        .attr("robots")
        .elem("r1");
    let r2 = r1.parent().unwrap().elem("r2");
    assert_eq!(lm.held_mode(TxnId(1), &r1), LockMode::IX);
    assert_eq!(lm.held_mode(TxnId(1), &r2), LockMode::IX);

    // The proposed protocol does the same job with no reverse scan.
    let (engine2, lm2, src2) = setup(2);
    let report2 = engine2
        .lock_proposed(&lm2, TxnId(1), &src2, &authz, &e2, AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    assert_eq!(report2.scan_cost, 0);
    assert!(report2.lock_count() < report.lock_count());
}

#[test]
fn naive_dag_misses_from_the_side_conflicts() {
    // §3.2.2 defect 2: T1 X-locks robot r1 believing e1/e2 are implicitly
    // locked; T2 X-locks e2 directly via the naive protocol — no conflict is
    // detected, although T1 may be reading e2 through r1. The proposed
    // protocol detects it (see fig7.rs::from_the_side_conflict_is_detected).
    let (engine, lm, src) = setup(2);
    let authz = Authorization::allow_all();
    engine
        .lock_naive_dag(&lm, TxnId(1), &src, &authz, &q2(), AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    // T2 X-locks e2 via naive protocol *without* the all-parents rule being
    // able to see T1 (T1 holds no lock on e2 or on effectors at all).
    let e2_mode = lm.held_mode(TxnId(1), &ResourcePath::database("db1").segment("seg2").relation("effectors").object("e2"));
    assert_eq!(e2_mode, LockMode::NL, "naive protocol leaves shared data unlocked");
}

#[test]
fn proposed_handles_nested_common_data_transitively() {
    // assemblies -> parts -> materials: downward propagation must cross
    // superunit boundaries transitively.
    use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
    use colock_nf2::types::shorthand::*;
    use colock_nf2::{Catalog, ObjectRef};

    let schema = DatabaseBuilder::new("db")
        .segment("s")
        .relation(
            RelationBuilder::new("assemblies", "s")
                .attr("asm_id", str_())
                .attr("parts", set(ref_("parts")))
                .finish(),
        )
        .relation(
            RelationBuilder::new("parts", "s")
                .attr("part_id", str_())
                .attr("material", ref_("materials"))
                .finish(),
        )
        .relation(RelationBuilder::new("materials", "s").attr("mat_id", str_()).finish())
        .finish()
        .unwrap();
    let engine = ProtocolEngine::new(Arc::new(Catalog::new(schema).unwrap()));
    let lm = LockManager::new();
    let mut src = StaticSource::new();
    src.add_object("assemblies", "a1");
    src.add_object("parts", "p1");
    src.add_object("materials", "m1");
    src.add_ref("assemblies", "a1", vec![colock_core::TargetStep::attr("parts")], ObjectRef::new("parts", "p1"));
    src.add_ref("parts", "p1", vec![colock_core::TargetStep::attr("material")], ObjectRef::new("materials", "m1"));

    let authz = Authorization::allow_all();
    let t = TxnId(1);
    engine
        .lock_proposed(
            &lm,
            t,
            &src,
            &authz,
            &InstanceTarget::object("assemblies", "a1"),
            AccessMode::Read,
            ProtocolOptions::default(),
        )
        .unwrap();
    let p1 = ResourcePath::database("db").segment("s").relation("parts").object("p1");
    let m1 = ResourcePath::database("db").segment("s").relation("materials").object("m1");
    assert_eq!(lm.held_mode(t, &p1), LockMode::S, "part entry point locked");
    assert_eq!(lm.held_mode(t, &m1), LockMode::S, "nested material entry point locked");
}

#[test]
fn diamond_shared_ref_locked_once() {
    // r1 and r2 both use e2: downward propagation must lock e2 exactly once
    // (visited-set), not fail or double-count.
    let (engine, lm, src) = setup(2);
    let authz = Authorization::allow_all();
    let report = engine
        .lock_proposed(
            &lm,
            TxnId(1),
            &src,
            &authz,
            &InstanceTarget::object("cells", "c1"),
            AccessMode::Read,
            ProtocolOptions::default(),
        )
        .unwrap();
    let e2 = ResourcePath::database("db1").segment("seg2").relation("effectors").object("e2");
    let grants: Vec<_> = report.acquired.iter().filter(|(r, _)| r == &e2).collect();
    assert_eq!(grants.len(), 1, "e2 locked exactly once");
    assert_eq!(report.entry_points_locked, 3); // e1, e2, e3
    let _ = lm;
}

#[test]
fn unauthorized_access_is_rejected_before_locking() {
    let (engine, lm, src) = setup(2);
    let authz = Authorization::allow_all();
    authz.grant(TxnId(7), "cells", Right::Read);
    let r = engine.lock_proposed(
        &lm,
        TxnId(7),
        &src,
        &authz,
        &q2(),
        AccessMode::Update,
        ProtocolOptions::default(),
    );
    assert!(matches!(r, Err(colock_core::ProtocolError::Unauthorized { .. })));
    assert!(lm.locks_of(TxnId(7)).is_empty(), "no locks must be taken");
}

#[test]
fn relation_granule_lock_propagates_over_all_objects() {
    let (engine, lm, src) = setup(2);
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let rel = InstanceTarget::relation("cells");
    let report = engine
        .lock_proposed(&lm, TxnId(1), &src, &authz, &rel, AccessMode::Read, ProtocolOptions::default())
        .unwrap();
    // Relation S lock + downward propagation to all 3 effectors.
    assert_eq!(report.entry_points_locked, 3);
    let cells = ResourcePath::database("db1").segment("seg1").relation("cells");
    assert_eq!(lm.held_mode(TxnId(1), &cells), LockMode::S);
}
