//! Property-based tests: lock-graph derivation invariants over random
//! schemas, and protocol invariants over random instances.

use colock_core::authorization::Authorization;
use colock_core::fixtures::StaticSource;
use colock_core::graph::derive::derive_from_schema;
use colock_core::{
    AccessMode, Category, InstanceTarget, ProtocolEngine, ProtocolOptions, TargetStep, Units,
};
use colock_lockmgr::{LockManager, LockMode, TxnId};
use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
use colock_nf2::types::shorthand as ty;
use colock_nf2::{AttrType, Catalog, DatabaseSchema, ObjectRef};
use proptest::prelude::*;
use std::sync::Arc;

/// Random attribute type of bounded depth (no refs — added separately).
fn attr_type(depth: u32) -> BoxedStrategy<AttrType> {
    let leaf = prop_oneof![
        Just(ty::str_()),
        Just(ty::int_()),
        Just(ty::real_()),
        Just(ty::bool_()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = attr_type(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => inner.clone().prop_map(ty::set),
        1 => inner.clone().prop_map(ty::list),
        1 => proptest::collection::vec(inner, 1..3).prop_map(|ts| {
            ty::tuple(ts.into_iter().enumerate().map(|(i, t)| ty::attr(&format!("g{i}"), t)).collect())
        }),
    ]
    .boxed()
}

/// Random two-relation schema: `top` references `lib` via 0..3 ref
/// attributes, plus random extra attributes.
fn schema() -> impl Strategy<Value = DatabaseSchema> {
    (
        proptest::collection::vec(attr_type(2), 1..4),
        proptest::collection::vec(attr_type(1), 0..3),
        0usize..3,
    )
        .prop_map(|(top_attrs, lib_attrs, n_refs)| {
            let mut top = RelationBuilder::new("top", "s1").attr("top_id", ty::str_());
            for (i, t) in top_attrs.into_iter().enumerate() {
                top = top.attr(format!("a{i}"), t);
            }
            for i in 0..n_refs {
                top = top.attr(format!("r{i}"), ty::ref_("lib"));
            }
            let mut lib = RelationBuilder::new("lib", "s2").attr("lib_id", ty::str_());
            for (i, t) in lib_attrs.into_iter().enumerate() {
                lib = lib.attr(format!("b{i}"), t);
            }
            DatabaseBuilder::new("db")
                .segment("s1")
                .segment("s2")
                .relation(top.finish())
                .relation(lib.finish())
                .finish()
                .expect("generated schema valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn derivation_invariants(db in schema()) {
        let g = derive_from_schema(&db);
        // Every node except the database root has exactly one solid parent,
        // and is listed among that parent's children.
        for n in g.nodes() {
            if n.id == g.db_node() {
                prop_assert!(n.parent.is_none());
            } else {
                let p = n.parent.expect("non-root has parent");
                prop_assert!(g.node(p).children.contains(&n.id));
            }
        }
        // BLUs are leaves; only BLUs carry dashed edges; dashed targets are
        // registered relations.
        for n in g.nodes() {
            if n.category == Category::Blu {
                prop_assert!(n.children.is_empty(), "{} has children", n.name);
            }
            if let Some(t) = &n.ref_target {
                prop_assert_eq!(n.category, Category::Blu);
                prop_assert!(g.relation_node(t).is_some());
            }
        }
        // Ancestor chains terminate at the database node.
        for n in g.nodes() {
            let anc = g.ancestors(n.id);
            if n.id != g.db_node() {
                prop_assert_eq!(anc[0], g.db_node());
            }
        }
    }

    #[test]
    fn units_invariants(db in schema()) {
        let catalog = Catalog::new(db.clone()).unwrap();
        let g = derive_from_schema(&db);
        let units = Units::new(&g, &catalog);
        prop_assert!(units.units_are_disjoint());
        // If top references lib, lib's CO node is an entry point and its
        // superunit chain is db -> s2 -> lib.
        if db.relation("top").unwrap().direct_ref_targets().contains(&"lib") {
            let ep = units.entry_point("lib").expect("lib is common data");
            prop_assert!(units.is_entry_point(ep));
            let chain = units.superunit_chain("lib");
            prop_assert_eq!(chain.len(), 3);
        } else {
            prop_assert!(units.entry_point("lib").is_none());
        }
    }

    #[test]
    fn proposed_protocol_lock_sets_obey_parent_rule(
        db in schema(),
        n_objects in 1usize..4,
    ) {
        // Build a tiny instance: each top object references every lib object.
        let catalog = Arc::new(Catalog::new(db.clone()).unwrap());
        let engine = ProtocolEngine::new(Arc::clone(&catalog));
        let lm = LockManager::new();
        let mut src = StaticSource::new();
        let has_refs = !db.relation("top").unwrap().direct_ref_targets().is_empty();
        for i in 0..n_objects {
            src.add_object("lib", format!("l{i}"));
            src.add_object("top", format!("t{i}"));
            if has_refs {
                for j in 0..n_objects {
                    src.add_ref(
                        "top",
                        format!("t{i}"),
                        vec![TargetStep::attr("r0")],
                        ObjectRef::new("lib", format!("l{j}")),
                    );
                }
            }
        }
        let txn = TxnId(1);
        let report = engine
            .lock_proposed(
                &lm,
                txn,
                &src,
                &Authorization::allow_all(),
                &InstanceTarget::object("top", "t0"),
                AccessMode::Update,
                ProtocolOptions::default(),
            )
            .unwrap();

        // Rule check: for every held non-root lock, the parent resource is
        // held in (at least) the required intent mode by the same txn.
        for (resource, mode, _) in lm.locks_of(txn) {
            if let Some(parent) = resource.parent() {
                let held = lm.held_mode(txn, &parent);
                let needed = mode.required_parent_intent();
                prop_assert!(
                    held.covers(needed),
                    "parent {parent} holds {held}, needs {needed} (child {resource}: {mode})"
                );
            }
        }
        // Downward propagation reached every referenced lib object.
        if has_refs {
            prop_assert_eq!(report.entry_points_locked as usize, n_objects);
            for j in 0..n_objects {
                let lib = engine
                    .resource_for(&InstanceTarget::object("lib", format!("l{j}")))
                    .unwrap();
                prop_assert_eq!(lm.held_mode(txn, &lib), LockMode::X);
            }
        } else {
            prop_assert_eq!(report.entry_points_locked, 0);
        }
    }
}
