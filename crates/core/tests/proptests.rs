//! Property-based tests: lock-graph derivation invariants over random
//! schemas, and protocol invariants over random instances.

use colock_core::authorization::Authorization;
use colock_core::fixtures::StaticSource;
use colock_core::graph::derive::derive_from_schema;
use colock_core::{
    AccessMode, Category, InstanceTarget, ProtocolEngine, ProtocolOptions, TargetStep, Units,
};
use colock_lockmgr::{LockManager, LockMode, TxnId};
use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
use colock_nf2::types::shorthand as ty;
use colock_nf2::{AttrType, Catalog, DatabaseSchema, ObjectRef};
use colock_testkit::prop::{pick_weighted, vec_of};
use colock_testkit::{ensure, ensure_eq, forall, Rng};
use std::sync::Arc;

/// Random attribute type of bounded depth (no refs — added separately).
fn attr_type(rng: &mut Rng, depth: u32) -> AttrType {
    let leaf = |rng: &mut Rng| match rng.gen_range(0..4u32) {
        0 => ty::str_(),
        1 => ty::int_(),
        2 => ty::real_(),
        _ => ty::bool_(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match pick_weighted(rng, &[3, 1, 1, 1]) {
        0 => leaf(rng),
        1 => ty::set(attr_type(rng, depth - 1)),
        2 => ty::list(attr_type(rng, depth - 1)),
        _ => {
            let ts = vec_of(rng, 1..3, |rng| attr_type(rng, depth - 1));
            ty::tuple(
                ts.into_iter()
                    .enumerate()
                    .map(|(i, t)| ty::attr(&format!("g{i}"), t))
                    .collect(),
            )
        }
    }
}

/// Random two-relation schema: `top` references `lib` via 0..3 ref
/// attributes, plus random extra attributes.
fn schema(rng: &mut Rng) -> DatabaseSchema {
    let top_attrs = vec_of(rng, 1..4, |rng| attr_type(rng, 2));
    let lib_attrs = vec_of(rng, 0..3, |rng| attr_type(rng, 1));
    let n_refs = rng.gen_range(0usize..3);
    let mut top = RelationBuilder::new("top", "s1").attr("top_id", ty::str_());
    for (i, t) in top_attrs.into_iter().enumerate() {
        top = top.attr(format!("a{i}"), t);
    }
    for i in 0..n_refs {
        top = top.attr(format!("r{i}"), ty::ref_("lib"));
    }
    let mut lib = RelationBuilder::new("lib", "s2").attr("lib_id", ty::str_());
    for (i, t) in lib_attrs.into_iter().enumerate() {
        lib = lib.attr(format!("b{i}"), t);
    }
    DatabaseBuilder::new("db")
        .segment("s1")
        .segment("s2")
        .relation(top.finish())
        .relation(lib.finish())
        .finish()
        .expect("generated schema valid")
}

#[derive(Debug, Clone)]
struct Db(DatabaseSchema);

colock_testkit::no_shrink!(Db);

#[test]
fn derivation_invariants() {
    forall!(cases: 64, |rng| Db(schema(rng)), |Db(db)| {
        let g = derive_from_schema(db);
        // Every node except the database root has exactly one solid parent,
        // and is listed among that parent's children.
        for n in g.nodes() {
            if n.id == g.db_node() {
                ensure!(n.parent.is_none());
            } else {
                let p = n.parent.expect("non-root has parent");
                ensure!(g.node(p).children.contains(&n.id));
            }
        }
        // BLUs are leaves; only BLUs carry dashed edges; dashed targets are
        // registered relations.
        for n in g.nodes() {
            if n.category == Category::Blu {
                ensure!(n.children.is_empty(), "{} has children", n.name);
            }
            if let Some(t) = &n.ref_target {
                ensure_eq!(n.category, Category::Blu);
                ensure!(g.relation_node(t).is_some());
            }
        }
        // Ancestor chains terminate at the database node.
        for n in g.nodes() {
            let anc = g.ancestors(n.id);
            if n.id != g.db_node() {
                ensure_eq!(anc[0], g.db_node());
            }
        }
        Ok(())
    });
}

#[test]
fn units_invariants() {
    forall!(cases: 64, |rng| Db(schema(rng)), |Db(db)| {
        let catalog = Catalog::new(db.clone()).unwrap();
        let g = derive_from_schema(db);
        let units = Units::new(&g, &catalog);
        ensure!(units.units_are_disjoint());
        // If top references lib, lib's CO node is an entry point and its
        // superunit chain is db -> s2 -> lib.
        if db.relation("top").unwrap().direct_ref_targets().contains(&"lib") {
            let ep = units.entry_point("lib").expect("lib is common data");
            ensure!(units.is_entry_point(ep));
            let chain = units.superunit_chain("lib");
            ensure_eq!(chain.len(), 3);
        } else {
            ensure!(units.entry_point("lib").is_none());
        }
        Ok(())
    });
}

#[test]
fn proposed_protocol_lock_sets_obey_parent_rule() {
    forall!(
        cases: 64,
        |rng| (Db(schema(rng)), rng.gen_range(1usize..4)),
        |(Db(db), n_objects)| {
            let n_objects = *n_objects;
            // Build a tiny instance: each top object references every lib object.
            let catalog = Arc::new(Catalog::new(db.clone()).unwrap());
            let engine = ProtocolEngine::new(Arc::clone(&catalog));
            let lm = LockManager::new();
            let mut src = StaticSource::new();
            let has_refs = !db.relation("top").unwrap().direct_ref_targets().is_empty();
            for i in 0..n_objects {
                src.add_object("lib", format!("l{i}"));
                src.add_object("top", format!("t{i}"));
                if has_refs {
                    for j in 0..n_objects {
                        src.add_ref(
                            "top",
                            format!("t{i}"),
                            vec![TargetStep::attr("r0")],
                            ObjectRef::new("lib", format!("l{j}")),
                        );
                    }
                }
            }
            let txn = TxnId(1);
            let report = engine
                .lock_proposed(
                    &lm,
                    txn,
                    &src,
                    &Authorization::allow_all(),
                    &InstanceTarget::object("top", "t0"),
                    AccessMode::Update,
                    ProtocolOptions::default(),
                )
                .unwrap();

            // Rule check: for every held non-root lock, the parent resource is
            // held in (at least) the required intent mode by the same txn.
            for (resource, mode, _) in lm.locks_of(txn) {
                if let Some(parent) = resource.parent() {
                    let held = lm.held_mode(txn, &parent);
                    let needed = mode.required_parent_intent();
                    ensure!(
                        held.covers(needed),
                        "parent {parent} holds {held}, needs {needed} (child {resource}: {mode})"
                    );
                }
            }
            // Downward propagation reached every referenced lib object.
            if has_refs {
                ensure_eq!(report.entry_points_locked as usize, n_objects);
                for j in 0..n_objects {
                    let lib = engine
                        .resource_for(&InstanceTarget::object("lib", format!("l{j}")))
                        .unwrap();
                    ensure_eq!(lm.held_mode(txn, &lib), LockMode::X);
                }
            } else {
                ensure_eq!(report.entry_points_locked, 0);
            }
            Ok(())
        }
    );
}
