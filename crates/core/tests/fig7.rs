//! Integration test: exact reproduction of Fig. 7 — the locks held by
//! queries Q2 and Q3, and their concurrent execution under rule 4′.

use colock_core::authorization::{Authorization, Right};
use colock_core::fixtures::{fig1_catalog, fig6_source};
use colock_core::protocol::{AccessMode, InstanceTarget, ProtocolEngine, ProtocolOptions};
use colock_core::resource::ResourcePath;
use colock_lockmgr::{LockManager, LockMode, TxnId};
use std::sync::Arc;

fn setup() -> (ProtocolEngine, LockManager<ResourcePath>, colock_core::fixtures::StaticSource, Authorization)
{
    let engine = ProtocolEngine::new(Arc::new(fig1_catalog()));
    let lm = LockManager::new();
    let src = fig6_source();
    // Fig. 7's assumption: "neither Q2 nor Q3 have the right to update
    // relation effectors".
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    (engine, lm, src, authz)
}

fn res(parts: &str) -> ResourcePath {
    // tiny helper: "seg1/cells/c1" etc. under db1.
    let mut p = ResourcePath::database("db1");
    for (i, part) in parts.split('/').enumerate() {
        p = match i {
            0 => p.segment(part),
            1 => p.relation(part),
            2 => p.object(part),
            _ => {
                if let Some(stripped) = part.strip_prefix('[') {
                    p.elem(stripped.trim_end_matches(']'))
                } else {
                    p.attr(part)
                }
            }
        };
    }
    p
}

/// Q2 (Fig. 3): `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id =
/// 'c1' AND r.robot_id = 'r1' FOR UPDATE`.
fn q2_target() -> InstanceTarget {
    InstanceTarget::object("cells", "c1").elem("robots", "r1")
}

/// Q3 (Fig. 3): same shape, robot `r2`.
fn q3_target() -> InstanceTarget {
    InstanceTarget::object("cells", "c1").elem("robots", "r2")
}

#[test]
fn q2_lock_set_matches_fig7() {
    let (engine, lm, src, authz) = setup();
    let t2 = TxnId(2);
    engine
        .lock_proposed(&lm, t2, &src, &authz, &q2_target(), AccessMode::Update, ProtocolOptions::default())
        .unwrap();

    // Fig. 7, column Q2.
    let expect = [
        (ResourcePath::database("db1"), LockMode::IX),
        (res("seg1"), LockMode::IX),
        (res("seg1/cells"), LockMode::IX),
        (res("seg1/cells/c1"), LockMode::IX),
        (res("seg1/cells/c1/robots"), LockMode::IX),
        (res("seg1/cells/c1/robots/[r1]"), LockMode::X),
        (res("seg2"), LockMode::IS),
        (res("seg2/effectors"), LockMode::IS),
        (res("seg2/effectors/e1"), LockMode::S),
        (res("seg2/effectors/e2"), LockMode::S),
    ];
    for (resource, mode) in expect {
        assert_eq!(lm.held_mode(t2, &resource), mode, "wrong mode on {resource}");
    }
    // And nothing on robot r2, effector e3, or c_objects.
    assert_eq!(lm.held_mode(t2, &res("seg1/cells/c1/robots/[r2]")), LockMode::NL);
    assert_eq!(lm.held_mode(t2, &res("seg2/effectors/e3")), LockMode::NL);
    assert_eq!(lm.held_mode(t2, &res("seg1/cells/c1/c_objects")), LockMode::NL);
}

#[test]
fn q3_lock_set_matches_fig7() {
    let (engine, lm, src, authz) = setup();
    let t3 = TxnId(3);
    engine
        .lock_proposed(&lm, t3, &src, &authz, &q3_target(), AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    let expect = [
        (ResourcePath::database("db1"), LockMode::IX),
        (res("seg1"), LockMode::IX),
        (res("seg1/cells"), LockMode::IX),
        (res("seg1/cells/c1"), LockMode::IX),
        (res("seg1/cells/c1/robots"), LockMode::IX),
        (res("seg1/cells/c1/robots/[r2]"), LockMode::X),
        (res("seg2"), LockMode::IS),
        (res("seg2/effectors"), LockMode::IS),
        (res("seg2/effectors/e2"), LockMode::S),
        (res("seg2/effectors/e3"), LockMode::S),
    ];
    for (resource, mode) in expect {
        assert_eq!(lm.held_mode(t3, &resource), mode, "wrong mode on {resource}");
    }
    assert_eq!(lm.held_mode(t3, &res("seg2/effectors/e1")), LockMode::NL);
}

#[test]
fn q2_and_q3_run_concurrently_under_rule4_prime() {
    // "Rule 4' allows Q2 and Q3 to run concurrently, although both queries
    // touch effector 'e2'."
    let (engine, lm, src, authz) = setup();
    let t2 = TxnId(2);
    let t3 = TxnId(3);
    engine
        .lock_proposed(&lm, t2, &src, &authz, &q2_target(), AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    let r = engine.lock_proposed(
        &lm,
        t3,
        &src,
        &authz,
        &q3_target(),
        AccessMode::Update,
        ProtocolOptions::default().try_lock(),
    );
    assert!(r.is_ok(), "Q3 must not block: {r:?}");
    // Both hold S on the shared effector e2.
    assert_eq!(lm.held_mode(t2, &res("seg2/effectors/e2")), LockMode::S);
    assert_eq!(lm.held_mode(t3, &res("seg2/effectors/e2")), LockMode::S);
}

#[test]
fn without_rule4_prime_q2_and_q3_serialize_on_e2() {
    // Under plain rule 4 both updaters X-lock every referenced effector —
    // they collide on e2 even though neither may modify effectors.
    let (engine, lm, src, _) = setup();
    // Plain rule 4 ignores rights; use allow-all to let X propagate.
    let authz = Authorization::allow_all();
    let t2 = TxnId(2);
    let t3 = TxnId(3);
    engine
        .lock_proposed(&lm, t2, &src, &authz, &q2_target(), AccessMode::Update, ProtocolOptions::rule4_plain())
        .unwrap();
    let r = engine.lock_proposed(
        &lm,
        t3,
        &src,
        &authz,
        &q3_target(),
        AccessMode::Update,
        ProtocolOptions::rule4_plain().try_lock(),
    );
    assert!(r.is_err(), "plain rule 4 must serialize Q2/Q3 on e2");
}

#[test]
fn report_renders_fig7_annotations() {
    let (engine, lm, src, authz) = setup();
    let report = engine
        .lock_proposed(&lm, TxnId(2), &src, &authz, &q2_target(), AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    let text = report.render();
    assert!(text.contains("rel:cells: IX"), "{text}");
    assert!(text.contains("[r1]: X"), "{text}");
    assert!(text.contains("rel:effectors: IS"), "{text}");
    assert!(text.contains("obj:e1: S"), "{text}");
    assert_eq!(report.entry_points_locked, 2);
}

#[test]
fn updating_an_effector_directly_locks_its_superunit() {
    // A transaction WITH update rights on effectors X-locks e1 directly:
    // upward propagation covers db1 / seg2 / effectors (IX), then X on e1.
    let (engine, lm, src, _) = setup();
    let authz = Authorization::allow_all();
    let t = TxnId(5);
    let target = InstanceTarget::object("effectors", "e1");
    engine
        .lock_proposed(&lm, t, &src, &authz, &target, AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    assert_eq!(lm.held_mode(t, &ResourcePath::database("db1")), LockMode::IX);
    assert_eq!(lm.held_mode(t, &res("seg2")), LockMode::IX);
    assert_eq!(lm.held_mode(t, &res("seg2/effectors")), LockMode::IX);
    assert_eq!(lm.held_mode(t, &res("seg2/effectors/e1")), LockMode::X);
}

#[test]
fn from_the_side_conflict_is_detected() {
    // T_a updates robot r1 (S-locks e1/e2 downward). T_b, with update rights
    // on effectors, tries to X-lock e2 directly ("from the side") — the
    // proposed protocol makes the conflict visible at the entry point.
    let (engine, lm, src, authz) = setup();
    let ta = TxnId(10);
    engine
        .lock_proposed(&lm, ta, &src, &authz, &q2_target(), AccessMode::Update, ProtocolOptions::default())
        .unwrap();

    let authz_b = Authorization::allow_all();
    authz_b.grant(TxnId(11), "effectors", Right::Update);
    let r = engine.lock_proposed(
        &lm,
        TxnId(11),
        &src,
        &authz_b,
        &InstanceTarget::object("effectors", "e2"),
        AccessMode::Update,
        ProtocolOptions::default().try_lock(),
    );
    assert!(r.is_err(), "X on e2 must conflict with Q2's S entry lock");
}

#[test]
fn read_of_unrelated_cell_part_is_unaffected() {
    // Q1 (read all c_objects of c1) and Q2 (update robot r1) touch different
    // parts: under the proposed technique they coexist.
    let (engine, lm, src, authz) = setup();
    let t1 = TxnId(1);
    let t2 = TxnId(2);
    engine
        .lock_proposed(&lm, t2, &src, &authz, &q2_target(), AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    let q1 = InstanceTarget::object("cells", "c1").attr("c_objects");
    let r = engine.lock_proposed(
        &lm,
        t1,
        &src,
        &authz,
        &q1,
        AccessMode::Read,
        ProtocolOptions::default().try_lock(),
    );
    assert!(r.is_ok(), "Q1 and Q2 must run concurrently: {r:?}");
}
