//! Edge cases of the protocol engine: explicit intent modes, SIX, deep
//! targets, early release, plan/access alignment, error paths.

use colock_core::authorization::{Authorization, Right};
use colock_core::fixtures::{fig1_catalog, fig6_source, StaticSource};
use colock_core::optimizer::{AccessEstimate, Optimizer};
use colock_core::{
    AccessMode, InstanceTarget, ProtocolEngine, ProtocolError, ProtocolOptions, ResourcePath,
};
use colock_lockmgr::{LockManager, LockMode, TxnId};
use colock_nf2::AttrPath;
use std::sync::Arc;

fn setup() -> (ProtocolEngine, LockManager<ResourcePath>, StaticSource) {
    (ProtocolEngine::new(Arc::new(fig1_catalog())), LockManager::new(), fig6_source())
}

fn res_robot(r: &str) -> ResourcePath {
    ResourcePath::database("db1")
        .segment("seg1")
        .relation("cells")
        .object("c1")
        .attr("robots")
        .elem(r)
}

#[test]
fn explicit_is_lock_takes_only_intents() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let target = InstanceTarget::object("cells", "c1").attr("robots");
    let report = engine
        .lock_proposed_mode(&lm, TxnId(1), &src, &authz, &target, LockMode::IS, ProtocolOptions::default())
        .unwrap();
    // IS is an intent: no downward propagation, no entry points.
    assert_eq!(report.entry_points_locked, 0);
    for (_, m) in &report.acquired {
        assert_eq!(*m, LockMode::IS);
    }
}

#[test]
fn explicit_ix_enables_later_fine_x() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let txn = TxnId(1);
    let holu = InstanceTarget::object("cells", "c1").attr("robots");
    engine
        .lock_proposed_mode(&lm, txn, &src, &authz, &holu, LockMode::IX, ProtocolOptions::default())
        .unwrap();
    // Now X one robot under the held IX.
    let robot = InstanceTarget::object("cells", "c1").elem("robots", "r1");
    engine
        .lock_proposed_mode(&lm, txn, &src, &authz, &robot, LockMode::X, ProtocolOptions::default())
        .unwrap();
    assert_eq!(lm.held_mode(txn, &res_robot("r1")), LockMode::X);
}

#[test]
fn six_lock_propagates_like_x_under_rule4() {
    // SIX = read everything + intent to update parts: downward propagation
    // must protect entry points like an X request would.
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let target = InstanceTarget::object("cells", "c1");
    let report = engine
        .lock_proposed_mode(&lm, TxnId(1), &src, &authz, &target, LockMode::SIX, ProtocolOptions::rule4_plain())
        .unwrap();
    assert_eq!(report.entry_points_locked, 3);
    let e1 = ResourcePath::database("db1").segment("seg2").relation("effectors").object("e1");
    assert_eq!(lm.held_mode(TxnId(1), &e1), LockMode::X);
}

#[test]
fn six_lock_respects_rule4_prime() {
    let (engine, lm, src) = setup();
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let target = InstanceTarget::object("cells", "c1");
    engine
        .lock_proposed_mode(&lm, TxnId(1), &src, &authz, &target, LockMode::SIX, ProtocolOptions::default())
        .unwrap();
    let e1 = ResourcePath::database("db1").segment("seg2").relation("effectors").object("e1");
    assert_eq!(lm.held_mode(TxnId(1), &e1), LockMode::S);
}

#[test]
fn deep_blu_target_locks_full_chain() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let traj = InstanceTarget::object("cells", "c1").elem("robots", "r1").attr("trajectory");
    engine
        .lock_proposed(&lm, TxnId(1), &src, &authz, &traj, AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    // Every prefix carries IX; the BLU carries X.
    let blu = res_robot("r1").attr("trajectory");
    assert_eq!(lm.held_mode(TxnId(1), &blu), LockMode::X);
    for anc in blu.ancestors() {
        assert_eq!(lm.held_mode(TxnId(1), &anc), LockMode::IX, "on {anc}");
    }
}

#[test]
fn ref_set_target_propagates_only_its_own_refs() {
    // Locking robot r1's effectors set S must propagate to e1/e2 but not e3.
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let effs = InstanceTarget::object("cells", "c1").elem("robots", "r1").attr("effectors");
    let report = engine
        .lock_proposed(&lm, TxnId(1), &src, &authz, &effs, AccessMode::Read, ProtocolOptions::default())
        .unwrap();
    assert_eq!(report.entry_points_locked, 2);
    let e3 = ResourcePath::database("db1").segment("seg2").relation("effectors").object("e3");
    assert_eq!(lm.held_mode(TxnId(1), &e3), LockMode::NL);
}

#[test]
fn early_release_keeps_shared_ancestors() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let txn = TxnId(1);
    for r in ["r1", "r2"] {
        engine
            .lock_proposed(
                &lm,
                txn,
                &src,
                &authz,
                &InstanceTarget::object("cells", "c1").elem("robots", r),
                AccessMode::Read,
                ProtocolOptions::default(),
            )
            .unwrap();
    }
    let released = engine
        .release_target_early(&lm, txn, &InstanceTarget::object("cells", "c1").elem("robots", "r1"))
        .unwrap();
    assert_eq!(released, 1, "only the leaf: ancestors still guard r2");
    assert_eq!(lm.held_mode(txn, &res_robot("r1")), LockMode::NL);
    assert_eq!(lm.held_mode(txn, &res_robot("r2")), LockMode::S);
    let robots = res_robot("r1").parent().unwrap();
    assert_eq!(lm.held_mode(txn, &robots), LockMode::IS);
}

#[test]
fn early_release_collapses_unneeded_chain() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let txn = TxnId(1);
    let target = InstanceTarget::object("cells", "c1").elem("robots", "r1");
    engine
        .lock_proposed(&lm, txn, &src, &authz, &target, AccessMode::Read, ProtocolOptions { deref_refs: false, ..ProtocolOptions::default() })
        .unwrap();
    let released = engine.release_target_early(&lm, txn, &target).unwrap();
    // Leaf + the five ancestors (db/seg/rel/obj/robots): nothing else held.
    assert_eq!(released, 6);
    assert_eq!(lm.table_size(), 0);
}

#[test]
fn unknown_relation_is_reported() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let err = engine
        .lock_proposed(
            &lm,
            TxnId(1),
            &src,
            &authz,
            &InstanceTarget::object("ghosts", "g1"),
            AccessMode::Read,
            ProtocolOptions::default(),
        )
        .unwrap_err();
    assert_eq!(err, ProtocolError::UnknownRelation("ghosts".to_string()));
}

#[test]
fn optimizer_plan_is_parallel_to_accesses() {
    // The executor zips plan.locks with analysis.accesses — the optimizer
    // must emit exactly one planned lock per estimate, in order.
    let catalog = fig1_catalog();
    let estimates = vec![
        AccessEstimate::keyed("cells", "robots", AccessMode::Update),
        AccessEstimate {
            relation: "cells".into(),
            path: AttrPath::parse("c_objects"),
            access: AccessMode::Read,
            objects_expected: 1.0,
            elems_expected: 100.0,
        },
        AccessEstimate::keyed("effectors", "tool", AccessMode::Read),
    ];
    let plan = Optimizer::default().plan(&catalog, &estimates);
    assert_eq!(plan.locks.len(), estimates.len());
    for (planned, est) in plan.locks.iter().zip(&estimates) {
        assert_eq!(planned.relation, est.relation);
    }
}

#[test]
fn report_mode_of_joins_repeated_grants() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let txn = TxnId(1);
    let mut report = engine
        .lock_proposed_mode(
            &lm,
            txn,
            &src,
            &authz,
            &InstanceTarget::object("cells", "c1").attr("robots"),
            LockMode::IS,
            ProtocolOptions::default(),
        )
        .unwrap();
    let second = engine
        .lock_proposed_mode(
            &lm,
            txn,
            &src,
            &authz,
            &InstanceTarget::object("cells", "c1").attr("robots"),
            LockMode::IX,
            ProtocolOptions::default(),
        )
        .unwrap();
    report.merge(second);
    let robots = res_robot("r1").parent().unwrap();
    assert_eq!(report.mode_of(&robots), Some(LockMode::IX.join(LockMode::IS)));
    assert!(report.mode_of(&res_robot("r9")).is_none());
}

#[test]
fn naive_dag_on_non_common_data_equals_relaxed() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let target = InstanceTarget::object("cells", "c1").elem("robots", "r1");
    let naive = engine
        .lock_naive_dag(&lm, TxnId(1), &src, &authz, &target, AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    let lm2: LockManager<ResourcePath> = LockManager::new();
    let relaxed = engine
        .lock_naive_relaxed(&lm2, TxnId(1), &src, &authz, &target, AccessMode::Update, ProtocolOptions::default())
        .unwrap();
    assert_eq!(naive.lock_count(), relaxed.lock_count());
    assert_eq!(naive.scan_cost, 0);
}

#[test]
fn whole_object_relation_target_locks_relation_plus_commons() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let report = engine
        .lock_whole_object(
            &lm,
            TxnId(1),
            &src,
            &authz,
            &InstanceTarget::relation("cells"),
            AccessMode::Read,
            ProtocolOptions::default(),
        )
        .unwrap();
    let cells = ResourcePath::database("db1").segment("seg1").relation("cells");
    assert_eq!(lm.held_mode(TxnId(1), &cells), LockMode::S);
    // All three effectors coarsely locked too.
    let locked_effectors = report
        .acquired
        .iter()
        .filter(|(r, m)| r.relation_name() == Some("effectors") && *m == LockMode::S && r.object_key().is_some())
        .count();
    assert_eq!(locked_effectors, 3);
}

#[test]
fn tuple_level_subtree_scopes_to_elements_below() {
    let (engine, lm, src) = setup();
    let authz = Authorization::allow_all();
    let robots = InstanceTarget::object("cells", "c1").attr("robots");
    let report = engine
        .lock_tuple_level(&lm, TxnId(1), &src, &authz, &robots, AccessMode::Read, ProtocolOptions::default())
        .unwrap();
    // 2 robot tuples + 3 referenced effector objects (e1, e2, e3).
    let tuple_locks = report
        .acquired
        .iter()
        .filter(|(_, m)| *m == LockMode::S)
        .count();
    assert_eq!(tuple_locks, 5, "{}", report.render());
}
