//! Lock targets and the data-access interface used during locking.

use crate::resource::{PathStep, ResourcePath};
use colock_nf2::{ObjectKey, ObjectRef};
use std::fmt;

/// Kind of access a query performs (FOR READ / FOR UPDATE, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Reading.
    Read,
    /// Updating (insert/delete/modify).
    Update,
}

/// One step into a complex object: an attribute, optionally narrowed to one
/// set/list element by key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TargetStep {
    /// Attribute name.
    pub attr: String,
    /// Element key, when a single element is targeted (e.g. robot `r1`).
    pub elem: Option<ObjectKey>,
}

impl TargetStep {
    /// A step naming the whole attribute (HoLU/HeLU/BLU).
    pub fn attr(name: impl Into<String>) -> Self {
        TargetStep { attr: name.into(), elem: None }
    }

    /// A step narrowing to one element of a set/list attribute.
    pub fn elem(name: impl Into<String>, key: impl Into<ObjectKey>) -> Self {
        TargetStep { attr: name.into(), elem: Some(key.into()) }
    }
}

/// An instance-level lock target: a lockable unit inside a concrete complex
/// object — or the object, or its whole relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InstanceTarget {
    /// Relation name.
    pub relation: String,
    /// Complex-object key; `None` targets the relation as a whole.
    pub object: Option<ObjectKey>,
    /// Steps into the object (empty = the complex object itself).
    pub steps: Vec<TargetStep>,
}

impl InstanceTarget {
    /// Targets a whole relation.
    pub fn relation(relation: impl Into<String>) -> Self {
        InstanceTarget { relation: relation.into(), object: None, steps: Vec::new() }
    }

    /// Targets a whole complex object.
    pub fn object(relation: impl Into<String>, key: impl Into<ObjectKey>) -> Self {
        InstanceTarget { relation: relation.into(), object: Some(key.into()), steps: Vec::new() }
    }

    /// Extends the target by a step.
    pub fn step(mut self, step: TargetStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Extends by an attribute step.
    pub fn attr(self, name: impl Into<String>) -> Self {
        self.step(TargetStep::attr(name))
    }

    /// Extends by an element step.
    pub fn elem(self, name: impl Into<String>, key: impl Into<ObjectKey>) -> Self {
        self.step(TargetStep::elem(name, key))
    }

    /// Builds the [`ResourcePath`] for this target given database and segment
    /// names (the engine supplies them from the catalog).
    pub fn resource(&self, database: &str, segment: &str) -> ResourcePath {
        let mut p = ResourcePath::database(database).segment(segment).relation(&self.relation);
        if let Some(k) = &self.object {
            p = p.child(PathStep::Object(k.clone()));
            for s in &self.steps {
                p = p.attr(&s.attr);
                if let Some(e) = &s.elem {
                    p = p.child(PathStep::Elem(e.clone()));
                }
            }
        }
        p
    }

    /// The schema-level attribute path of this target (element keys erased).
    pub fn attr_path(&self) -> colock_nf2::AttrPath {
        colock_nf2::AttrPath::from_steps(self.steps.iter().map(|s| s.attr.clone()).collect())
    }
}

impl fmt::Display for InstanceTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.relation)?;
        if let Some(k) = &self.object {
            write!(f, "[{k}]")?;
        }
        for s in &self.steps {
            write!(f, ".{}", s.attr)?;
            if let Some(e) = &s.elem {
                write!(f, "[{e}]")?;
            }
        }
        Ok(())
    }
}

/// Result of a reverse-reference scan (naive-DAG baseline, §3.2.2: "It is a
/// very time-consuming task to find out which robots are affected").
#[derive(Debug, Clone, Default)]
pub struct ReverseScan {
    /// Targets of the referencing subobjects (e.g. the robots whose
    /// `effectors` set contains the reference).
    pub referencing: Vec<InstanceTarget>,
    /// How many complex objects had to be visited to find them.
    pub objects_scanned: u64,
}

/// Data-dependent information the protocols need while locking.
///
/// Implemented by `colock-storage`; the protocol discovers entry points of
/// dependent inner units by scanning the references inside the data it is
/// about to access anyway (§4.4.2.1) — this trait is that scan.
pub trait InstanceSource {
    /// References contained in the subtree named by `target` (not following
    /// into referenced objects).
    fn refs_under(&self, target: &InstanceTarget) -> Vec<ObjectRef>;

    /// References contained anywhere in a relation (for relation-granule
    /// locks).
    fn refs_in_relation(&self, relation: &str) -> Vec<ObjectRef>;

    /// The basic element tuples under `target` as individual lock targets
    /// (tuple-level baseline): each set/list element and the object's own
    /// root tuple.
    fn tuples_under(&self, target: &InstanceTarget) -> Vec<InstanceTarget>;

    /// Reverse scan: all subobjects referencing `relation[key]`.
    fn referencing_objects(&self, relation: &str, key: &ObjectKey) -> ReverseScan;

    /// Keys of all complex objects of a relation (for relation-wide locks).
    fn object_keys(&self, relation: &str) -> Vec<ObjectKey>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_path_construction() {
        let t = InstanceTarget::object("cells", "c1").elem("robots", "r1").attr("trajectory");
        let r = t.resource("db1", "seg1");
        assert_eq!(r.to_string(), "db:db1/seg:seg1/rel:cells/obj:c1/robots/[r1]/trajectory");
    }

    #[test]
    fn relation_target_has_short_path() {
        let t = InstanceTarget::relation("effectors");
        let r = t.resource("db1", "seg2");
        assert_eq!(r.to_string(), "db:db1/seg:seg2/rel:effectors");
    }

    #[test]
    fn display_formats() {
        let t = InstanceTarget::object("cells", "c1").attr("robots");
        assert_eq!(t.to_string(), "cells[c1].robots");
        let t2 = InstanceTarget::object("cells", "c1").elem("robots", "r2");
        assert_eq!(t2.to_string(), "cells[c1].robots[r2]");
    }

    #[test]
    fn attr_path_erases_elements() {
        let t = InstanceTarget::object("cells", "c1").elem("robots", "r1").attr("trajectory");
        assert_eq!(t.attr_path().to_string(), "robots.trajectory");
    }
}
