//! Baseline: XSQL-style whole-object locking (§3.1, \[HaLo82\], \[LoPl83\]).
//!
//! "In the applications described in \[HaLo82\] complex objects are always
//! manipulated (checked-out, checked-in) as a whole" — the lockable unit is
//! the complex object; any access to a part of an object locks the *entire*
//! object (including existing common data, §1). That is the
//! granule-oriented problem: Q1 and Q2 of Fig. 3 touch different parts of
//! cell `c1` but serialize anyway.

use crate::authorization::Authorization;
use crate::protocol::engine::{
    Ctx, LockReport, ProtocolEngine, ProtocolError, ProtocolOptions, TxnLockCache,
};
use crate::protocol::target::{AccessMode, InstanceSource, InstanceTarget};
use crate::resource::ResourcePath;
use colock_lockmgr::{LockManager, LockMode, TxnId};
use colock_nf2::{ObjectKey, ObjectRef};
use colock_trace::{rule_scope, RuleTag};
use std::collections::HashSet;

impl ProtocolEngine {
    /// Locks the complex object containing `target` as a whole (plus all
    /// transitively referenced common data, in the same mode).
    #[allow(clippy::too_many_arguments)]
    pub fn lock_whole_object(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport, ProtocolError> {
        self.lock_whole_object_cached(lm, txn, src, authz, target, access, opts, None)
    }

    /// [`ProtocolEngine::lock_whole_object`] with a per-transaction lock
    /// cache.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_whole_object_cached(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
        cache: Option<&TxnLockCache>,
    ) -> Result<LockReport, ProtocolError> {
        self.check_authorized(authz, txn, &target.relation, access)?;
        let mode = Self::target_mode(access);
        let mut ctx = Ctx::with_cache(lm, txn, src, authz, opts, cache);

        match &target.object {
            Some(key) => {
                let object = InstanceTarget::object(&target.relation, key.clone());
                self.lock_object_coarse(&mut ctx, &object, mode)?;
            }
            None => {
                // Whole-relation access: lock the relation.
                let resource = self.resource_for(target)?;
                ctx.acquire_ancestor_intents(&resource, mode)?;
                let _rule = rule_scope(RuleTag::WholeObject);
                ctx.acquire(&resource, mode)?;
                // Referenced common data still must be locked coarsely.
                let refs = ctx.src.refs_in_relation(&target.relation);
                self.lock_refs_coarse(&mut ctx, refs, mode)?;
            }
        }
        Ok(ctx.finish())
    }

    fn lock_object_coarse(
        &self,
        ctx: &mut Ctx<'_>,
        object: &InstanceTarget,
        mode: LockMode,
    ) -> Result<(), ProtocolError> {
        let resource = self.resource_for(object)?;
        ctx.acquire_ancestor_intents(&resource, mode)?;
        {
            let _rule = rule_scope(RuleTag::WholeObject);
            ctx.acquire(&resource, mode)?;
        }
        let refs = ctx.src.refs_under(object);
        self.lock_refs_coarse(ctx, refs, mode)
    }

    fn lock_refs_coarse(
        &self,
        ctx: &mut Ctx<'_>,
        initial: Vec<ObjectRef>,
        mode: LockMode,
    ) -> Result<(), ProtocolError> {
        let mut visited: HashSet<(String, ObjectKey)> = HashSet::new();
        let mut work = initial;
        while let Some(r) = work.pop() {
            if !visited.insert((r.relation.clone(), r.key.clone())) {
                continue;
            }
            let obj = InstanceTarget::object(&r.relation, r.key.clone());
            let resource = self.resource_for(&obj)?;
            ctx.acquire_ancestor_intents(&resource, mode)?;
            {
                let _rule = rule_scope(RuleTag::WholeObject);
                ctx.acquire(&resource, mode)?;
            }
            work.extend(ctx.src.refs_under(&obj));
        }
        Ok(())
    }
}
