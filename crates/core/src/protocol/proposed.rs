//! The paper's lock protocol (§4.4.2): rules 1–5, with rule 4′ as an option.
//!
//! For a request of mode `M` on a target node:
//!
//! 1./2. (IS/IX) — all *immediate parents* of the target are locked in the
//!    corresponding intent mode, root-to-leaf. If the target is the root of
//!    an inner unit (an entry point), the concurrency control manager locks
//!    all immediate parents up to the root of the superunit on behalf of the
//!    transaction ("implicit upward propagation").
//! 3./4. (S/X) — as above, and in addition the concurrency control manager
//!    S/X-locks all entry points of lower (dependent) inner units accessible
//!    via the requested node ("implicit downward propagation", crossing
//!    superunit boundaries transitively).
//! 4′. Under an X request, entry points of *modifiable* lower inner units are
//!    X-locked while *non-modifiable* ones are only S-locked.
//! 5. Locks are requested root-to-leaf; released leaf-to-root or at EOT.
//!
//! Downward propagation discovers entry points by scanning the references in
//! the data being accessed (which the query has to read anyway), so it adds
//! no extra I/O; only the entry points themselves enter the lock table, which
//! keeps the table growth moderate (§4.4.2.1).

use crate::authorization::Authorization;
use crate::protocol::engine::{
    Ctx, LockReport, ProtocolEngine, ProtocolError, ProtocolOptions, TxnLockCache,
};
use crate::protocol::target::{AccessMode, InstanceSource, InstanceTarget};
use colock_lockmgr::{LockManager, LockMode, TxnId};
use colock_nf2::{ObjectKey, ObjectRef};
use colock_trace::{rule_scope, RuleTag};
use crate::resource::ResourcePath;
use std::collections::HashMap;

impl ProtocolEngine {
    /// Locks `target` for `access` under the proposed protocol and returns
    /// the lock report. `mode` is derived from the access (S for read, X for
    /// update); use [`ProtocolEngine::lock_proposed_mode`] for explicit
    /// intent-mode requests.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_proposed(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport, ProtocolError> {
        self.lock_proposed_mode(lm, txn, src, authz, target, Self::target_mode(access), opts)
    }

    /// [`ProtocolEngine::lock_proposed`] with a per-transaction lock cache:
    /// ancestor intention locks already covered by the cache skip the lock
    /// table entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_proposed_cached(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
        cache: Option<&TxnLockCache>,
    ) -> Result<LockReport, ProtocolError> {
        self.lock_proposed_mode_cached(
            lm,
            txn,
            src,
            authz,
            target,
            Self::target_mode(access),
            opts,
            cache,
        )
    }

    /// Locks `target` in an explicit mode (IS/IX/S/X) under the proposed
    /// protocol.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_proposed_mode(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        mode: LockMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport, ProtocolError> {
        self.lock_proposed_mode_cached(lm, txn, src, authz, target, mode, opts, None)
    }

    /// [`ProtocolEngine::lock_proposed_mode`] with a per-transaction lock
    /// cache.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_proposed_mode_cached(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        mode: LockMode,
        opts: ProtocolOptions,
        cache: Option<&TxnLockCache>,
    ) -> Result<LockReport, ProtocolError> {
        // Write-side modes are exactly those whose parents must announce IX:
        // semantic Insert/Delete sit *below* IX in the lattice yet authorize
        // mutation, so `covers(IX)` would misclassify them as reads.
        let access = if mode.required_parent_intent() == LockMode::IX {
            AccessMode::Update
        } else {
            AccessMode::Read
        };
        self.check_authorized(authz, txn, &target.relation, access)?;

        let mut ctx = Ctx::with_cache(lm, txn, src, authz, opts, cache);
        let resource = self.resource_for(target)?;

        // Rules 1–4, first half: intent locks on all immediate parents,
        // root-to-leaf (this covers implicit upward propagation when the
        // target lies inside an inner unit — the chain passes through the
        // superunit: database, segment, relation).
        ctx.acquire_ancestor_intents(&resource, mode)?;
        {
            let _rule = rule_scope(RuleTag::Target);
            ctx.acquire(&resource, mode)?;
        }

        // Rules 3/4, second half: implicit downward propagation for S/X.
        // Skipped when the query semantics guarantee no dereference (§4.5).
        if mode.allows_read() && opts.deref_refs {
            let refs = match &target.object {
                Some(_) => ctx.src.refs_under(target),
                None => ctx.src.refs_in_relation(&target.relation),
            };
            self.propagate_down(&mut ctx, refs, mode)?;
        }
        Ok(ctx.finish())
    }

    /// Implicit downward propagation: locks all entry points of lower inner
    /// units reachable via the already-locked subtree, transitively.
    fn propagate_down(
        &self,
        ctx: &mut Ctx<'_>,
        initial: Vec<ObjectRef>,
        mode: LockMode,
    ) -> Result<(), ProtocolError> {
        // visited: strongest mode already propagated per referenced object.
        let mut visited: HashMap<(String, ObjectKey), LockMode> = HashMap::new();
        let mut work: Vec<(ObjectRef, LockMode, RuleTag)> = initial
            .into_iter()
            .map(|r| {
                let (m, tag) = self.entry_mode(ctx, mode, &r.relation);
                (r, m, tag)
            })
            .collect();

        while let Some((r, m, tag)) = work.pop() {
            let key = (r.relation.clone(), r.key.clone());
            if let Some(prev) = visited.get(&key) {
                if prev.covers(m) {
                    continue;
                }
            }
            let joined = visited.get(&key).map_or(m, |p| p.join(m));
            visited.insert(key, joined);

            // Implicit upward propagation: IS/IX on the superunit chain of
            // the entry point (database, segment, relation).
            let entry_target = InstanceTarget::object(&r.relation, r.key.clone());
            let entry_resource = self.resource_for(&entry_target)?;
            ctx.acquire_ancestor_intents(&entry_resource, joined)?;
            // The entry point itself.
            {
                let _rule = rule_scope(tag);
                ctx.acquire(&entry_resource, joined)?;
            }
            ctx.report.entry_points_locked += 1;

            // Common data may again contain common data (§2): recurse into
            // references of the inner unit just locked.
            for child in ctx.src.refs_under(&entry_target) {
                let (child_mode, child_tag) = self.entry_mode(ctx, joined, &child.relation);
                work.push((child, child_mode, child_tag));
            }
        }
        Ok(())
    }

    /// Mode (and trace rule tag) for an entry point during downward
    /// propagation.
    ///
    /// Rule 4: propagate the requested S/X unchanged. Rule 4′: under X,
    /// non-modifiable inner units get S — "locking of common data in a mode
    /// which is the least restrictive necessary" (§4.6). The returned tag
    /// distinguishes a rule-4′ weakening from a plain entry-point lock.
    fn entry_mode(&self, ctx: &Ctx<'_>, mode: LockMode, relation: &str) -> (LockMode, RuleTag) {
        debug_assert!(mode.allows_read());
        if mode == LockMode::X || mode == LockMode::SIX {
            if ctx.opts.rule4_prime && !ctx.authz.can_modify(ctx.txn, relation) {
                (LockMode::S, RuleTag::EntryPointNonModifiable)
            } else {
                (LockMode::X, RuleTag::EntryPoint)
            }
        } else {
            (LockMode::S, RuleTag::EntryPoint)
        }
    }

    /// Releases every lock of `txn` (EOT, rule 5: at EOT locks may be
    /// released in any order).
    pub fn release_all(&self, lm: &LockManager<ResourcePath>, txn: TxnId) -> usize {
        lm.release_all(txn)
    }

    /// Releases a single target leaf-to-root before EOT (rule 5's other
    /// branch): the target itself first, then any ancestors on which no
    /// other lock of the transaction depends.
    pub fn release_target_early(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        target: &InstanceTarget,
    ) -> Result<usize, ProtocolError> {
        let resource = self.resource_for(target)?;
        let mut released = 0;
        if lm.release(txn, &resource) {
            released += 1;
        }
        // Leaf-to-root: drop ancestors that protect nothing else.
        let held = lm.locks_of(txn);
        let mut ancestors = resource.ancestors();
        ancestors.reverse();
        for anc in ancestors {
            let still_needed = held
                .iter()
                .any(|(r, _, _)| r != &anc && anc.is_prefix_of(r) && lm.held_mode(txn, r) != LockMode::NL);
            if still_needed {
                break;
            }
            if lm.release(txn, &anc) {
                released += 1;
            }
        }
        Ok(released)
    }
}
