//! Lock protocols: the paper's proposed protocol (§4.4.2) and the baselines
//! it is evaluated against (§3).
//!
//! | Protocol | Paper role |
//! |---|---|
//! | [`proposed`] | §4.4.2 rules 1–5 with implicit upward/downward propagation; rule 4′ optional |
//! | [`whole_object`] | XSQL-style: complex objects locked as a whole incl. common data (§3.1/\[HaLo82\]) |
//! | [`tuple_level`] | System R tuple locking: every basic element tuple locked individually (§3.2.1) |
//! | [`naive_dag`] | straightforward DAG application to non-disjoint objects (§3.2.2): reverse-scan all parents for X on shared data; no downward propagation, so implicit locks stay invisible from the side |
//!
//! All engines drive the same [`colock_lockmgr::LockManager`] keyed by
//! [`crate::resource::ResourcePath`], so their lock footprints and conflict
//! behaviour are directly comparable.

pub mod engine;
pub mod naive_dag;
pub mod proposed;
pub mod target;
pub mod tuple_level;
pub mod whole_object;

pub use engine::{LockReport, ProtocolEngine, ProtocolError, ProtocolOptions, TxnLockCache};
pub use target::{AccessMode, InstanceSource, InstanceTarget, ReverseScan, TargetStep};
