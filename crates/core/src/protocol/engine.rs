//! Shared protocol machinery: context, lock reports, error mapping.

use crate::authorization::Authorization;
use crate::graph::derive::derive_lock_graph;
use crate::graph::object::DbLockGraph;
use crate::protocol::target::{AccessMode, InstanceSource, InstanceTarget};
use crate::resource::ResourcePath;
use colock_lockmgr::{
    AcquireOutcome, LockError, LockManager, LockMode, LockRequestOptions, TxnId, WaitPolicy,
};
use colock_trace::{rule_scope, RuleTag};
use colock_nf2::Catalog;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Errors raised by protocol execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Underlying lock manager error (would-block, deadlock, timeout).
    Lock(LockError),
    /// Unknown relation in a target.
    UnknownRelation(String),
    /// The transaction lacks the right the access needs (checked before any
    /// lock is requested).
    Unauthorized {
        /// The requesting transaction.
        txn: TxnId,
        /// The relation whose right is missing.
        relation: String,
        /// The access that was attempted.
        access: AccessMode,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Lock(e) => write!(f, "lock error: {e}"),
            ProtocolError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            ProtocolError::Unauthorized { txn, relation, access } => {
                write!(f, "{txn} lacks {access:?} right on `{relation}`")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<LockError> for ProtocolError {
    fn from(e: LockError) -> Self {
        ProtocolError::Lock(e)
    }
}

/// Options controlling protocol behaviour.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolOptions {
    /// Use rule 4′ (authorization-aware downward propagation) instead of
    /// rule 4.
    pub rule4_prime: bool,
    /// Wait policy passed to the lock manager.
    pub wait: WaitPolicy,
    /// Request long locks (check-out).
    pub long: bool,
    /// Whether accessing a reference implies accessing the referenced data
    /// (the default, §4.5). Operations that provably never dereference —
    /// e.g. deleting a robot without touching its effectors — may disable
    /// downward propagation entirely ("no locks on common data are necessary
    /// at all", §4.5).
    pub deref_refs: bool,
}

impl Default for ProtocolOptions {
    fn default() -> Self {
        ProtocolOptions { rule4_prime: true, wait: WaitPolicy::Block, long: false, deref_refs: true }
    }
}

impl ProtocolOptions {
    /// Rule 4 (no authorization cooperation).
    pub fn rule4_plain() -> Self {
        ProtocolOptions { rule4_prime: false, ..Default::default() }
    }

    /// Non-blocking variant (used by the deterministic scheduler).
    pub fn try_lock(self) -> Self {
        ProtocolOptions { wait: WaitPolicy::Try, ..self }
    }
}

/// Record of the locks a protocol run acquired, in acquisition order.
#[derive(Debug, Clone, Default)]
pub struct LockReport {
    /// `(resource, mode)` per granted (non-redundant) request.
    pub acquired: Vec<(ResourcePath, LockMode)>,
    /// Requests answered `AlreadyHeld` (covered by an earlier lock).
    pub redundant: u64,
    /// Requests that had to wait.
    pub waited: u64,
    /// Complex objects visited by reverse scans (naive-DAG baseline only).
    pub scan_cost: u64,
    /// Entry points locked by downward propagation.
    pub entry_points_locked: u64,
}

impl LockReport {
    /// Number of lock-table touching requests (granted, non-redundant).
    pub fn lock_count(&self) -> usize {
        self.acquired.len()
    }

    /// Renders the report like Fig. 7 annotations: `resource: MODE` lines.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (r, m) in &self.acquired {
            let _ = writeln!(out, "{r}: {m}");
        }
        out
    }

    /// The mode acquired on a resource in this run, if any (join of all
    /// grants on it).
    pub fn mode_of(&self, resource: &ResourcePath) -> Option<LockMode> {
        let mut mode: Option<LockMode> = None;
        for (r, m) in &self.acquired {
            if r == resource {
                mode = Some(mode.map_or(*m, |prev| prev.join(*m)));
            }
        }
        mode
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: LockReport) {
        self.acquired.extend(other.acquired);
        self.redundant += other.redundant;
        self.waited += other.waited;
        self.scan_cost += other.scan_cost;
        self.entry_points_locked += other.entry_points_locked;
    }
}

/// The protocol engine: catalog + derived lock graph + common-data set.
///
/// One engine serves all protocols; each protocol is a method (see the
/// sibling modules). The engine is immutable and shared between transactions.
pub struct ProtocolEngine {
    catalog: Arc<Catalog>,
    graph: DbLockGraph,
    common: HashSet<String>,
    db_name: String,
}

impl ProtocolEngine {
    /// Builds an engine (derives the object-specific lock graphs).
    pub fn new(catalog: Arc<Catalog>) -> Self {
        let graph = derive_lock_graph(&catalog);
        let common = catalog
            .schema()
            .common_data_relations()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        let db_name = catalog.schema().name.clone();
        ProtocolEngine { catalog, graph, common, db_name }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The derived lock graph.
    pub fn graph(&self) -> &DbLockGraph {
        &self.graph
    }

    /// The database name.
    pub fn db_name(&self) -> &str {
        &self.db_name
    }

    /// Whether a relation holds common data.
    pub fn is_common(&self, relation: &str) -> bool {
        self.common.contains(relation)
    }

    /// The segment of a relation.
    pub fn segment_of(&self, relation: &str) -> Result<&str, ProtocolError> {
        self.catalog
            .schema()
            .relation(relation)
            .map(|r| r.segment.as_str())
            .map_err(|_| ProtocolError::UnknownRelation(relation.to_string()))
    }

    /// The instance resource for a target.
    pub fn resource_for(&self, target: &InstanceTarget) -> Result<ResourcePath, ProtocolError> {
        let seg = self.segment_of(&target.relation)?;
        Ok(target.resource(&self.db_name, seg))
    }

    /// Checks authorization before any lock is requested.
    pub(crate) fn check_authorized(
        &self,
        authz: &Authorization,
        txn: TxnId,
        relation: &str,
        access: AccessMode,
    ) -> Result<(), ProtocolError> {
        let ok = match access {
            AccessMode::Read => authz.can_read(txn, relation),
            AccessMode::Update => authz.can_modify(txn, relation),
        };
        if ok {
            Ok(())
        } else {
            Err(ProtocolError::Unauthorized { txn, relation: relation.to_string(), access })
        }
    }

    /// The lock mode for the target granule given the access.
    pub fn target_mode(access: AccessMode) -> LockMode {
        match access {
            AccessMode::Read => LockMode::S,
            AccessMode::Update => LockMode::X,
        }
    }
}

/// Per-transaction cache of locks already obtained, letting the protocol
/// paths answer "is this request covered?" without a lock-table round-trip.
///
/// Rules 1–5 re-request the same database/segment/relation intention locks
/// on *every* access; before this cache each re-request paid a shard lock
/// just to be told `AlreadyHeld`. An entry `(mode, long)` means the
/// transaction holds at least `mode` on the resource, as a long lock if
/// `long` is set. A request is covered only when the cached mode covers the
/// requested one **and** the cached entry is long if the request is —
/// a long request over a short cached entry must go to the table, otherwise
/// `release_short` would strand long leaf locks without their ancestor
/// intents.
///
/// The cache is owned by the transaction's state and dropped at EOT, so
/// invalidation is automatic; early (pre-EOT) releases must call
/// [`TxnLockCache::clear`].
#[derive(Debug, Default)]
pub struct TxnLockCache {
    held: Mutex<HashMap<ResourcePath, (LockMode, bool)>>,
}

impl TxnLockCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, HashMap<ResourcePath, (LockMode, bool)>> {
        self.held.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether a request for `mode` (long if `long`) is covered by a cached
    /// lock. Admissibility is `satisfies_parent_intent`, not bare `covers`: a
    /// held semantic Insert/Delete answers an IX ancestor requirement without
    /// a conversion — upgrading the container to IX would re-serialize the
    /// commuting inserters the semantic mode exists to keep parallel.
    pub fn covers(&self, resource: &ResourcePath, mode: LockMode, long: bool) -> bool {
        self.locked()
            .get(resource)
            .map(|&(m, l)| m.satisfies_parent_intent(mode) && (l || !long))
            .unwrap_or(false)
    }

    /// Records a lock obtained from the table (joins modes, widens short to
    /// long).
    pub fn record(&self, resource: &ResourcePath, mode: LockMode, long: bool) {
        let mut held = self.locked();
        let entry = held.entry(resource.clone()).or_insert((LockMode::NL, false));
        entry.0 = entry.0.join(mode);
        entry.1 = entry.1 || long;
    }

    /// Forgets everything — required after any early (pre-EOT) release.
    pub fn clear(&self) {
        self.locked().clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.locked().is_empty()
    }
}

/// Mutable per-call context: lock manager handle, transaction, data source,
/// rights, options and the accumulating report.
pub(crate) struct Ctx<'a> {
    pub lm: &'a LockManager<ResourcePath>,
    pub txn: TxnId,
    pub src: &'a dyn InstanceSource,
    pub authz: &'a Authorization,
    pub opts: ProtocolOptions,
    pub cache: Option<&'a TxnLockCache>,
    pub report: LockReport,
}

impl<'a> Ctx<'a> {
    pub fn with_cache(
        lm: &'a LockManager<ResourcePath>,
        txn: TxnId,
        src: &'a dyn InstanceSource,
        authz: &'a Authorization,
        opts: ProtocolOptions,
        cache: Option<&'a TxnLockCache>,
    ) -> Self {
        Ctx { lm, txn, src, authz, opts, cache, report: LockReport::default() }
    }

    /// Acquires `mode` on `resource`, recording the outcome. A request
    /// covered by the per-transaction cache is answered as redundant without
    /// touching the lock table at all.
    pub fn acquire(&mut self, resource: &ResourcePath, mode: LockMode) -> Result<(), ProtocolError> {
        if let Some(cache) = self.cache {
            if cache.covers(resource, mode, self.opts.long) {
                self.report.redundant += 1;
                return Ok(());
            }
        }
        let lock_opts = LockRequestOptions { policy: self.opts.wait, long: self.opts.long };
        match self.lm.acquire(self.txn, resource.clone(), mode, lock_opts) {
            Ok(AcquireOutcome::Granted { waited }) => {
                if waited {
                    self.report.waited += 1;
                }
                self.report.acquired.push((resource.clone(), mode));
                if let Some(cache) = self.cache {
                    cache.record(resource, mode, self.opts.long);
                }
                Ok(())
            }
            Ok(AcquireOutcome::AlreadyHeld) => {
                self.report.redundant += 1;
                if let Some(cache) = self.cache {
                    // The table does not widen the long flag on AlreadyHeld,
                    // so cache the covering mode as short only.
                    cache.record(resource, mode, false);
                }
                Ok(())
            }
            Err(e) => Err(ProtocolError::Lock(e)),
        }
    }

    /// Acquires intent locks on every proper ancestor of `resource`,
    /// root-to-leaf (rule 5), as required by rules 1–4. Trace events emitted
    /// under here carry the [`RuleTag::AncestorIntent`] tag.
    ///
    /// The cache-missing ancestors go to the lock manager as one batch
    /// ([`LockManager::acquire_intent_chain`]): compatible links share a
    /// single optimistic fast-path section instead of taking one shard mutex
    /// each, which is what makes deep chains cheap.
    pub fn acquire_ancestor_intents(
        &mut self,
        resource: &ResourcePath,
        mode: LockMode,
    ) -> Result<(), ProtocolError> {
        let _rule = rule_scope(RuleTag::AncestorIntent);
        let intent = mode.required_parent_intent();
        let mut chain: Vec<ResourcePath> = Vec::new();
        for anc in resource.ancestors() {
            if let Some(cache) = self.cache {
                if cache.covers(&anc, intent, self.opts.long) {
                    self.report.redundant += 1;
                    continue;
                }
            }
            chain.push(anc);
        }
        if chain.is_empty() {
            return Ok(());
        }
        let lock_opts = LockRequestOptions { policy: self.opts.wait, long: self.opts.long };
        let outcomes = self
            .lm
            .acquire_intent_chain(self.txn, &chain, intent, lock_opts)
            .map_err(ProtocolError::Lock)?;
        for (anc, outcome) in chain.into_iter().zip(outcomes) {
            match outcome {
                AcquireOutcome::Granted { waited } => {
                    if waited {
                        self.report.waited += 1;
                    }
                    if let Some(cache) = self.cache {
                        cache.record(&anc, intent, self.opts.long);
                    }
                    self.report.acquired.push((anc, intent));
                }
                AcquireOutcome::AlreadyHeld => {
                    self.report.redundant += 1;
                    if let Some(cache) = self.cache {
                        cache.record(&anc, intent, false);
                    }
                }
            }
        }
        Ok(())
    }

    pub fn finish(self) -> LockReport {
        self.report
    }
}
