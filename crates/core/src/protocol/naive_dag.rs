//! Baseline: straightforward application of the traditional DAG protocol to
//! non-disjoint complex objects (§3.2.2) — the protocol-oriented problems.
//!
//! Two defects, both reproduced here on purpose:
//!
//! 1. **Exclusive locks on shared data are enormously expensive.** The
//!    traditional DAG rule demands that *all* parents of a node be IX-locked
//!    before the node is X-locked. For a node inside common data the parents
//!    include every referencing subobject (every robot using the effector),
//!    which must first be *found* — a reverse scan over the referencing
//!    relations (the paper: "It is a very time-consuming task to find out
//!    which robots are affected"). [`ProtocolEngine::lock_naive_dag`] performs
//!    exactly that scan and lock cascade; experiment E2 measures it.
//!
//! 2. **Implicit locks on common data are invisible "from the side".** If
//!    the all-parents rule is dropped instead, a transaction locking robot
//!    `r1` in X believes the referenced effectors are implicitly X-locked —
//!    but a second transaction reaching effector `e1` via robot `r2` never
//!    sees those implicit locks. The naive engine takes **no** locks on
//!    common data for S/X requests on non-shared nodes (no downward
//!    propagation), so experiment E3 can demonstrate the resulting
//!    inconsistency.

use crate::authorization::Authorization;
use crate::protocol::engine::{
    Ctx, LockReport, ProtocolEngine, ProtocolError, ProtocolOptions, TxnLockCache,
};
use crate::protocol::target::{AccessMode, InstanceSource, InstanceTarget};
use crate::resource::ResourcePath;
use colock_lockmgr::{LockManager, LockMode, TxnId};
use colock_nf2::ObjectKey;
use colock_trace::{rule_scope, RuleTag};
use std::collections::HashSet;

impl ProtocolEngine {
    /// Locks `target` under the naive traditional-DAG protocol.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_naive_dag(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport, ProtocolError> {
        self.lock_naive_dag_cached(lm, txn, src, authz, target, access, opts, None)
    }

    /// [`ProtocolEngine::lock_naive_dag`] with a per-transaction lock cache.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_naive_dag_cached(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
        cache: Option<&TxnLockCache>,
    ) -> Result<LockReport, ProtocolError> {
        self.check_authorized(authz, txn, &target.relation, access)?;
        let mode = Self::target_mode(access);
        let mut ctx = Ctx::with_cache(lm, txn, src, authz, opts, cache);

        if mode == LockMode::X && self.is_common(&target.relation) {
            // Defect 1: X on shared data requires ALL parents to be locked.
            self.lock_all_parents(&mut ctx, target)?;
        }

        let resource = self.resource_for(target)?;
        ctx.acquire_ancestor_intents(&resource, mode)?;
        {
            let _rule = rule_scope(RuleTag::Target);
            ctx.acquire(&resource, mode)?;
        }
        // Defect 2 (by construction): no downward propagation — referenced
        // common data is only "implicitly" locked, invisibly to other paths.
        Ok(ctx.finish())
    }

    /// The *relaxed* naive variant (§3.2.2): "If the DAG requirement that
    /// all parents … be locked before such a node may be requested in mode
    /// (I)X is given up" — X on shared data takes only its own chain. Cheap,
    /// but implicit locks on common data are invisible from the side: the
    /// E3 experiment demonstrates the resulting inconsistency.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_naive_relaxed(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport, ProtocolError> {
        self.lock_naive_relaxed_cached(lm, txn, src, authz, target, access, opts, None)
    }

    /// [`ProtocolEngine::lock_naive_relaxed`] with a per-transaction lock
    /// cache.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_naive_relaxed_cached(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
        cache: Option<&TxnLockCache>,
    ) -> Result<LockReport, ProtocolError> {
        self.check_authorized(authz, txn, &target.relation, access)?;
        let mode = Self::target_mode(access);
        let mut ctx = Ctx::with_cache(lm, txn, src, authz, opts, cache);
        let resource = self.resource_for(target)?;
        ctx.acquire_ancestor_intents(&resource, mode)?;
        {
            let _rule = rule_scope(RuleTag::Target);
            ctx.acquire(&resource, mode)?;
        }
        Ok(ctx.finish())
    }

    /// Finds (by reverse scan) and IX-locks every subobject referencing the
    /// shared object of `target`, including their full ancestor chains, and
    /// recursively the referencers of any referencing shared object.
    fn lock_all_parents(
        &self,
        ctx: &mut Ctx<'_>,
        target: &InstanceTarget,
    ) -> Result<(), ProtocolError> {
        let Some(key) = target.object.clone() else {
            return Ok(());
        };
        let mut visited: HashSet<(String, ObjectKey)> = HashSet::new();
        let mut work: Vec<(String, ObjectKey)> = vec![(target.relation.clone(), key)];
        while let Some((relation, key)) = work.pop() {
            if !visited.insert((relation.clone(), key.clone())) {
                continue;
            }
            let scan = ctx.src.referencing_objects(&relation, &key);
            ctx.report.scan_cost += scan.objects_scanned;
            for parent in scan.referencing {
                let resource = self.resource_for(&parent)?;
                // The referencing subobject and all its ancestors in IX.
                ctx.acquire_ancestor_intents(&resource, LockMode::X)?;
                {
                    let _rule = rule_scope(RuleTag::AllParentsScan);
                    ctx.acquire(&resource, LockMode::IX)?;
                }
                // If the referencing object itself lives in common data, its
                // parents must be locked as well (transitive rule).
                if self.is_common(&parent.relation) {
                    if let Some(pk) = parent.object.clone() {
                        work.push((parent.relation.clone(), pk));
                    }
                }
            }
        }
        Ok(())
    }
}
