//! Baseline: tuple-level locking (§3.2.1).
//!
//! "Locking each single tuple of a complex object … would lead to an immense
//! concurrency control overhead, because one cell may contain hundreds of
//! c_objects." The lockable units are the basic element tuples (the flat
//! tuples complex objects are built from — System R's `tuples` granule), with
//! intent locks only on database, segment and relation (System R's graph has
//! nothing between relation and tuple). The lock *count* therefore grows with
//! the data, which experiment E1 measures.

use crate::authorization::Authorization;
use crate::protocol::engine::{
    Ctx, LockReport, ProtocolEngine, ProtocolError, ProtocolOptions, TxnLockCache,
};
use crate::protocol::target::{AccessMode, InstanceSource, InstanceTarget};
use crate::resource::ResourcePath;
use colock_lockmgr::{LockManager, LockMode, TxnId};
use colock_nf2::{ObjectKey, ObjectRef};
use colock_trace::{rule_scope, RuleTag};
use std::collections::HashSet;

impl ProtocolEngine {
    /// Locks every basic tuple under `target` individually.
    #[allow(clippy::too_many_arguments)]
    pub fn lock_tuple_level(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
    ) -> Result<LockReport, ProtocolError> {
        self.lock_tuple_level_cached(lm, txn, src, authz, target, access, opts, None)
    }

    /// [`ProtocolEngine::lock_tuple_level`] with a per-transaction lock
    /// cache (the database/segment/relation intents repeated per tuple are
    /// where the cache pays off most).
    #[allow(clippy::too_many_arguments)]
    pub fn lock_tuple_level_cached(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        target: &InstanceTarget,
        access: AccessMode,
        opts: ProtocolOptions,
        cache: Option<&TxnLockCache>,
    ) -> Result<LockReport, ProtocolError> {
        self.check_authorized(authz, txn, &target.relation, access)?;
        let mode = Self::target_mode(access);
        let mut ctx = Ctx::with_cache(lm, txn, src, authz, opts, cache);

        let tuples = match &target.object {
            Some(_) => ctx.src.tuples_under(target),
            None => {
                let mut all = Vec::new();
                for key in ctx.src.object_keys(&target.relation) {
                    let obj = InstanceTarget::object(&target.relation, key);
                    all.extend(ctx.src.tuples_under(&obj));
                }
                all
            }
        };
        let mut refs: Vec<ObjectRef> = match &target.object {
            Some(_) => ctx.src.refs_under(target),
            None => ctx.src.refs_in_relation(&target.relation),
        };
        self.lock_tuples(&mut ctx, &tuples, mode)?;

        // Referenced common data: each referenced object's tuples, too —
        // tuple-level locking has no coarser handle for them.
        let mut visited: HashSet<(String, ObjectKey)> = HashSet::new();
        while let Some(r) = refs.pop() {
            if !visited.insert((r.relation.clone(), r.key.clone())) {
                continue;
            }
            let obj = InstanceTarget::object(&r.relation, r.key.clone());
            let tuples = ctx.src.tuples_under(&obj);
            self.lock_tuples(&mut ctx, &tuples, mode)?;
            refs.extend(ctx.src.refs_under(&obj));
        }
        Ok(ctx.finish())
    }

    fn lock_tuples(
        &self,
        ctx: &mut Ctx<'_>,
        tuples: &[InstanceTarget],
        mode: LockMode,
    ) -> Result<(), ProtocolError> {
        for t in tuples {
            let resource = self.resource_for(t)?;
            // Intent locks on database/segment/relation only (three levels),
            // then the tuple itself: System R's flat graph has no
            // complex-object or sub-object granules.
            let intent = mode.required_parent_intent();
            let seg = self.segment_of(&t.relation)?.to_string();
            let db = ResourcePath::database(self.db_name());
            {
                let _rule = rule_scope(RuleTag::TupleIntent);
                ctx.acquire(&db, intent)?;
                ctx.acquire(&db.segment(&seg), intent)?;
                ctx.acquire(&db.segment(&seg).relation(&t.relation), intent)?;
            }
            let _rule = rule_scope(RuleTag::Tuple);
            ctx.acquire(&resource, mode)?;
        }
        Ok(())
    }
}
