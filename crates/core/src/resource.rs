//! Lockable resources: hierarchical instance paths.
//!
//! The paper's lockable units are *instances* of lock-graph nodes: Fig. 7
//! locks "cell c1", "robot r1", "effector e2" — concrete subobjects, not
//! schema nodes. We identify such an instance by the path from the database
//! root down to it: database, segment, relation, complex object (by key),
//! then alternating attribute steps (naming HoLU/HeLU/BLU schema nodes) and
//! element steps (naming set/list elements by their key).
//!
//! `ResourcePath` is the key type of the lock table; every prefix of a path
//! is itself a lockable ancestor, which makes the root-to-leaf lock chains of
//! the protocol (rule 5) a simple prefix walk.

use colock_nf2::ObjectKey;
use colock_testkit::codec::{CodecError, FieldCodec};
use std::fmt;

/// One step of an instance path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathStep {
    /// The database node.
    Database(String),
    /// A segment of the database.
    Segment(String),
    /// A relation within a segment.
    Relation(String),
    /// A complex object of the relation, by key.
    Object(ObjectKey),
    /// An attribute node (HoLU/HeLU/BLU) within the current (sub)tuple.
    Attr(String),
    /// An element of a set/list, by element key.
    Elem(ObjectKey),
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStep::Database(s) => write!(f, "db:{s}"),
            PathStep::Segment(s) => write!(f, "seg:{s}"),
            PathStep::Relation(s) => write!(f, "rel:{s}"),
            PathStep::Object(k) => write!(f, "obj:{k}"),
            PathStep::Attr(s) => write!(f, "{s}"),
            PathStep::Elem(k) => write!(f, "[{k}]"),
        }
    }
}

/// A hierarchical instance path identifying one lockable unit.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourcePath {
    steps: Vec<PathStep>,
}

/// `Debug` delegates to `Display` (`db:db1/seg:seg1/rel:cells/...`): the
/// lock table formats resource keys with `{:?}` in diagnostics and trace
/// events, and the path syntax is the readable form.
impl fmt::Debug for ResourcePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl ResourcePath {
    /// The database root resource.
    pub fn database(name: impl Into<String>) -> Self {
        ResourcePath { steps: vec![PathStep::Database(name.into())] }
    }

    /// Builds a path from raw steps (must start with `Database`).
    pub fn from_steps(steps: Vec<PathStep>) -> Self {
        debug_assert!(matches!(steps.first(), Some(PathStep::Database(_))));
        ResourcePath { steps }
    }

    /// The steps of this path.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Extends by one step.
    pub fn child(&self, step: PathStep) -> Self {
        let mut steps = self.steps.clone();
        steps.push(step);
        ResourcePath { steps }
    }

    /// Convenience: segment child.
    pub fn segment(&self, name: impl Into<String>) -> Self {
        self.child(PathStep::Segment(name.into()))
    }

    /// Convenience: relation child.
    pub fn relation(&self, name: impl Into<String>) -> Self {
        self.child(PathStep::Relation(name.into()))
    }

    /// Convenience: complex-object child.
    pub fn object(&self, key: impl Into<ObjectKey>) -> Self {
        self.child(PathStep::Object(key.into()))
    }

    /// Convenience: attribute child.
    pub fn attr(&self, name: impl Into<String>) -> Self {
        self.child(PathStep::Attr(name.into()))
    }

    /// Convenience: element child.
    pub fn elem(&self, key: impl Into<ObjectKey>) -> Self {
        self.child(PathStep::Elem(key.into()))
    }

    /// The parent resource (one step shorter), or `None` at the database.
    pub fn parent(&self) -> Option<ResourcePath> {
        if self.steps.len() <= 1 {
            None
        } else {
            Some(ResourcePath { steps: self.steps[..self.steps.len() - 1].to_vec() })
        }
    }

    /// All proper ancestors, root first (database, segment, …).
    pub fn ancestors(&self) -> Vec<ResourcePath> {
        (1..self.steps.len())
            .map(|n| ResourcePath { steps: self.steps[..n].to_vec() })
            .collect()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &ResourcePath) -> bool {
        other.steps.len() >= self.steps.len()
            && self.steps.iter().zip(&other.steps).all(|(a, b)| a == b)
    }

    /// The relation name on this path, if the path descends into one.
    pub fn relation_name(&self) -> Option<&str> {
        self.steps.iter().find_map(|s| match s {
            PathStep::Relation(r) => Some(r.as_str()),
            _ => None,
        })
    }

    /// The complex-object key on this path, if any.
    pub fn object_key(&self) -> Option<&ObjectKey> {
        self.steps.iter().find_map(|s| match s {
            PathStep::Object(k) => Some(k),
            _ => None,
        })
    }

    /// The prefix of this path ending at the complex-object step, if present.
    pub fn object_prefix(&self) -> Option<ResourcePath> {
        let idx = self.steps.iter().position(|s| matches!(s, PathStep::Object(_)))?;
        Some(ResourcePath { steps: self.steps[..=idx].to_vec() })
    }

    /// The attribute steps after the complex-object step (schema path within
    /// the object, ignoring element keys).
    pub fn attr_steps(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut past_object = false;
        for s in &self.steps {
            match s {
                PathStep::Object(_) => past_object = true,
                PathStep::Attr(a) if past_object => out.push(a.as_str()),
                _ => {}
            }
        }
        out
    }
}

impl fmt::Display for ResourcePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

// ----- persistence ----------------------------------------------------------
//
// The long-lock journal (`colock-lockmgr`'s `persistent` module) needs the
// lock table's key type to round-trip through a single record field. The
// encoding is the `Display` syntax made unambiguous: each step gets an
// explicit tag (`attr` steps print bare in `Display`), integer object keys
// are tagged `#` so `Str("42")` and `Int(42)` stay distinct, and `%` / `/`
// inside names are percent-escaped so the step separator can never be
// forged by data.

/// Escapes `%` and `/` in a step name for the persisted path syntax.
fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '%' => out.push_str("%25"),
            '/' => out.push_str("%2F"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape_name`].
fn unescape_name(text: &str) -> Result<String, CodecError> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let pair: String = chars.by_ref().take(2).collect();
        match pair.as_str() {
            "25" => out.push('%'),
            "2F" | "2f" => out.push('/'),
            _ => {
                return Err(CodecError::BadField {
                    field: text.to_string(),
                    expected: "percent-escaped path name",
                })
            }
        }
    }
    Ok(out)
}

fn key_field(tag: &str, key: &ObjectKey) -> String {
    match key {
        ObjectKey::Str(s) => format!("{tag}:{}", escape_name(s)),
        ObjectKey::Int(i) => format!("{tag}#{i}"),
    }
}

fn step_field(step: &PathStep) -> String {
    match step {
        PathStep::Database(s) => format!("db:{}", escape_name(s)),
        PathStep::Segment(s) => format!("seg:{}", escape_name(s)),
        PathStep::Relation(s) => format!("rel:{}", escape_name(s)),
        PathStep::Attr(s) => format!("attr:{}", escape_name(s)),
        PathStep::Object(k) => key_field("obj", k),
        PathStep::Elem(k) => key_field("elem", k),
    }
}

fn parse_step(seg: &str) -> Result<PathStep, CodecError> {
    let bad = || CodecError::BadField { field: seg.to_string(), expected: "resource path step" };
    if let Some(rest) = seg.strip_prefix("db:") {
        return Ok(PathStep::Database(unescape_name(rest)?));
    }
    if let Some(rest) = seg.strip_prefix("seg:") {
        return Ok(PathStep::Segment(unescape_name(rest)?));
    }
    if let Some(rest) = seg.strip_prefix("rel:") {
        return Ok(PathStep::Relation(unescape_name(rest)?));
    }
    if let Some(rest) = seg.strip_prefix("attr:") {
        return Ok(PathStep::Attr(unescape_name(rest)?));
    }
    if let Some(rest) = seg.strip_prefix("obj#") {
        return rest.parse().map(|i| PathStep::Object(ObjectKey::Int(i))).map_err(|_| bad());
    }
    if let Some(rest) = seg.strip_prefix("obj:") {
        return Ok(PathStep::Object(ObjectKey::Str(unescape_name(rest)?)));
    }
    if let Some(rest) = seg.strip_prefix("elem#") {
        return rest.parse().map(|i| PathStep::Elem(ObjectKey::Int(i))).map_err(|_| bad());
    }
    if let Some(rest) = seg.strip_prefix("elem:") {
        return Ok(PathStep::Elem(ObjectKey::Str(unescape_name(rest)?)));
    }
    Err(bad())
}

impl FieldCodec for ResourcePath {
    fn to_field(&self) -> String {
        self.steps.iter().map(step_field).collect::<Vec<_>>().join("/")
    }

    fn from_field(field: &str) -> Result<Self, CodecError> {
        let steps: Vec<PathStep> =
            field.split('/').map(parse_step).collect::<Result<_, _>>()?;
        if !matches!(steps.first(), Some(PathStep::Database(_))) {
            return Err(CodecError::BadField {
                field: field.to_string(),
                expected: "resource path starting at db:",
            });
        }
        Ok(ResourcePath { steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn robot_r1() -> ResourcePath {
        ResourcePath::database("db1")
            .segment("seg1")
            .relation("cells")
            .object("c1")
            .attr("robots")
            .elem("r1")
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(robot_r1().to_string(), "db:db1/seg:seg1/rel:cells/obj:c1/robots/[r1]");
    }

    #[test]
    fn ancestors_are_all_prefixes_root_first() {
        let p = robot_r1();
        let anc = p.ancestors();
        assert_eq!(anc.len(), 5);
        assert_eq!(anc[0], ResourcePath::database("db1"));
        assert_eq!(anc[4], p.parent().unwrap());
        for a in &anc {
            assert!(a.is_prefix_of(&p));
            assert!(!p.is_prefix_of(a));
        }
    }

    #[test]
    fn relation_and_object_extraction() {
        let p = robot_r1();
        assert_eq!(p.relation_name(), Some("cells"));
        assert_eq!(p.object_key(), Some(&ObjectKey::Str("c1".into())));
        assert_eq!(
            p.object_prefix().unwrap().to_string(),
            "db:db1/seg:seg1/rel:cells/obj:c1"
        );
        assert_eq!(p.attr_steps(), vec!["robots"]);
    }

    #[test]
    fn database_has_no_parent() {
        assert!(ResourcePath::database("db1").parent().is_none());
        assert!(ResourcePath::database("db1").ancestors().is_empty());
    }

    #[test]
    fn paths_are_value_types() {
        let a = robot_r1();
        let b = robot_r1();
        assert_eq!(a, b);
        let c = a.child(PathStep::Attr("trajectory".into()));
        assert_ne!(a, c);
        assert!(a.is_prefix_of(&c));
        assert_eq!(c.attr_steps(), vec!["robots", "trajectory"]);
    }

    #[test]
    fn field_codec_roundtrips_typical_paths() {
        for p in [
            ResourcePath::database("db1"),
            robot_r1(),
            robot_r1().attr("trajectory"),
            ResourcePath::database("db1").segment("seg1").relation("lib").object(ObjectKey::Int(42)),
        ] {
            let field = p.to_field();
            assert_eq!(ResourcePath::from_field(&field).unwrap(), p, "{field}");
        }
    }

    #[test]
    fn field_codec_distinguishes_int_and_string_keys() {
        let base = ResourcePath::database("db1").segment("s").relation("r");
        let by_int = base.object(ObjectKey::Int(42));
        let by_str = base.object(ObjectKey::Str("42".into()));
        assert_ne!(by_int, by_str);
        assert_ne!(by_int.to_field(), by_str.to_field());
        assert_eq!(ResourcePath::from_field(&by_int.to_field()).unwrap(), by_int);
        assert_eq!(ResourcePath::from_field(&by_str.to_field()).unwrap(), by_str);
    }

    #[test]
    fn field_codec_escapes_separators_in_names() {
        let nasty = ResourcePath::database("d%b")
            .segment("se/g")
            .relation("r%2Fel")
            .object("k/e%y")
            .attr("a/t%tr");
        let field = nasty.to_field();
        assert_eq!(ResourcePath::from_field(&field).unwrap(), nasty, "{field}");
    }

    #[test]
    fn field_codec_rejects_garbage() {
        for bad in [
            "",
            "seg:s/db:d",             // does not start at the database
            "db:d/unknown:x",         // unknown step tag
            "db:d/obj#notanint",      // int tag with non-int key
            "db:d/seg:a%GGb",         // malformed percent escape
            "db:d/seg:trunc%2",       // truncated percent escape
        ] {
            assert!(ResourcePath::from_field(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn elem_keys_distinguish_resources() {
        let r1 = robot_r1();
        let r2 = ResourcePath::database("db1")
            .segment("seg1")
            .relation("cells")
            .object("c1")
            .attr("robots")
            .elem("r2");
        assert_ne!(r1, r2);
        assert_eq!(r1.parent(), r2.parent());
    }
}
