//! Shared fixtures: the paper's running example (Fig. 1 schema, Fig. 6
//! instance) as a catalog plus a static [`InstanceSource`].
//!
//! These are used by doc examples, unit tests and the figure-reproduction
//! binaries; the real [`InstanceSource`] over stored data lives in
//! `colock-storage`.

use crate::protocol::target::{InstanceSource, InstanceTarget, ReverseScan, TargetStep};
use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
use colock_nf2::types::shorthand::*;
use colock_nf2::{Catalog, DatabaseSchema, ObjectKey, ObjectRef};
use std::collections::BTreeMap;

/// The Fig. 1 schema: relations `cells` (seg1) and `effectors` (seg2).
pub fn fig1_schema() -> DatabaseSchema {
    DatabaseBuilder::new("db1")
        .segment("seg1")
        .segment("seg2")
        .relation(
            RelationBuilder::new("cells", "seg1")
                .attr("cell_id", str_())
                .attr(
                    "c_objects",
                    set(tuple(vec![attr("obj_id", str_()), attr("obj_name", str_())])),
                )
                .attr(
                    "robots",
                    list(tuple(vec![
                        attr("robot_id", str_()),
                        attr("trajectory", str_()),
                        attr("effectors", set(ref_("effectors"))),
                    ])),
                )
                .finish(),
        )
        .relation(
            RelationBuilder::new("effectors", "seg2")
                .attr("eff_id", str_())
                .attr("tool", str_())
                .finish(),
        )
        .finish()
        .expect("fig1 schema is valid")
}

/// Catalog over the Fig. 1 schema.
pub fn fig1_catalog() -> Catalog {
    Catalog::new(fig1_schema()).expect("fig1 catalog")
}

/// A static, hand-wired [`InstanceSource`] describing the Fig. 6 instance:
///
/// * cell `c1` with c_objects `o1`…`o{n}` and robots `r1` (using effectors
///   `e1`, `e2`) and `r2` (using `e2`, `e3`),
/// * effectors `e1`, `e2`, `e3` in the library.
#[derive(Debug, Default, Clone)]
pub struct StaticSource {
    /// Ref instances: `(relation, object, step-path to the ref, target)`.
    refs: Vec<(String, ObjectKey, Vec<TargetStep>, ObjectRef)>,
    /// Basic tuples: `(relation, object, step-path of the tuple)`.
    tuples: Vec<(String, ObjectKey, Vec<TargetStep>)>,
    /// Objects per relation.
    objects: BTreeMap<String, Vec<ObjectKey>>,
}

impl StaticSource {
    /// Creates an empty source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a complex object.
    pub fn add_object(&mut self, relation: &str, key: impl Into<ObjectKey>) {
        let key = key.into();
        self.objects.entry(relation.to_string()).or_default().push(key.clone());
        // The object's root tuple.
        self.tuples.push((relation.to_string(), key, Vec::new()));
    }

    /// Registers a basic element tuple within an object.
    pub fn add_tuple(&mut self, relation: &str, key: impl Into<ObjectKey>, steps: Vec<TargetStep>) {
        self.tuples.push((relation.to_string(), key.into(), steps));
    }

    /// Registers a reference instance within an object.
    pub fn add_ref(
        &mut self,
        relation: &str,
        key: impl Into<ObjectKey>,
        steps: Vec<TargetStep>,
        target: ObjectRef,
    ) {
        self.refs.push((relation.to_string(), key.into(), steps, target));
    }

    /// `true` if `prefix` (target steps, possibly with elem narrowing)
    /// matches the beginning of `steps`.
    fn prefix_matches(prefix: &[TargetStep], steps: &[TargetStep]) -> bool {
        if prefix.len() > steps.len() {
            return false;
        }
        prefix.iter().zip(steps).all(|(p, s)| {
            p.attr == s.attr && (p.elem.is_none() || p.elem == s.elem)
        })
    }
}

impl InstanceSource for StaticSource {
    fn refs_under(&self, target: &InstanceTarget) -> Vec<ObjectRef> {
        let Some(key) = &target.object else {
            return self.refs_in_relation(&target.relation);
        };
        self.refs
            .iter()
            .filter(|(rel, k, steps, _)| {
                rel == &target.relation && k == key && Self::prefix_matches(&target.steps, steps)
            })
            .map(|(_, _, _, r)| r.clone())
            .collect()
    }

    fn refs_in_relation(&self, relation: &str) -> Vec<ObjectRef> {
        self.refs
            .iter()
            .filter(|(rel, _, _, _)| rel == relation)
            .map(|(_, _, _, r)| r.clone())
            .collect()
    }

    fn tuples_under(&self, target: &InstanceTarget) -> Vec<InstanceTarget> {
        let Some(key) = &target.object else {
            return Vec::new();
        };
        self.tuples
            .iter()
            .filter(|(rel, k, steps)| {
                rel == &target.relation && k == key && Self::prefix_matches(&target.steps, steps)
            })
            .map(|(rel, k, steps)| InstanceTarget {
                relation: rel.clone(),
                object: Some(k.clone()),
                steps: steps.clone(),
            })
            .collect()
    }

    fn referencing_objects(&self, relation: &str, key: &ObjectKey) -> ReverseScan {
        let referencing = self
            .refs
            .iter()
            .filter(|(_, _, _, r)| r.relation == relation && &r.key == key)
            .map(|(rel, k, steps, _)| {
                // The referencing subobject: the path up to (and including)
                // the last element step before the ref.
                let cut = steps
                    .iter()
                    .rposition(|s| s.elem.is_some())
                    .map(|i| i + 1)
                    .unwrap_or(0);
                InstanceTarget {
                    relation: rel.clone(),
                    object: Some(k.clone()),
                    steps: steps[..cut].to_vec(),
                }
            })
            .collect();
        // The scan must visit every object of every relation that *could*
        // reference the target (no backward pointers exist).
        let objects_scanned = self
            .objects
            .iter()
            .filter(|(rel, _)| {
                self.refs.iter().any(|(r, _, _, t)| r == *rel && t.relation == relation)
            })
            .map(|(_, keys)| keys.len() as u64)
            .sum();
        ReverseScan { referencing, objects_scanned }
    }

    fn object_keys(&self, relation: &str) -> Vec<ObjectKey> {
        self.objects.get(relation).cloned().unwrap_or_default()
    }
}

/// Builds the Fig. 6 instance with `n_objects` c_objects (default example
/// uses 2).
pub fn fig6_source_with(n_objects: usize) -> StaticSource {
    let mut s = StaticSource::new();
    s.add_object("cells", "c1");
    for i in 1..=n_objects {
        s.add_tuple("cells", "c1", vec![TargetStep::elem("c_objects", format!("o{i}"))]);
    }
    for (rid, effs) in [("r1", vec!["e1", "e2"]), ("r2", vec!["e2", "e3"])] {
        s.add_tuple("cells", "c1", vec![TargetStep::elem("robots", rid)]);
        for e in effs {
            s.add_ref(
                "cells",
                "c1",
                vec![TargetStep::elem("robots", rid), TargetStep::attr("effectors")],
                ObjectRef::new("effectors", e),
            );
        }
    }
    for e in ["e1", "e2", "e3"] {
        s.add_object("effectors", e);
    }
    s
}

/// The Fig. 6 instance with two c_objects.
pub fn fig6_source() -> StaticSource {
    fig6_source_with(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_under_robot_r1() {
        let s = fig6_source();
        let t = InstanceTarget::object("cells", "c1").elem("robots", "r1");
        let refs = s.refs_under(&t);
        let keys: Vec<String> = refs.iter().map(|r| r.key.to_string()).collect();
        assert_eq!(keys, vec!["e1", "e2"]);
    }

    #[test]
    fn refs_under_whole_cell() {
        let s = fig6_source();
        let t = InstanceTarget::object("cells", "c1");
        assert_eq!(s.refs_under(&t).len(), 4); // e1,e2 (r1) + e2,e3 (r2)
    }

    #[test]
    fn refs_under_c_objects_is_empty() {
        let s = fig6_source();
        let t = InstanceTarget::object("cells", "c1").attr("c_objects");
        assert!(s.refs_under(&t).is_empty());
    }

    #[test]
    fn tuples_under_cell_counts_all_elements() {
        let s = fig6_source_with(3);
        let t = InstanceTarget::object("cells", "c1");
        // root tuple + 3 c_objects + 2 robots
        assert_eq!(s.tuples_under(&t).len(), 6);
    }

    #[test]
    fn reverse_scan_finds_robots_of_e2() {
        let s = fig6_source();
        let scan = s.referencing_objects("effectors", &ObjectKey::from("e2"));
        let who: Vec<String> = scan.referencing.iter().map(|t| t.to_string()).collect();
        assert_eq!(who, vec!["cells[c1].robots[r1]", "cells[c1].robots[r2]"]);
        // The scan had to visit every cells object.
        assert_eq!(scan.objects_scanned, 1);
    }

    #[test]
    fn reverse_scan_of_unreferenced_is_empty() {
        let s = fig6_source();
        let scan = s.referencing_objects("effectors", &ObjectKey::from("e9"));
        assert!(scan.referencing.is_empty());
    }
}
