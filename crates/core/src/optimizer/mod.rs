//! Determination of "optimal" lock requests (§4.5, \[HDKS89\]).
//!
//! During query analysis — before any data is touched — the optimizer decides
//! for every accessed attribute path *which granule* to lock and *in which
//! mode*, by **anticipating lock escalations**: on object-specific lock
//! graphs, run-time escalations (trading many small locks for one coarse
//! lock) are expensive and deadlock-prone, so whenever the estimated number
//! of fine-granule locks reaches the escalation threshold θ, the coarser
//! granule is requested up front. The result — granule and mode per accessed
//! node — is the *query-specific lock graph*, stored with the query and used
//! at execution time.
//!
//! The companion mechanism of \[HDKS89\] is reconstructed here from the §4.5
//! sketch; θ and the statistics come from the catalog.

pub mod escalation;

use crate::protocol::target::AccessMode;
use colock_lockmgr::LockMode;
use colock_nf2::{AttrPath, Catalog};

/// Estimated data touch of one accessed attribute path of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessEstimate {
    /// Relation accessed.
    pub relation: String,
    /// Accessed node within the object (root path = the object itself).
    pub path: AttrPath,
    /// Read or update.
    pub access: AccessMode,
    /// Expected number of complex objects matching the query's object-level
    /// predicate (1.0 for a key lookup like `cell_id = 'c1'`).
    pub objects_expected: f64,
    /// Expected number of elements matching at `path` *per object* (1.0 for
    /// a key lookup like `robot_id = 'r2'`; the full cardinality for an
    /// unrestricted scan).
    pub elems_expected: f64,
}

impl AccessEstimate {
    /// Access with a single object and single element (fully keyed).
    pub fn keyed(relation: impl Into<String>, path: &str, access: AccessMode) -> Self {
        AccessEstimate {
            relation: relation.into(),
            path: AttrPath::parse(path),
            access,
            objects_expected: 1.0,
            elems_expected: 1.0,
        }
    }
}

/// The granule a planned lock targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// The whole relation.
    Relation,
    /// One complex object as a whole.
    Object,
    /// The named subtree (HoLU/HeLU) within each matching object, as a whole.
    Subtree,
    /// Individual elements/BLUs at the named path.
    Elements,
}

/// One entry of a query-specific lock graph: granule + mode for an accessed
/// node. Concrete keys are bound at execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedLock {
    /// Relation.
    pub relation: String,
    /// Schema path of the node.
    pub path: AttrPath,
    /// Chosen granule.
    pub granularity: Granularity,
    /// Chosen mode for the granule (S or X; the protocol adds intent locks).
    pub mode: LockMode,
    /// Semantic mode for the enclosing set/list container, when the schema
    /// admits one (Member under element reads, Insert/Delete under element
    /// mutations): executed *before* the element lock, it replaces the plain
    /// intent the protocol would otherwise place there, letting distinct-
    /// element operations commute. `None` keeps the classical protocol.
    pub container_mode: Option<LockMode>,
}

/// A query-specific lock graph: the planned lock requests of one query
/// (§4.1: "the granule and mode information is stored within query-specific
/// lock graphs").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LockPlan {
    /// Planned requests, in root-to-leaf order per relation.
    pub locks: Vec<PlannedLock>,
    /// How many run-time escalations the plan anticipated (i.e. decisions to
    /// start coarse instead of escalating later).
    pub anticipated_escalations: u64,
}

impl LockPlan {
    /// Finds the planned lock for a path.
    pub fn lock_for(&self, relation: &str, path: &AttrPath) -> Option<&PlannedLock> {
        self.locks.iter().find(|l| l.relation == relation && &l.path == path)
    }
}

/// The lock-request optimizer.
///
/// ```
/// use colock_core::optimizer::{AccessEstimate, Granularity, Optimizer};
/// use colock_core::fixtures::fig1_catalog;
/// use colock_core::AccessMode;
///
/// let mut catalog = fig1_catalog();
/// catalog.record_cardinality("cells", "c_objects", 500.0);
///
/// // Reading all ~500 c_objects of one cell: the optimizer anticipates the
/// // escalation and plans a single subtree lock instead of 500 element locks.
/// let plan = Optimizer::new(16.0).plan(&catalog, &[AccessEstimate {
///     relation: "cells".into(),
///     path: colock_nf2::AttrPath::parse("c_objects"),
///     access: AccessMode::Read,
///     objects_expected: 1.0,
///     elems_expected: 500.0,
/// }]);
/// assert_eq!(plan.locks[0].granularity, Granularity::Subtree);
/// assert_eq!(plan.anticipated_escalations, 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Optimizer {
    /// Escalation threshold θ: if the expected number of fine-granule locks
    /// reaches θ, the next-coarser granule is requested instead.
    pub theta: f64,
}

impl Default for Optimizer {
    fn default() -> Self {
        // A small θ mirrors real systems where lock-table entries are the
        // scarce resource; experiments sweep it.
        Optimizer { theta: 16.0 }
    }
}

impl Optimizer {
    /// Floor of the adaptive θ sweep: below this, escalation fires on
    /// workloads too small for a coarse lock to ever pay for itself.
    pub const THETA_MIN: f64 = 4.0;
    /// Ceiling of the adaptive θ sweep.
    pub const THETA_MAX: f64 = 1024.0;
    /// p99 lock wait (µs) above which the contended resource counts as hot.
    pub const HOT_WAIT_US: u64 = 5_000;
    /// Fewer recorded waits than this is statistical silence, not evidence.
    pub const MIN_WAITS: u64 = 8;

    /// Creates an optimizer with threshold θ.
    pub fn new(theta: f64) -> Self {
        Optimizer { theta }
    }

    /// Contention-adapted optimizer: replaces the static θ with one derived
    /// from *measured* waits (the PR 3 [`WaitHistogram`]s), per Thomasian's
    /// observation that the right escalation point is a property of the live
    /// contention level, not of the schema:
    ///
    /// * no meaningful waiting observed → escalating costs no concurrency,
    ///   so θ halves (coarse locks early, lock-table entries saved);
    /// * a hot wait tail (p99 ≥ [`Self::HOT_WAIT_US`]) → coarse locks are
    ///   what queues everyone, so θ quadruples (stay fine-grained — the
    ///   de-escalation direction);
    /// * moderate contention → the configured θ stands.
    ///
    /// [`WaitHistogram`]: colock_trace::WaitHistogram
    #[must_use]
    pub fn adapted(self, waits: &colock_trace::WaitHistogram) -> Optimizer {
        let theta = if waits.count() < Self::MIN_WAITS {
            (self.theta / 2.0).max(Self::THETA_MIN)
        } else if waits.quantile_us(0.99) >= Self::HOT_WAIT_US {
            (self.theta * 4.0).min(Self::THETA_MAX)
        } else {
            self.theta
        };
        Optimizer { theta }
    }

    /// Whether measured contention says a held coarse lock should be traded
    /// back for fine ones ([`ProtocolEngine::deescalate`]): the wait tail on
    /// the resource is hot and the sample is large enough to trust.
    ///
    /// [`ProtocolEngine::deescalate`]: crate::protocol::engine::ProtocolEngine::deescalate
    pub fn deescalation_advised(waits: &colock_trace::WaitHistogram) -> bool {
        waits.count() >= Self::MIN_WAITS && waits.quantile_us(0.99) >= Self::HOT_WAIT_US
    }

    /// Whether θ adaptation is switched on: `COLOCK_ADAPTIVE_THETA` decides,
    /// defaulting to the `COLOCK_ADAPTIVE` master switch (any non-empty
    /// value other than `0` enables).
    pub fn adaptive_theta_from_env() -> bool {
        let flag = |name: &str| match std::env::var(name) {
            Ok(v) => Some(!(v.is_empty() || v == "0")),
            Err(_) => None,
        };
        flag("COLOCK_ADAPTIVE_THETA")
            .or_else(|| flag("COLOCK_ADAPTIVE"))
            .unwrap_or(false)
    }

    /// Plans the lock requests for a query's accesses.
    pub fn plan(&self, catalog: &Catalog, accesses: &[AccessEstimate]) -> LockPlan {
        let mut plan = LockPlan::default();
        for a in accesses {
            plan.locks.push(self.plan_one(catalog, a, &mut plan.anticipated_escalations));
        }
        plan
    }

    fn plan_one(
        &self,
        catalog: &Catalog,
        a: &AccessEstimate,
        escalations: &mut u64,
    ) -> PlannedLock {
        let mode = match a.access {
            AccessMode::Read => LockMode::S,
            AccessMode::Update => LockMode::X,
        };
        // Level 1: would per-object locks overflow θ? Then lock the relation.
        if a.objects_expected >= self.theta {
            *escalations += 1;
            return PlannedLock {
                relation: a.relation.clone(),
                path: AttrPath::root(),
                granularity: Granularity::Relation,
                mode,
                container_mode: None,
            };
        }
        // Level 2: the object itself is the target.
        if a.path.is_root() {
            return PlannedLock {
                relation: a.relation.clone(),
                path: AttrPath::root(),
                granularity: Granularity::Object,
                mode,
                container_mode: None,
            };
        }
        // Level 3: elements within the object. `elems_expected` is what the
        // query matches; compare against θ to anticipate the escalation. A
        // second trigger: if the query touches (almost) the whole set anyway
        // — matching ≥ half the catalog's average cardinality — individual
        // locks buy no concurrency, so take the subtree.
        let avg = catalog
            .estimated_instances(&a.relation, &a.path)
            .unwrap_or(a.elems_expected);
        if a.elems_expected >= self.theta
            || (avg >= 1.0 && a.elems_expected >= avg * 0.5 && a.elems_expected > 1.0)
        {
            *escalations += 1;
            return PlannedLock {
                relation: a.relation.clone(),
                path: a.path.clone(),
                granularity: Granularity::Subtree,
                mode,
                container_mode: None,
            };
        }
        PlannedLock {
            relation: a.relation.clone(),
            path: a.path.clone(),
            granularity: Granularity::Elements,
            mode,
            container_mode: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1_catalog;

    fn catalog_with_stats() -> Catalog {
        let mut c = fig1_catalog();
        c.relation_stats_mut("cells").cardinality = 100;
        c.record_cardinality("cells", "robots", 4.0);
        c.record_cardinality("cells", "c_objects", 500.0);
        c
    }

    #[test]
    fn keyed_robot_update_locks_single_element() {
        let c = catalog_with_stats();
        let opt = Optimizer::new(16.0);
        let plan = opt.plan(
            &c,
            &[AccessEstimate::keyed("cells", "robots", AccessMode::Update)],
        );
        let l = &plan.locks[0];
        assert_eq!(l.granularity, Granularity::Elements);
        assert_eq!(l.mode, LockMode::X);
        assert_eq!(plan.anticipated_escalations, 0);
    }

    #[test]
    fn scanning_all_c_objects_escalates_to_subtree() {
        // Q1 of the paper reads *all* c_objects of cell c1: with 500 expected
        // elements, individual locks are hopeless — the optimizer anticipates
        // the escalation and plans one subtree lock.
        let c = catalog_with_stats();
        let opt = Optimizer::new(16.0);
        let plan = opt.plan(
            &c,
            &[AccessEstimate {
                relation: "cells".into(),
                path: AttrPath::parse("c_objects"),
                access: AccessMode::Read,
                objects_expected: 1.0,
                elems_expected: 500.0,
            }],
        );
        let l = &plan.locks[0];
        assert_eq!(l.granularity, Granularity::Subtree);
        assert_eq!(l.mode, LockMode::S);
        assert_eq!(plan.anticipated_escalations, 1);
    }

    #[test]
    fn touching_many_objects_escalates_to_relation() {
        let c = catalog_with_stats();
        let opt = Optimizer::new(16.0);
        let plan = opt.plan(
            &c,
            &[AccessEstimate {
                relation: "cells".into(),
                path: AttrPath::root(),
                access: AccessMode::Read,
                objects_expected: 80.0,
                elems_expected: 1.0,
            }],
        );
        assert_eq!(plan.locks[0].granularity, Granularity::Relation);
    }

    #[test]
    fn majority_of_small_set_takes_subtree() {
        // 3 of 4 robots accessed: individual locks buy nothing.
        let c = catalog_with_stats();
        let opt = Optimizer::new(16.0);
        let plan = opt.plan(
            &c,
            &[AccessEstimate {
                relation: "cells".into(),
                path: AttrPath::parse("robots"),
                access: AccessMode::Read,
                objects_expected: 1.0,
                elems_expected: 3.0,
            }],
        );
        assert_eq!(plan.locks[0].granularity, Granularity::Subtree);
    }

    #[test]
    fn whole_object_checkout_plans_object_granule() {
        let c = catalog_with_stats();
        let opt = Optimizer::default();
        let plan = opt.plan(
            &c,
            &[AccessEstimate {
                relation: "cells".into(),
                path: AttrPath::root(),
                access: AccessMode::Update,
                objects_expected: 1.0,
                elems_expected: 1.0,
            }],
        );
        assert_eq!(plan.locks[0].granularity, Granularity::Object);
        assert_eq!(plan.locks[0].mode, LockMode::X);
    }

    #[test]
    fn theta_sweep_changes_decision() {
        let c = catalog_with_stats();
        let access = AccessEstimate {
            relation: "cells".into(),
            path: AttrPath::parse("c_objects"),
            access: AccessMode::Read,
            objects_expected: 1.0,
            elems_expected: 10.0,
        };
        // θ=16 but 10 < 500*0.5 → elements; θ=8 → subtree.
        let fine = Optimizer::new(16.0).plan(&c, std::slice::from_ref(&access));
        assert_eq!(fine.locks[0].granularity, Granularity::Elements);
        let coarse = Optimizer::new(8.0).plan(&c, &[access]);
        assert_eq!(coarse.locks[0].granularity, Granularity::Subtree);
    }

    #[test]
    fn adaptation_tracks_the_measured_contention() {
        use colock_trace::WaitHistogram;
        let base = Optimizer::new(16.0);

        // Silence: escalate eagerly.
        let quiet = WaitHistogram::default();
        assert_eq!(base.adapted(&quiet).theta, 8.0);
        assert!(!Optimizer::deescalation_advised(&quiet));

        // Hot tail: stay fine-grained.
        let mut hot = WaitHistogram::default();
        for _ in 0..Optimizer::MIN_WAITS {
            hot.record(Optimizer::HOT_WAIT_US * 2);
        }
        assert_eq!(base.adapted(&hot).theta, 64.0);
        assert!(Optimizer::deescalation_advised(&hot));

        // Moderate: the configured θ stands.
        let mut mild = WaitHistogram::default();
        for _ in 0..64 {
            mild.record(100);
        }
        assert_eq!(base.adapted(&mild).theta, 16.0);
        assert!(!Optimizer::deescalation_advised(&mild));
    }

    #[test]
    fn adaptation_clamps_to_the_theta_band() {
        use colock_trace::WaitHistogram;
        let quiet = WaitHistogram::default();
        assert_eq!(Optimizer::new(4.0).adapted(&quiet).theta, Optimizer::THETA_MIN);
        let mut hot = WaitHistogram::default();
        for _ in 0..Optimizer::MIN_WAITS {
            hot.record(Optimizer::HOT_WAIT_US);
        }
        assert_eq!(Optimizer::new(512.0).adapted(&hot).theta, Optimizer::THETA_MAX);
        // Adapting a hot plan changes real decisions: 20 expected elements
        // escalate under the static θ=16 but stay element-granular adapted.
        let c = catalog_with_stats();
        let access = AccessEstimate {
            relation: "cells".into(),
            path: AttrPath::parse("c_objects"),
            access: AccessMode::Read,
            objects_expected: 1.0,
            elems_expected: 20.0,
        };
        let static_plan = Optimizer::new(16.0).plan(&c, std::slice::from_ref(&access));
        assert_eq!(static_plan.locks[0].granularity, Granularity::Subtree);
        let adapted_plan = Optimizer::new(16.0).adapted(&hot).plan(&c, &[access]);
        assert_eq!(adapted_plan.locks[0].granularity, Granularity::Elements);
    }

    #[test]
    fn lock_for_lookup() {
        let c = catalog_with_stats();
        let plan = Optimizer::default().plan(
            &c,
            &[AccessEstimate::keyed("cells", "robots", AccessMode::Update)],
        );
        assert!(plan.lock_for("cells", &AttrPath::parse("robots")).is_some());
        assert!(plan.lock_for("cells", &AttrPath::parse("c_objects")).is_none());
    }
}
