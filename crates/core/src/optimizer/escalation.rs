//! Run-time lock escalation and de-escalation.
//!
//! Escalation (trading many locks on small granules for one lock on a
//! coarser granule, \[Date85\]) is what the §4.5 optimizer tries to *avoid* by
//! anticipation; it is implemented here so experiment E5 can compare the
//! reactive strategy against the anticipating one. De-escalation ("the
//! efficient release of locks", §5) is listed by the paper as future work
//! and implemented as an extension.

use crate::authorization::Authorization;
use crate::protocol::engine::{LockReport, ProtocolEngine, ProtocolError, ProtocolOptions};
use crate::protocol::target::{InstanceSource, InstanceTarget};
use crate::resource::ResourcePath;
use colock_lockmgr::{LockManager, LockMode, TxnId};
use colock_trace::{rule_scope, RuleTag};

impl ProtocolEngine {
    /// Reactive escalation: acquires `mode` on the coarse target (upgrade),
    /// then releases the transaction's finer locks underneath it. Returns the
    /// number of fine locks traded in.
    #[allow(clippy::too_many_arguments)]
    pub fn escalate(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        coarse: &InstanceTarget,
        mode: LockMode,
        opts: ProtocolOptions,
    ) -> Result<(LockReport, usize), ProtocolError> {
        let _rule = rule_scope(RuleTag::Escalation);
        let report = self.lock_proposed_mode(lm, txn, src, authz, coarse, mode, opts)?;
        let coarse_resource = self.resource_for(coarse)?;
        let mut released = 0;
        for (r, _, _) in lm.locks_of(txn) {
            if r != coarse_resource && coarse_resource.is_prefix_of(&r)
                && lm.release(txn, &r) {
                    released += 1;
                }
        }
        Ok((report, released))
    }

    /// De-escalation: the transaction holds `mode` on `coarse` and gives it
    /// up in exchange for the same mode on the listed descendants, so other
    /// transactions can use the rest of the subtree.
    ///
    /// Safety: the fine locks are acquired *while the coarse lock is still
    /// held* (they are trivially grantable to the holder), then the coarse
    /// lock is downgraded to its intent form by release + re-acquire of the
    /// protocol chain — since the chain already carries the intent locks, the
    /// visible effect is just the removal of the coarse S/X.
    #[allow(clippy::too_many_arguments)]
    pub fn deescalate(
        &self,
        lm: &LockManager<ResourcePath>,
        txn: TxnId,
        src: &dyn InstanceSource,
        authz: &Authorization,
        coarse: &InstanceTarget,
        keep: &[InstanceTarget],
        opts: ProtocolOptions,
    ) -> Result<LockReport, ProtocolError> {
        let _rule = rule_scope(RuleTag::Escalation);
        let coarse_resource = self.resource_for(coarse)?;
        let held = lm.held_mode(txn, &coarse_resource);
        debug_assert!(held.allows_read(), "de-escalation requires a held S/X lock");
        let mode = if held.allows_write() { LockMode::X } else { LockMode::S };

        let mut total = LockReport::default();
        for t in keep {
            let r = self.lock_proposed_mode(lm, txn, src, authz, t, mode, opts)?;
            total.acquired.extend(r.acquired);
            total.redundant += r.redundant;
            total.waited += r.waited;
        }
        // Trade the coarse lock away; the ancestor intents stay (they were
        // acquired by the chain of the fine locks too).
        lm.release(txn, &coarse_resource);
        // Keep the intent on the coarse node itself so rules 1–4 still hold
        // for the retained descendants.
        let intent = mode.required_parent_intent();
        lm.acquire(txn, coarse_resource.clone(), intent, colock_lockmgr::LockRequestOptions {
            policy: opts.wait,
            long: opts.long,
        })
        .map_err(ProtocolError::Lock)?;
        total.acquired.push((coarse_resource, intent));
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{fig1_catalog, fig6_source};
    use crate::protocol::target::AccessMode;
    use colock_lockmgr::LockRequestOptions;
    use std::sync::Arc;

    fn setup() -> (ProtocolEngine, LockManager<ResourcePath>, crate::fixtures::StaticSource) {
        (
            ProtocolEngine::new(Arc::new(fig1_catalog())),
            LockManager::new(),
            fig6_source(),
        )
    }

    #[test]
    fn escalation_trades_fine_for_coarse() {
        let (engine, lm, src) = setup();
        let authz = Authorization::allow_all();
        let txn = TxnId(1);
        // Lock two robots individually.
        for r in ["r1", "r2"] {
            engine
                .lock_proposed(
                    &lm,
                    txn,
                    &src,
                    &authz,
                    &InstanceTarget::object("cells", "c1").elem("robots", r),
                    AccessMode::Read,
                    ProtocolOptions::default(),
                )
                .unwrap();
        }
        let robots = InstanceTarget::object("cells", "c1").attr("robots");
        let robots_res = engine.resource_for(&robots).unwrap();
        let (_, released) = engine
            .escalate(&lm, txn, &src, &authz, &robots, LockMode::S, ProtocolOptions::default())
            .unwrap();
        assert_eq!(released, 2, "both robot element locks traded in");
        assert_eq!(lm.held_mode(txn, &robots_res), LockMode::S);
    }

    #[test]
    fn deescalation_releases_coarse_keeps_elements() {
        let (engine, lm, src) = setup();
        // Effectors are a read-only library here: under rule 4' the updater
        // of robot r2 only S-locks the shared effectors, which coexists with
        // t1's S entry-point locks.
        let mut authz = Authorization::allow_all();
        authz.set_relation_default("effectors", crate::authorization::Right::Read);
        let t1 = TxnId(1);
        let robots = InstanceTarget::object("cells", "c1").attr("robots");
        engine
            .lock_proposed(&lm, t1, &src, &authz, &robots, AccessMode::Read, ProtocolOptions::default())
            .unwrap();
        let r1 = InstanceTarget::object("cells", "c1").elem("robots", "r1");
        engine
            .deescalate(&lm, t1, &src, &authz, &robots, std::slice::from_ref(&r1), ProtocolOptions::default())
            .unwrap();
        // Another txn can now X-lock robot r2 (it couldn't before).
        let t2 = TxnId(2);
        let r2 = InstanceTarget::object("cells", "c1").elem("robots", "r2");
        let res = engine.lock_proposed(
            &lm,
            t2,
            &src,
            &authz,
            &r2,
            AccessMode::Update,
            ProtocolOptions::default().try_lock(),
        );
        assert!(res.is_ok(), "{res:?}");
        // But robot r1 stays protected.
        let blocked = engine.lock_proposed(
            &lm,
            t2,
            &src,
            &authz,
            &r1,
            AccessMode::Update,
            ProtocolOptions::default().try_lock(),
        );
        assert!(blocked.is_err());
    }

    #[test]
    fn deescalate_keeps_intents_for_retained_children() {
        let (engine, lm, src) = setup();
        let authz = Authorization::allow_all();
        let t1 = TxnId(1);
        let robots = InstanceTarget::object("cells", "c1").attr("robots");
        engine
            .lock_proposed(&lm, t1, &src, &authz, &robots, AccessMode::Read, ProtocolOptions::default())
            .unwrap();
        engine
            .deescalate(
                &lm,
                t1,
                &src,
                &authz,
                &robots,
                &[InstanceTarget::object("cells", "c1").elem("robots", "r1")],
                ProtocolOptions::default(),
            )
            .unwrap();
        let robots_res = engine.resource_for(&robots).unwrap();
        assert_eq!(lm.held_mode(t1, &robots_res), LockMode::IS);
        let _ = LockRequestOptions::default();
    }
}
