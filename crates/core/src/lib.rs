#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # `colock-core` — the paper's lock technique
//!
//! Implementation of Herrmann, Dadam, Küspert, Roman, Schlageter: *"A Lock
//! Technique for Disjoint and Non-Disjoint Complex Objects"* (EDBT 1990).
//!
//! The crate provides, mirroring the paper's §4:
//!
//! * [`graph`] — the general lock graph (Fig. 4), object-specific lock
//!   graphs derived from NF² schemas by the derivation rules of §4.3
//!   (Fig. 5), and the unit structure — outer/inner units, entry points,
//!   superunits — of §4.4.1 (Fig. 6);
//! * [`resource`] — hierarchical instance paths: the lockable units at the
//!   instance level ("cell c1", "robot r1", "effector e2" of Fig. 7);
//! * [`authorization`] — the access-rights matrix that rule 4′ consults;
//! * [`protocol`] — the proposed lock protocol (§4.4.2, rules 1–5 and 4′)
//!   with implicit upward and downward propagation, plus the three baseline
//!   protocols the paper discusses: XSQL whole-object locking, System R
//!   tuple-level locking and the naive DAG protocol on shared data;
//! * [`optimizer`] — determination of "optimal" lock requests (§4.5) by
//!   anticipation of lock escalations, producing query-specific lock plans;
//!   plus de-escalation (paper's future work, implemented as an extension).
//!
//! ## Quick start
//!
//! ```
//! use colock_core::authorization::Authorization;
//! use colock_core::fixtures::{fig1_catalog, fig6_source};
//! use colock_core::protocol::{AccessMode, InstanceTarget, ProtocolEngine, ProtocolOptions};
//! use colock_lockmgr::{LockManager, TxnId};
//! use std::sync::Arc;
//!
//! let engine = ProtocolEngine::new(Arc::new(fig1_catalog()));
//! let lm = LockManager::new();
//! let src = fig6_source();
//! let mut authz = Authorization::allow_all();
//! authz.set_relation_default("effectors", colock_core::authorization::Right::Read);
//!
//! // Q2 of the paper: update robot r1 of cell c1.
//! let q2 = InstanceTarget::object("cells", "c1").elem("robots", "r1");
//! let report = engine
//!     .lock_proposed(&lm, TxnId(2), &src, &authz, &q2, AccessMode::Update,
//!                    ProtocolOptions::default())
//!     .unwrap();
//! // Robot r1 is X-locked; the shared effectors e1/e2 are S-locked via
//! // implicit downward propagation under rule 4'.
//! assert!(report.render().contains("[r1]: X"));
//! ```

pub mod authorization;
pub mod fixtures;
pub mod graph;
pub mod optimizer;
pub mod protocol;
pub mod resource;

pub use authorization::{Authorization, Right};
pub use graph::{derive_lock_graph, Category, ConceptGraph, DbLockGraph, NodeId, Units};
pub use optimizer::{AccessEstimate, Granularity, LockPlan, Optimizer, PlannedLock};
pub use protocol::{
    AccessMode, InstanceSource, InstanceTarget, LockReport, ProtocolEngine, ProtocolError,
    ProtocolOptions, ReverseScan, TargetStep, TxnLockCache,
};
pub use resource::{PathStep, ResourcePath};
