//! The authorization component (§3.2.3, rule 4′).
//!
//! "A close cooperation of the concurrency control component and the
//! authorization component (which administrates the access rights of all
//! transactions (users)) can drastically increase the degree of concurrency."
//! A unit is called a *(non-)modifiable unit* of a transaction if the
//! transaction has (not) the right to modify it (§4.4.1). Rule 4′ uses this:
//! during downward propagation under an X request, entry points of
//! non-modifiable inner units are locked S instead of X.

use colock_lockmgr::TxnId;
use std::collections::HashMap;

/// Access right of a transaction on a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Right {
    /// No access.
    Deny,
    /// Read-only access.
    Read,
    /// Read and update access.
    #[default]
    Update,
}

/// Access-rights matrix: per-transaction overrides over a default right.
///
/// The default is `Update` (every transaction may do everything), which makes
/// rule 4′ degenerate to rule 4 unless rights are restricted — matching the
/// paper, where the benefit appears exactly when transactions lack update
/// rights on common data (e.g. the effectors library).
#[derive(Debug, Clone, Default)]
pub struct Authorization {
    default_right: Right,
    /// `(txn) -> (relation -> right)`.
    txn_rights: HashMap<TxnId, HashMap<String, Right>>,
    /// Relation-wide defaults (apply to all txns without specific override).
    relation_defaults: HashMap<String, Right>,
}

impl Authorization {
    /// Everything allowed (rule 4′ ≡ rule 4).
    pub fn allow_all() -> Self {
        Authorization::default()
    }

    /// Sets the global default right.
    pub fn with_default(mut self, right: Right) -> Self {
        self.default_right = right;
        self
    }

    /// Sets the default right for one relation (e.g. `effectors` read-only
    /// for everyone).
    pub fn set_relation_default(&mut self, relation: impl Into<String>, right: Right) {
        self.relation_defaults.insert(relation.into(), right);
    }

    /// Grants a specific right to one transaction on one relation.
    pub fn grant(&mut self, txn: TxnId, relation: impl Into<String>, right: Right) {
        self.txn_rights.entry(txn).or_default().insert(relation.into(), right);
    }

    /// The effective right of `txn` on `relation`.
    pub fn right(&self, txn: TxnId, relation: &str) -> Right {
        if let Some(r) = self.txn_rights.get(&txn).and_then(|m| m.get(relation)) {
            return *r;
        }
        if let Some(r) = self.relation_defaults.get(relation) {
            return *r;
        }
        self.default_right
    }

    /// Whether `txn` may modify (units of) `relation`.
    pub fn can_modify(&self, txn: TxnId, relation: &str) -> bool {
        self.right(txn, relation) >= Right::Update
    }

    /// Whether `txn` may read `relation`.
    pub fn can_read(&self, txn: TxnId, relation: &str) -> bool {
        self.right(txn, relation) >= Right::Read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allows_everything() {
        let a = Authorization::allow_all();
        assert!(a.can_modify(TxnId(1), "effectors"));
        assert!(a.can_read(TxnId(1), "effectors"));
    }

    #[test]
    fn relation_default_restricts_all_txns() {
        let mut a = Authorization::allow_all();
        a.set_relation_default("effectors", Right::Read);
        assert!(!a.can_modify(TxnId(1), "effectors"));
        assert!(a.can_read(TxnId(1), "effectors"));
        assert!(a.can_modify(TxnId(1), "cells"));
    }

    #[test]
    fn txn_grant_overrides_relation_default() {
        let mut a = Authorization::allow_all();
        a.set_relation_default("effectors", Right::Read);
        a.grant(TxnId(9), "effectors", Right::Update);
        assert!(a.can_modify(TxnId(9), "effectors"));
        assert!(!a.can_modify(TxnId(8), "effectors"));
    }

    #[test]
    fn deny_blocks_read_too() {
        let mut a = Authorization::allow_all();
        a.grant(TxnId(2), "cells", Right::Deny);
        assert!(!a.can_read(TxnId(2), "cells"));
        assert!(!a.can_modify(TxnId(2), "cells"));
    }

    #[test]
    fn rights_are_ordered() {
        assert!(Right::Update > Right::Read);
        assert!(Right::Read > Right::Deny);
    }
}
