//! The authorization component (§3.2.3, rule 4′).
//!
//! "A close cooperation of the concurrency control component and the
//! authorization component (which administrates the access rights of all
//! transactions (users)) can drastically increase the degree of concurrency."
//! A unit is called a *(non-)modifiable unit* of a transaction if the
//! transaction has (not) the right to modify it (§4.4.1). Rule 4′ uses this:
//! during downward propagation under an X request, entry points of
//! non-modifiable inner units are locked S instead of X.
//!
//! Per-transaction rights are interior-mutable behind an `RwLock` so a
//! long-lived shared `Arc<Authorization>` (the transaction manager holds one)
//! can be updated by a serving layer: `colock-server` grants a session's
//! rights at `BEGIN` and retracts them at end of transaction, giving each
//! connection its own rule 4′ environment without rebuilding the manager.

use colock_lockmgr::TxnId;
use std::collections::HashMap;
use std::sync::{PoisonError, RwLock};

/// Access right of a transaction on a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Right {
    /// No access.
    Deny,
    /// Read-only access.
    Read,
    /// Read and update access.
    #[default]
    Update,
}

/// Access-rights matrix: per-transaction overrides over a default right.
///
/// The default is `Update` (every transaction may do everything), which makes
/// rule 4′ degenerate to rule 4 unless rights are restricted — matching the
/// paper, where the benefit appears exactly when transactions lack update
/// rights on common data (e.g. the effectors library).
#[derive(Debug, Default)]
pub struct Authorization {
    default_right: Right,
    /// `(txn) -> (relation -> right)`. Interior-mutable: grants arrive while
    /// the matrix is shared behind an `Arc` (per-session contexts).
    txn_rights: RwLock<HashMap<TxnId, HashMap<String, Right>>>,
    /// Relation-wide defaults (apply to all txns without specific override).
    relation_defaults: HashMap<String, Right>,
}

impl Clone for Authorization {
    fn clone(&self) -> Self {
        Authorization {
            default_right: self.default_right,
            txn_rights: RwLock::new(
                self.txn_rights.read().unwrap_or_else(PoisonError::into_inner).clone(),
            ),
            relation_defaults: self.relation_defaults.clone(),
        }
    }
}

impl Authorization {
    /// Everything allowed (rule 4′ ≡ rule 4).
    pub fn allow_all() -> Self {
        Authorization::default()
    }

    /// Sets the global default right.
    pub fn with_default(mut self, right: Right) -> Self {
        self.default_right = right;
        self
    }

    /// Sets the default right for one relation (e.g. `effectors` read-only
    /// for everyone).
    pub fn set_relation_default(&mut self, relation: impl Into<String>, right: Right) {
        self.relation_defaults.insert(relation.into(), right);
    }

    /// Grants a specific right to one transaction on one relation. Takes
    /// `&self`: the matrix may already be shared (sessions grant through the
    /// manager's `Arc`).
    pub fn grant(&self, txn: TxnId, relation: impl Into<String>, right: Right) {
        self.txn_rights
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(txn)
            .or_default()
            .insert(relation.into(), right);
    }

    /// Drops every per-transaction override of `txn` (end of transaction —
    /// ids are never reused, so keeping them would leak).
    pub fn retract(&self, txn: TxnId) {
        self.txn_rights.write().unwrap_or_else(PoisonError::into_inner).remove(&txn);
    }

    /// The effective right of `txn` on `relation`.
    pub fn right(&self, txn: TxnId, relation: &str) -> Right {
        if let Some(r) = self
            .txn_rights
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&txn)
            .and_then(|m| m.get(relation))
        {
            return *r;
        }
        if let Some(r) = self.relation_defaults.get(relation) {
            return *r;
        }
        self.default_right
    }

    /// Whether `txn` may modify (units of) `relation`.
    pub fn can_modify(&self, txn: TxnId, relation: &str) -> bool {
        self.right(txn, relation) >= Right::Update
    }

    /// Whether `txn` may read `relation`.
    pub fn can_read(&self, txn: TxnId, relation: &str) -> bool {
        self.right(txn, relation) >= Right::Read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allows_everything() {
        let a = Authorization::allow_all();
        assert!(a.can_modify(TxnId(1), "effectors"));
        assert!(a.can_read(TxnId(1), "effectors"));
    }

    #[test]
    fn relation_default_restricts_all_txns() {
        let mut a = Authorization::allow_all();
        a.set_relation_default("effectors", Right::Read);
        assert!(!a.can_modify(TxnId(1), "effectors"));
        assert!(a.can_read(TxnId(1), "effectors"));
        assert!(a.can_modify(TxnId(1), "cells"));
    }

    #[test]
    fn txn_grant_overrides_relation_default() {
        let mut a = Authorization::allow_all();
        a.set_relation_default("effectors", Right::Read);
        a.grant(TxnId(9), "effectors", Right::Update);
        assert!(a.can_modify(TxnId(9), "effectors"));
        assert!(!a.can_modify(TxnId(8), "effectors"));
    }

    #[test]
    fn deny_blocks_read_too() {
        let a = Authorization::allow_all();
        a.grant(TxnId(2), "cells", Right::Deny);
        assert!(!a.can_read(TxnId(2), "cells"));
        assert!(!a.can_modify(TxnId(2), "cells"));
    }

    #[test]
    fn retract_restores_defaults() {
        let mut a = Authorization::allow_all();
        a.set_relation_default("effectors", Right::Read);
        a.grant(TxnId(4), "effectors", Right::Update);
        assert!(a.can_modify(TxnId(4), "effectors"));
        a.retract(TxnId(4));
        assert!(!a.can_modify(TxnId(4), "effectors"));
        assert!(a.can_read(TxnId(4), "effectors"));
    }

    #[test]
    fn grants_work_through_shared_references() {
        use std::sync::Arc;
        let a = Arc::new(Authorization::allow_all().with_default(Right::Read));
        let b = Arc::clone(&a);
        b.grant(TxnId(3), "cells", Right::Update);
        assert!(a.can_modify(TxnId(3), "cells"));
        let c = (*a).clone();
        assert!(c.can_modify(TxnId(3), "cells"));
    }

    #[test]
    fn rights_are_ordered() {
        assert!(Right::Update > Right::Read);
        assert!(Right::Read > Right::Deny);
    }
}
