//! Lock graphs: the general lock graph (Fig. 4), object-specific lock graphs
//! derived from schemas (Fig. 5), and unit structure (Fig. 6).

pub mod derive;
pub mod display;
pub mod general;
pub mod object;
pub mod units;

pub use derive::derive_lock_graph;
pub use general::{ConceptEdge, ConceptGraph, EdgeKind};
pub use object::{Category, DbLockGraph, Node, NodeId};
pub use units::{UnitKind, Units};
