//! Derivation of object-specific lock graphs from schemas (§4.3).
//!
//! "For each relation, an object-specific lock graph can be constructed by
//! using the general lock graph, catalog information, and simple derivation
//! rules":
//!
//! 1. an attribute of type *list* is transformed to a HoLU,
//! 2. an attribute of type *set* is transformed to a HoLU,
//! 3. an attribute of type *(complex) tuple* is transformed to a HeLU,
//! 4. an atomic attribute of any type is transformed to a BLU.
//!
//! References are BLUs carrying a dashed edge to the complex-object node of
//! the referenced relation. The relation itself is a HoLU of complex objects
//! (its HeLU node, `C.O. "relation"` in Fig. 5); set/list attributes get an
//! element HeLU below the HoLU when their element type is a tuple, exactly as
//! Fig. 5 shows for `c_objects` and `robots`.

use super::object::{Category, DbLockGraph, Node, NodeId, StepKind};
use colock_nf2::{AttrPath, AttrType, Catalog, DatabaseSchema};

fn node(
    name: String,
    category: Category,
    parent: Option<NodeId>,
    relation: Option<&str>,
    attr_path: Option<AttrPath>,
    step: StepKind,
) -> Node {
    Node {
        id: NodeId(0),
        name,
        category,
        parent,
        children: Vec::new(),
        ref_target: None,
        relation: relation.map(str::to_string),
        attr_path,
        step,
    }
}

/// Derives the object-specific lock graphs of all relations of `catalog`'s
/// database, linked below shared database/segment nodes.
pub fn derive_lock_graph(catalog: &Catalog) -> DbLockGraph {
    derive_from_schema(catalog.schema())
}

/// Derives the lock graph directly from a validated schema.
pub fn derive_from_schema(schema: &DatabaseSchema) -> DbLockGraph {
    let mut g = DbLockGraph::new();
    let db = g.push_node(node(
        format!("Database \"{}\"", schema.name),
        Category::Database,
        None,
        None,
        None,
        StepKind::Database,
    ));
    g.set_db_node(db);

    for seg in &schema.segments {
        let seg_id = g.push_node(node(
            format!("Segment \"{}\"", seg.name),
            Category::Segment,
            Some(db),
            None,
            None,
            StepKind::Segment,
        ));
        g.register_segment(&seg.name, seg_id);

        for rel in schema.relations.iter().filter(|r| r.segment == seg.name) {
            // The relation node is a HoLU of complex objects (§4.2).
            let rel_id = g.push_node(node(
                format!("Relation \"{}\"", rel.name),
                Category::Relation,
                Some(seg_id),
                Some(&rel.name),
                None,
                StepKind::Relation,
            ));
            // The complex-object HeLU (`C.O. "cells"` in Fig. 5); for
            // common-data relations this node is the entry point.
            let co_id = g.push_node(node(
                format!("C.O. \"{}\"", rel.name),
                Category::HeLU,
                Some(rel_id),
                Some(&rel.name),
                Some(AttrPath::root()),
                StepKind::Object,
            ));
            g.register_relation(&rel.name, rel_id, co_id);

            for attr in &rel.attributes {
                derive_attr(&mut g, &rel.name, co_id, &attr.name, &attr.ty, AttrPath::root());
            }
        }
    }
    g
}

/// Derives the subtree for one attribute below `parent`.
fn derive_attr(
    g: &mut DbLockGraph,
    relation: &str,
    parent: NodeId,
    name: &str,
    ty: &AttrType,
    parent_path: AttrPath,
) {
    let path = parent_path.child(name);
    match ty {
        // Rule 4: atomic attributes become BLUs.
        AttrType::Atomic(_) => {
            g.push_node(node(
                format!("BLU (\"{name}\")"),
                Category::Blu,
                Some(parent),
                Some(relation),
                Some(path),
                StepKind::Attr,
            ));
        }
        // References become BLUs with a dashed edge to the target's
        // complex-object node (Fig. 5: `BLU ("ref") ----> HeLU (C.O. …)`).
        AttrType::Ref(target) => {
            let id = g.push_node(node(
                format!("BLU (\"ref -> {target}\")"),
                Category::Blu,
                Some(parent),
                Some(relation),
                Some(path),
                StepKind::Attr,
            ));
            set_ref_target(g, id, target);
        }
        // Rules 1 and 2: sets and lists become HoLUs.
        AttrType::Set(elem) | AttrType::List(elem) => {
            let holu = g.push_node(node(
                format!("HoLU (\"{name}\")"),
                Category::HoLU,
                Some(parent),
                Some(relation),
                Some(path.clone()),
                StepKind::Attr,
            ));
            derive_element(g, relation, holu, name, elem, path);
        }
        // Rule 3: complex tuples become HeLUs.
        AttrType::Tuple(fields) => {
            let helu = g.push_node(node(
                format!("HeLU (\"{name}\")"),
                Category::HeLU,
                Some(parent),
                Some(relation),
                Some(path.clone()),
                StepKind::Attr,
            ));
            for f in fields {
                derive_attr(g, relation, helu, &f.name, &f.ty, path.clone());
            }
        }
    }
}

/// Derives the element node below a HoLU.
fn derive_element(
    g: &mut DbLockGraph,
    relation: &str,
    holu: NodeId,
    name: &str,
    elem: &AttrType,
    path: AttrPath,
) {
    match elem {
        // Element tuples become the `C.O. "attr"` HeLU of Fig. 5; its fields
        // hang below it.
        AttrType::Tuple(fields) => {
            let helu = g.push_node(node(
                format!("HeLU (C.O. \"{name}\")"),
                Category::HeLU,
                Some(holu),
                Some(relation),
                Some(path.clone()),
                StepKind::Elem,
            ));
            for f in fields {
                derive_attr(g, relation, helu, &f.name, &f.ty, path.clone());
            }
        }
        // Nested sets/lists: HoLU below HoLU (e.g. a set of lists).
        AttrType::Set(inner) | AttrType::List(inner) => {
            let nested = g.push_node(node(
                format!("HoLU (elem of \"{name}\")"),
                Category::HoLU,
                Some(holu),
                Some(relation),
                Some(path.clone()),
                StepKind::Elem,
            ));
            derive_element(g, relation, nested, name, inner, path);
        }
        // Atomic elements: one BLU stands for the elements (locking an
        // individual atomic set element is possible via an Elem step).
        AttrType::Atomic(_) => {
            g.push_node(node(
                format!("BLU (elem of \"{name}\")"),
                Category::Blu,
                Some(holu),
                Some(relation),
                Some(path),
                StepKind::Elem,
            ));
        }
        // Reference elements: Fig. 5's `BLU ("ref")` below HoLU "effectors".
        AttrType::Ref(target) => {
            let id = g.push_node(node(
                format!("BLU (\"ref -> {target}\")"),
                Category::Blu,
                Some(holu),
                Some(relation),
                Some(path),
                StepKind::Elem,
            ));
            set_ref_target(g, id, target);
        }
    }
}

fn set_ref_target(g: &mut DbLockGraph, id: NodeId, target: &str) {
    g.set_ref_target_internal(id, target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::object::Category;
    use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
    use colock_nf2::types::shorthand::*;

    pub(crate) fn fig1_schema() -> DatabaseSchema {
        DatabaseBuilder::new("db1")
            .segment("seg1")
            .segment("seg2")
            .relation(
                RelationBuilder::new("cells", "seg1")
                    .attr("cell_id", str_())
                    .attr(
                        "c_objects",
                        set(tuple(vec![attr("obj_id", str_()), attr("obj_name", str_())])),
                    )
                    .attr(
                        "robots",
                        list(tuple(vec![
                            attr("robot_id", str_()),
                            attr("trajectory", str_()),
                            attr("effectors", set(ref_("effectors"))),
                        ])),
                    )
                    .finish(),
            )
            .relation(
                RelationBuilder::new("effectors", "seg2")
                    .attr("eff_id", str_())
                    .attr("tool", str_())
                    .finish(),
            )
            .finish()
            .unwrap()
    }

    #[test]
    fn fig5_graph_structure() {
        let g = derive_from_schema(&fig1_schema());
        // Database, 2 segments, 2 relations, 2 CO nodes.
        assert!(g.relation_node("cells").is_some());
        assert!(g.object_node("effectors").is_some());

        let cells_co = g.object_node("cells").unwrap();
        let co = g.node(cells_co);
        assert_eq!(co.category, Category::HeLU);
        // cell_id BLU, c_objects HoLU, robots HoLU below the CO node.
        let child_names: Vec<&str> =
            co.children.iter().map(|&c| g.node(c).name.as_str()).collect();
        assert_eq!(
            child_names,
            vec!["BLU (\"cell_id\")", "HoLU (\"c_objects\")", "HoLU (\"robots\")"]
        );
    }

    #[test]
    fn element_helu_below_holu_as_in_fig5() {
        let g = derive_from_schema(&fig1_schema());
        let robots = g
            .node_for_path("cells", &AttrPath::parse("robots"), false)
            .unwrap();
        assert_eq!(g.node(robots).category, Category::HoLU);
        let robot_elem = g
            .node_for_path("cells", &AttrPath::parse("robots"), true)
            .unwrap();
        let elem = g.node(robot_elem);
        assert_eq!(elem.category, Category::HeLU);
        assert_eq!(elem.name, "HeLU (C.O. \"robots\")");
        assert_eq!(elem.parent, Some(robots));
    }

    #[test]
    fn ref_blu_carries_dashed_edge_to_effectors() {
        let g = derive_from_schema(&fig1_schema());
        let refs = g.ref_blus("cells");
        assert_eq!(refs.len(), 1);
        let blu = g.node(refs[0]);
        assert_eq!(blu.category, Category::Blu);
        assert_eq!(blu.ref_target.as_deref(), Some("effectors"));
        assert_eq!(g.dashed_targets("cells"), vec!["effectors"]);
        assert!(g.dashed_targets("effectors").is_empty());
    }

    #[test]
    fn node_for_path_resolves_blus() {
        let g = derive_from_schema(&fig1_schema());
        let traj = g
            .node_for_path("cells", &AttrPath::parse("robots.trajectory"), false)
            .unwrap();
        assert_eq!(g.node(traj).category, Category::Blu);
        let objname = g
            .node_for_path("cells", &AttrPath::parse("c_objects.obj_name"), false)
            .unwrap();
        assert_eq!(g.node(objname).category, Category::Blu);
        assert!(g.node_for_path("cells", &AttrPath::parse("nope"), false).is_none());
    }

    #[test]
    fn ancestors_chain_is_hierarchical() {
        let g = derive_from_schema(&fig1_schema());
        let traj = g
            .node_for_path("cells", &AttrPath::parse("robots.trajectory"), false)
            .unwrap();
        let chain: Vec<&str> =
            g.ancestors(traj).iter().map(|&id| g.node(id).name.as_str()).collect();
        assert_eq!(
            chain,
            vec![
                "Database \"db1\"",
                "Segment \"seg1\"",
                "Relation \"cells\"",
                "C.O. \"cells\"",
                "HoLU (\"robots\")",
                "HeLU (C.O. \"robots\")",
            ]
        );
    }

    #[test]
    fn every_non_root_node_has_exactly_one_immediate_parent() {
        let g = derive_from_schema(&fig1_schema());
        for n in g.nodes() {
            if n.id == g.db_node() {
                assert!(n.parent.is_none());
            } else {
                assert!(n.parent.is_some(), "{} lacks parent", n.name);
            }
        }
    }

    #[test]
    fn nested_homogeneous_attributes_derive_stacked_holus() {
        // "a set of lists of integers is treated … as a HoLU composed of
        // HoLUs which in turn consist of BLUs" (§4.2).
        let db = DatabaseBuilder::new("db")
            .segment("s")
            .relation(
                RelationBuilder::new("r", "s")
                    .attr("r_id", str_())
                    .attr("grid", set(list(int_())))
                    .finish(),
            )
            .finish()
            .unwrap();
        let g = derive_from_schema(&db);
        let grid = g.node_for_path("r", &AttrPath::parse("grid"), false).unwrap();
        assert_eq!(g.node(grid).category, Category::HoLU);
        let inner = g.node(grid).children[0];
        assert_eq!(g.node(inner).category, Category::HoLU);
        let blu = g.node(inner).children[0];
        assert_eq!(g.node(blu).category, Category::Blu);
    }
}
