//! Units, entry points and superunits (§4.4.1, Fig. 6).
//!
//! * The **outer unit** of an object-specific lock graph: all nodes of
//!   non-shared data between the relation node (inclusive) and the first
//!   nodes (inclusive) referencing common data, plus the parents of the
//!   relation node (segment and database node).
//! * An **inner unit**: the nodes of shared data between the root (inclusive)
//!   of a referenced complex object and the next reference nodes (inclusive)
//!   or the end of the object. Its root is the unit's **entry point**.
//! * The **immediate parent** of a node is the parent reached via a single
//!   solid line. A **superunit** is a unit plus the immediate parents of its
//!   root up to and including the database node.
//! * Units are always disjoint; superunits are not.

use super::object::{DbLockGraph, NodeId};
use colock_nf2::Catalog;
use std::collections::HashSet;

/// Identifies a unit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// The outer unit rooted at a top-level relation.
    Outer {
        /// The relation the outer unit belongs to.
        relation: String,
    },
    /// An inner unit of a common-data relation (per complex object at the
    /// instance level; one schema-level unit per relation here).
    Inner {
        /// The common-data relation holding the unit.
        relation: String,
    },
}

/// Unit structure computed over a [`DbLockGraph`].
#[derive(Debug)]
pub struct Units<'g> {
    graph: &'g DbLockGraph,
    common: HashSet<String>,
}

impl<'g> Units<'g> {
    /// Computes unit structure; `catalog` supplies the common-data
    /// classification.
    pub fn new(graph: &'g DbLockGraph, catalog: &Catalog) -> Self {
        let common = catalog
            .schema()
            .common_data_relations()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        Units { graph, common }
    }

    /// Whether `relation` holds common data (its objects are inner units).
    pub fn is_common_data(&self, relation: &str) -> bool {
        self.common.contains(relation)
    }

    /// Whether `node` is an entry point: the root (complex-object node) of an
    /// inner unit.
    pub fn is_entry_point(&self, node: NodeId) -> bool {
        let n = self.graph.node(node);
        match (&n.relation, &n.attr_path) {
            (Some(rel), Some(p)) => p.is_root() && self.common.contains(rel),
            _ => false,
        }
    }

    /// The entry-point node of a common-data relation.
    pub fn entry_point(&self, relation: &str) -> Option<NodeId> {
        if self.common.contains(relation) {
            self.graph.object_node(relation)
        } else {
            None
        }
    }

    /// The nodes of a relation's *unit* (outer for top-level relations,
    /// inner for common-data relations): its subtree from the complex-object
    /// node down to and including reference BLUs, without crossing dashed
    /// edges. For outer units the relation/segment/database ancestors are
    /// included, per the definition.
    pub fn unit_nodes(&self, relation: &str) -> Vec<NodeId> {
        let Some(co) = self.graph.object_node(relation) else {
            return Vec::new();
        };
        let mut nodes = Vec::new();
        if !self.is_common_data(relation) {
            // Outer unit: relation node plus its parents (segment, database).
            if let Some(rel_node) = self.graph.relation_node(relation) {
                nodes.extend(self.graph.ancestors(rel_node));
                nodes.push(rel_node);
            }
        }
        // Subtree of the complex-object node; dashed edges are not followed,
        // the reference BLUs themselves are included.
        let mut stack = vec![co];
        while let Some(id) = stack.pop() {
            nodes.push(id);
            stack.extend(self.graph.node(id).children.iter().copied());
        }
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The superunit chain of an inner unit's entry point: its immediate
    /// parents up to and including the database node, root first
    /// (database, segment, relation — Fig. 6: "superunit of effector e1").
    pub fn superunit_chain(&self, relation: &str) -> Vec<NodeId> {
        let Some(co) = self.graph.object_node(relation) else {
            return Vec::new();
        };
        self.graph.ancestors(co)
    }

    /// Entry points directly reachable from `relation` via one dashed edge.
    pub fn entry_points_below(&self, relation: &str) -> Vec<(String, NodeId)> {
        self.graph
            .dashed_targets(relation)
            .into_iter()
            .filter_map(|t| self.entry_point(t).map(|n| (t.to_string(), n)))
            .collect()
    }

    /// Verifies the disjointness invariant of units: no node belongs to two
    /// units (used by tests and the F6 reproduction binary).
    pub fn units_are_disjoint(&self) -> bool {
        let mut seen: HashSet<NodeId> = HashSet::new();
        for rel in self.graph.relation_names() {
            let nodes = self.unit_nodes(rel);
            for n in nodes {
                let node = self.graph.node(n);
                // Database/segment nodes are allowed in multiple *outer*
                // units by definition ("plus the parent nodes"); the paper's
                // disjointness claim concerns the data-bearing nodes.
                if node.relation.is_none() {
                    continue;
                }
                if !seen.insert(n) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::derive::derive_from_schema;
    use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
    use colock_nf2::types::shorthand::*;
    use colock_nf2::{AttrPath, Catalog, DatabaseSchema};

    fn fig1_schema() -> DatabaseSchema {
        DatabaseBuilder::new("db1")
            .segment("seg1")
            .segment("seg2")
            .relation(
                RelationBuilder::new("cells", "seg1")
                    .attr("cell_id", str_())
                    .attr(
                        "c_objects",
                        set(tuple(vec![attr("obj_id", str_()), attr("obj_name", str_())])),
                    )
                    .attr(
                        "robots",
                        list(tuple(vec![
                            attr("robot_id", str_()),
                            attr("trajectory", str_()),
                            attr("effectors", set(ref_("effectors"))),
                        ])),
                    )
                    .finish(),
            )
            .relation(
                RelationBuilder::new("effectors", "seg2")
                    .attr("eff_id", str_())
                    .attr("tool", str_())
                    .finish(),
            )
            .finish()
            .unwrap()
    }

    fn setup() -> (DbLockGraph, Catalog) {
        let schema = fig1_schema();
        let catalog = Catalog::new(schema.clone()).unwrap();
        (derive_from_schema(&schema), catalog)
    }

    #[test]
    fn effectors_co_node_is_the_entry_point() {
        let (g, c) = setup();
        let units = Units::new(&g, &c);
        let ep = units.entry_point("effectors").unwrap();
        assert!(units.is_entry_point(ep));
        assert_eq!(g.node(ep).name, "C.O. \"effectors\"");
        // cells is not common data: no entry point.
        assert!(units.entry_point("cells").is_none());
        let cells_co = g.object_node("cells").unwrap();
        assert!(!units.is_entry_point(cells_co));
    }

    #[test]
    fn superunit_of_effector_is_db_seg2_relation() {
        // Fig. 6: node "effector e1" and all its immediate parents up to
        // "Database db1" form a superunit.
        let (g, c) = setup();
        let units = Units::new(&g, &c);
        let chain: Vec<&str> = units
            .superunit_chain("effectors")
            .iter()
            .map(|&id| g.node(id).name.as_str())
            .collect();
        assert_eq!(
            chain,
            vec!["Database \"db1\"", "Segment \"seg2\"", "Relation \"effectors\""]
        );
    }

    #[test]
    fn outer_unit_of_cells_contains_ref_blu_but_not_effectors() {
        let (g, c) = setup();
        let units = Units::new(&g, &c);
        let outer = units.unit_nodes("cells");
        let names: Vec<&str> = outer.iter().map(|&id| g.node(id).name.as_str()).collect();
        assert!(names.contains(&"Database \"db1\""));
        assert!(names.contains(&"Segment \"seg1\""));
        assert!(names.contains(&"Relation \"cells\""));
        assert!(names.contains(&"BLU (\"ref -> effectors\")"));
        // Nothing from the inner unit leaks into the outer unit.
        assert!(!names.iter().any(|n| n.contains("effectors\"") && n.starts_with("C.O.")));
        assert!(!names.contains(&"BLU (\"eff_id\")"));
    }

    #[test]
    fn inner_unit_of_effectors_is_co_subtree_without_ancestry() {
        let (g, c) = setup();
        let units = Units::new(&g, &c);
        let inner = units.unit_nodes("effectors");
        let names: Vec<&str> = inner.iter().map(|&id| g.node(id).name.as_str()).collect();
        assert_eq!(
            names,
            vec!["C.O. \"effectors\"", "BLU (\"eff_id\")", "BLU (\"tool\")"]
        );
    }

    #[test]
    fn units_are_disjoint_on_fig1() {
        let (g, c) = setup();
        let units = Units::new(&g, &c);
        assert!(units.units_are_disjoint());
    }

    #[test]
    fn entry_points_below_cells() {
        let (g, c) = setup();
        let units = Units::new(&g, &c);
        let eps = units.entry_points_below("cells");
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].0, "effectors");
        assert_eq!(eps[0].1, g.object_node("effectors").unwrap());
        assert!(units.entry_points_below("effectors").is_empty());
    }

    #[test]
    fn nested_common_data_chains_inner_units() {
        // parts -> materials: an inner unit referencing a further inner unit.
        let db = DatabaseBuilder::new("db")
            .segment("s")
            .relation(
                RelationBuilder::new("assemblies", "s")
                    .attr("asm_id", str_())
                    .attr("parts", set(ref_("parts")))
                    .finish(),
            )
            .relation(
                RelationBuilder::new("parts", "s")
                    .attr("part_id", str_())
                    .attr("material", ref_("materials"))
                    .finish(),
            )
            .relation(
                RelationBuilder::new("materials", "s")
                    .attr("mat_id", str_())
                    .finish(),
            )
            .finish()
            .unwrap();
        let catalog = Catalog::new(db.clone()).unwrap();
        let g = derive_from_schema(&db);
        let units = Units::new(&g, &catalog);
        assert!(units.is_common_data("parts"));
        assert!(units.is_common_data("materials"));
        assert!(!units.is_common_data("assemblies"));
        let below_parts = units.entry_points_below("parts");
        assert_eq!(below_parts.len(), 1);
        assert_eq!(below_parts[0].0, "materials");
        // The `material` ref BLU is *inside* parts' inner unit.
        let inner = units.unit_nodes("parts");
        let names: Vec<&str> = inner.iter().map(|&id| g.node(id).name.as_str()).collect();
        assert!(names.contains(&"BLU (\"ref -> materials\")"));
    }

    #[test]
    fn path_node_lookup_inside_units() {
        let (g, c) = setup();
        let units = Units::new(&g, &c);
        let robots_holu = g.node_for_path("cells", &AttrPath::parse("robots"), false).unwrap();
        let unit = units.unit_nodes("cells");
        assert!(unit.contains(&robots_holu));
    }
}
