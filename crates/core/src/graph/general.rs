//! The general lock graph (Fig. 4) and the System R / XSQL lock graphs
//! (Fig. 2) as concept-level DAGs.
//!
//! These graphs are *schemas of lock graphs*: they say which categories of
//! lockable units exist and how they may be composed. Fig. 2 (a) and (b) are
//! special cases of the general graph (§4.2): "database" is a HeLU,
//! "segments" as well, "relations" is a HoLU, and tuples are BLUs.

use super::object::Category;

/// Kind of an edge in a lock graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Composition ("contained-in") within non-shared data — solid lines.
    Solid,
    /// Transition into shared data (reference to common data) — dashed lines.
    Dashed,
}

/// One edge of a concept graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConceptEdge {
    /// Index of the parent node.
    pub from: usize,
    /// Index of the child node.
    pub to: usize,
    /// Solid or dashed.
    pub kind: EdgeKind,
}

/// A small concept-level DAG of lockable-unit categories.
#[derive(Debug, Clone)]
pub struct ConceptGraph {
    /// `(name, category)` per node.
    pub nodes: Vec<(String, Category)>,
    /// Edges (parent → child).
    pub edges: Vec<ConceptEdge>,
}

impl ConceptGraph {
    fn node(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|(n, _)| n == name)
    }

    /// The System R lock graph (Fig. 2 (a)): database → segments →
    /// {relations, indexes} → tuples.
    pub fn system_r() -> Self {
        let nodes = vec![
            ("Database".to_string(), Category::Database),
            ("Segments".to_string(), Category::Segment),
            ("Relations".to_string(), Category::Relation),
            ("Indexes".to_string(), Category::HoLU),
            ("Tuples".to_string(), Category::Blu),
        ];
        let edges = vec![
            ConceptEdge { from: 0, to: 1, kind: EdgeKind::Solid },
            ConceptEdge { from: 1, to: 2, kind: EdgeKind::Solid },
            ConceptEdge { from: 1, to: 3, kind: EdgeKind::Solid },
            ConceptEdge { from: 2, to: 4, kind: EdgeKind::Solid },
            ConceptEdge { from: 3, to: 4, kind: EdgeKind::Solid },
        ];
        ConceptGraph { nodes, edges }
    }

    /// The XSQL lock graph (Fig. 2 (b)): System R extended by the granule
    /// "complex object" between relations and tuples.
    pub fn xsql() -> Self {
        let nodes = vec![
            ("Database".to_string(), Category::Database),
            ("Segments".to_string(), Category::Segment),
            ("Relations".to_string(), Category::Relation),
            ("Indexes".to_string(), Category::HoLU),
            ("Complex Objects".to_string(), Category::HeLU),
            ("Tuples".to_string(), Category::Blu),
        ];
        let edges = vec![
            ConceptEdge { from: 0, to: 1, kind: EdgeKind::Solid },
            ConceptEdge { from: 1, to: 2, kind: EdgeKind::Solid },
            ConceptEdge { from: 1, to: 3, kind: EdgeKind::Solid },
            ConceptEdge { from: 2, to: 4, kind: EdgeKind::Solid },
            ConceptEdge { from: 4, to: 5, kind: EdgeKind::Solid },
            ConceptEdge { from: 3, to: 5, kind: EdgeKind::Solid },
        ];
        ConceptGraph { nodes, edges }
    }

    /// The general lock graph for disjoint and non-disjoint complex objects
    /// (Fig. 4): HeLUs and HoLUs composed arbitrarily, BLUs as leaves, and a
    /// dashed edge from a reference BLU back into a HeLU of common data.
    pub fn general() -> Self {
        let nodes = vec![
            ("Heterogeneous Lockable Unit".to_string(), Category::HeLU),
            ("Homogeneous Lockable Unit".to_string(), Category::HoLU),
            ("Basic Lockable Unit".to_string(), Category::Blu),
        ];
        let edges = vec![
            // A HeLU may be composed of HeLUs, HoLUs and BLUs.
            ConceptEdge { from: 0, to: 0, kind: EdgeKind::Solid },
            ConceptEdge { from: 0, to: 1, kind: EdgeKind::Solid },
            ConceptEdge { from: 0, to: 2, kind: EdgeKind::Solid },
            // A HoLU may be composed of HeLUs, HoLUs and BLUs.
            ConceptEdge { from: 1, to: 0, kind: EdgeKind::Solid },
            ConceptEdge { from: 1, to: 1, kind: EdgeKind::Solid },
            ConceptEdge { from: 1, to: 2, kind: EdgeKind::Solid },
            // A BLU may be a reference to common data: dashed transition to
            // the entry HeLU of an independent complex object.
            ConceptEdge { from: 2, to: 0, kind: EdgeKind::Dashed },
        ];
        ConceptGraph { nodes, edges }
    }

    /// Checks that the *solid* part of the graph is acyclic (the dashed
    /// self-loop of the general graph is a schema-level possibility; concrete
    /// object-specific graphs must be acyclic including dashed edges, which
    /// `nf2` schema validation guarantees).
    pub fn solid_part_is_acyclic(&self) -> bool {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in self.edges.iter().filter(|e| e.kind == EdgeKind::Solid) {
            if e.from == e.to {
                return false;
            }
            adj[e.from].push(e.to);
            indeg[e.to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &w in &adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        seen == n
    }

    /// Verifies the structural claim of §4.2: the System R graph is a special
    /// case of the general graph — every node category appears in the general
    /// graph and every solid composition it uses is allowed by the general
    /// graph's composition rules.
    pub fn is_special_case_of_general(&self) -> bool {
        let general = ConceptGraph::general();
        let cat_to_general = |c: Category| match c {
            Category::Database | Category::HeLU => 0usize, // HeLU
            Category::Segment => 0,                        // HeLU (per §4.2)
            Category::Relation | Category::HoLU => 1,      // HoLU
            Category::Blu => 2,
        };
        self.edges.iter().filter(|e| e.kind == EdgeKind::Solid).all(|e| {
            let from = cat_to_general(self.nodes[e.from].1);
            let to = cat_to_general(self.nodes[e.to].1);
            general
                .edges
                .iter()
                .any(|g| g.kind == EdgeKind::Solid && g.from == from && g.to == to)
        })
    }

    /// Children of a node by name (solid edges).
    pub fn solid_children(&self, name: &str) -> Vec<&str> {
        let Some(idx) = self.node(name) else {
            return Vec::new();
        };
        self.edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Solid && e.from == idx)
            .map(|e| self.nodes[e.to].0.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_r_graph_shape_matches_fig2a() {
        let g = ConceptGraph::system_r();
        assert_eq!(g.nodes.len(), 5);
        assert!(g.solid_part_is_acyclic());
        // Tuples are reachable both via relations and via indexes: a DAG,
        // not a tree.
        assert_eq!(g.solid_children("Relations"), vec!["Tuples"]);
        assert_eq!(g.solid_children("Indexes"), vec!["Tuples"]);
    }

    #[test]
    fn xsql_adds_complex_object_between_relations_and_tuples() {
        let g = ConceptGraph::xsql();
        assert_eq!(g.solid_children("Relations"), vec!["Complex Objects"]);
        assert_eq!(g.solid_children("Complex Objects"), vec!["Tuples"]);
        assert!(g.solid_part_is_acyclic());
    }

    #[test]
    fn general_graph_allows_arbitrary_composition() {
        let g = ConceptGraph::general();
        assert!(g.solid_children("Heterogeneous Lockable Unit").len() == 3);
        assert!(g.solid_children("Homogeneous Lockable Unit").len() == 3);
        // BLUs compose nothing via solid edges.
        assert!(g.solid_children("Basic Lockable Unit").is_empty());
        // The dashed edge leaves the BLU into a HeLU (common data).
        let dashed: Vec<_> = g.edges.iter().filter(|e| e.kind == EdgeKind::Dashed).collect();
        assert_eq!(dashed.len(), 1);
        assert_eq!(g.nodes[dashed[0].from].1, Category::Blu);
        assert_eq!(g.nodes[dashed[0].to].1, Category::HeLU);
    }

    #[test]
    fn system_r_and_xsql_are_special_cases_of_the_general_graph() {
        assert!(ConceptGraph::system_r().is_special_case_of_general());
        assert!(ConceptGraph::xsql().is_special_case_of_general());
    }
}
