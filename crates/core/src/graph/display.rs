//! Pretty printers for lock graphs (used by the figure-reproduction
//! binaries).

use super::general::{ConceptGraph, EdgeKind};
use super::object::{DbLockGraph, NodeId};
use crate::resource::ResourcePath;
use colock_lockmgr::{LockManager, TxnId};
use std::fmt::Write;

/// Renders the object-specific lock graph as an indented tree (dashed edges
/// annotated inline), in the style of Fig. 5.
pub fn object_graph_tree(g: &DbLockGraph) -> String {
    let mut out = String::new();
    render(g, g.db_node(), 0, &mut out);
    out
}

fn render(g: &DbLockGraph, id: NodeId, depth: usize, out: &mut String) {
    let n = g.node(id);
    let pad = "  ".repeat(depth);
    match &n.ref_target {
        Some(t) => {
            let _ = writeln!(out, "{pad}{} - - -> C.O. \"{t}\"", n.name);
        }
        None => {
            let _ = writeln!(out, "{pad}{}", n.name);
        }
    }
    for &c in &n.children {
        render(g, c, depth + 1, out);
    }
}

/// Renders a concept graph (Fig. 2 / Fig. 4) as an edge list.
pub fn concept_graph_text(g: &ConceptGraph) -> String {
    let mut out = String::new();
    for (name, cat) in &g.nodes {
        let _ = writeln!(out, "node: {name} [{cat}]");
    }
    for e in &g.edges {
        let arrow = match e.kind {
            EdgeKind::Solid => "-->",
            EdgeKind::Dashed => "- ->",
        };
        let _ = writeln!(out, "{} {} {}", g.nodes[e.from].0, arrow, g.nodes[e.to].0);
    }
    out
}

/// Renders the current lock table in the style of Fig. 7: one line per
/// locked resource, with the per-transaction mode annotations (`Q2: IX;
/// Q3: IX`). Transactions are labelled by the given names, in order.
pub fn render_held_locks(
    lm: &LockManager<ResourcePath>,
    txns: &[(TxnId, &str)],
) -> String {
    let mut resources: Vec<ResourcePath> = Vec::new();
    for (txn, _) in txns {
        for (r, _, _) in lm.locks_of(*txn) {
            if !resources.contains(&r) {
                resources.push(r);
            }
        }
    }
    resources.sort();
    let mut out = String::new();
    for r in resources {
        let annotations: Vec<String> = txns
            .iter()
            .filter_map(|(txn, name)| {
                let mode = lm.held_mode(*txn, &r);
                if mode == colock_lockmgr::LockMode::NL {
                    None
                } else {
                    Some(format!("{name}: {mode}"))
                }
            })
            .collect();
        let _ = writeln!(out, "{r}  [{}]", annotations.join("; "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::derive::derive_from_schema;
    use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
    use colock_nf2::types::shorthand::*;

    #[test]
    fn tree_contains_dashed_annotation() {
        let db = DatabaseBuilder::new("db1")
            .segment("s1")
            .relation(
                RelationBuilder::new("a", "s1")
                    .attr("a_id", str_())
                    .attr("b_ref", ref_("b"))
                    .finish(),
            )
            .relation(RelationBuilder::new("b", "s1").attr("b_id", str_()).finish())
            .finish()
            .unwrap();
        let g = derive_from_schema(&db);
        let txt = object_graph_tree(&g);
        assert!(txt.contains("- - -> C.O. \"b\""), "{txt}");
        assert!(txt.contains("Database \"db1\""));
    }

    #[test]
    fn held_locks_render_like_fig7() {
        use crate::authorization::{Authorization, Right};
        use crate::fixtures::{fig1_catalog, fig6_source};
        use crate::protocol::{AccessMode, InstanceTarget, ProtocolEngine, ProtocolOptions};
        use std::sync::Arc;

        let engine = ProtocolEngine::new(Arc::new(fig1_catalog()));
        let lm = LockManager::new();
        let src = fig6_source();
        let mut authz = Authorization::allow_all();
        authz.set_relation_default("effectors", Right::Read);
        for (txn, robot) in [(TxnId(2), "r1"), (TxnId(3), "r2")] {
            engine
                .lock_proposed(
                    &lm,
                    txn,
                    &src,
                    &authz,
                    &InstanceTarget::object("cells", "c1").elem("robots", robot),
                    AccessMode::Update,
                    ProtocolOptions::default(),
                )
                .unwrap();
        }
        let text = render_held_locks(&lm, &[(TxnId(2), "Q2"), (TxnId(3), "Q3")]);
        assert!(text.contains("[Q2: IX; Q3: IX]"), "{text}");
        assert!(text.contains("obj:e2  [Q2: S; Q3: S]"), "{text}");
        assert!(text.contains("[r1]  [Q2: X]"), "{text}");
    }

    #[test]
    fn concept_text_lists_nodes_and_edges() {
        let txt = concept_graph_text(&ConceptGraph::xsql());
        assert!(txt.contains("Complex Objects"));
        assert!(txt.contains("-->"));
    }
}
