//! Object-specific lock graphs (Fig. 5).
//!
//! The object-specific lock graph of a relation contains the lockable units
//! of that relation; it is constructed automatically from the general lock
//! graph, catalog information and the derivation rules (§4.3). We hold the
//! graphs of *all* relations of a database in one arena ([`DbLockGraph`])
//! because dashed edges cross relations (a reference BLU in `cells` points at
//! the complex-object node of `effectors`).

use colock_nf2::AttrPath;
use std::collections::HashMap;
use std::fmt;

/// Category of a lockable unit (node of the lock graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// The database node.
    Database,
    /// A segment node.
    Segment,
    /// A relation node (a HoLU of complex objects, §4.2).
    Relation,
    /// Heterogeneous lockable unit — a (complex) tuple.
    HeLU,
    /// Homogeneous lockable unit — a set or list.
    HoLU,
    /// Basic lockable unit — an atomic attribute or a reference.
    Blu,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Database => "Database",
            Category::Segment => "Segment",
            Category::Relation => "Relation",
            Category::HeLU => "HeLU",
            Category::HoLU => "HoLU",
            Category::Blu => "BLU",
        };
        f.write_str(s)
    }
}

/// Node identifier within a [`DbLockGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// How a node materializes as a step of an instance
/// [`ResourcePath`](crate::resource::ResourcePath).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// The database step.
    Database,
    /// A segment step.
    Segment,
    /// A relation step.
    Relation,
    /// A complex-object step (requires an object key at instantiation).
    Object,
    /// An attribute step (HoLU/HeLU/BLU named by the attribute).
    Attr,
    /// A set/list element step (requires an element key at instantiation).
    Elem,
}

/// One node of the object-specific lock graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Display name: `Database "db1"`, `HoLU ("robots")`, `BLU ("ref")`, …
    pub name: String,
    /// Category.
    pub category: Category,
    /// Solid ("immediate") parent; `None` only for the database node.
    /// §4.4.1: each node except the root has exactly one immediate parent —
    /// outer and inner units as well as superunits have hierarchical
    /// structure.
    pub parent: Option<NodeId>,
    /// Solid children.
    pub children: Vec<NodeId>,
    /// For a reference BLU: the target relation of its dashed edge.
    pub ref_target: Option<String>,
    /// The relation owning this node (None for database/segment nodes).
    pub relation: Option<String>,
    /// Schema path within the relation (empty = the complex-object node).
    pub attr_path: Option<AttrPath>,
    /// How the node materializes as an instance path step.
    pub step: StepKind,
}

/// The object-specific lock graphs of all relations of one database, plus
/// the shared database/segment ancestry.
#[derive(Debug, Clone)]
pub struct DbLockGraph {
    nodes: Vec<Node>,
    db_node: NodeId,
    segment_nodes: HashMap<String, NodeId>,
    relation_nodes: HashMap<String, NodeId>,
    /// Complex-object (HeLU) node per relation — the root of the relation's
    /// object tree and, for common-data relations, the entry point.
    object_nodes: HashMap<String, NodeId>,
}

impl DbLockGraph {
    pub(crate) fn new() -> Self {
        DbLockGraph {
            nodes: Vec::new(),
            db_node: NodeId(0),
            segment_nodes: HashMap::new(),
            relation_nodes: HashMap::new(),
            object_nodes: HashMap::new(),
        }
    }

    pub(crate) fn push_node(&mut self, mut node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        node.id = id;
        if let Some(p) = node.parent {
            self.nodes[p.0 as usize].children.push(id);
        }
        self.nodes.push(node);
        id
    }

    pub(crate) fn set_db_node(&mut self, id: NodeId) {
        self.db_node = id;
    }

    pub(crate) fn register_segment(&mut self, name: &str, id: NodeId) {
        self.segment_nodes.insert(name.to_string(), id);
    }

    pub(crate) fn register_relation(&mut self, name: &str, rel: NodeId, object: NodeId) {
        self.relation_nodes.insert(name.to_string(), rel);
        self.object_nodes.insert(name.to_string(), object);
    }

    pub(crate) fn set_ref_target_internal(&mut self, id: NodeId, target: &str) {
        self.nodes[id.0 as usize].ref_target = Some(target.to_string());
    }

    /// The node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The database node.
    pub fn db_node(&self) -> NodeId {
        self.db_node
    }

    /// The segment node by name.
    pub fn segment_node(&self, name: &str) -> Option<NodeId> {
        self.segment_nodes.get(name).copied()
    }

    /// The relation node by name.
    pub fn relation_node(&self, name: &str) -> Option<NodeId> {
        self.relation_nodes.get(name).copied()
    }

    /// The complex-object (HeLU) node of a relation.
    pub fn object_node(&self, relation: &str) -> Option<NodeId> {
        self.object_nodes.get(relation).copied()
    }

    /// Registered relation names (sorted).
    pub fn relation_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.relation_nodes.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Chain of solid ancestors of `id`, root (database) first, excluding
    /// `id` itself.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut chain = Vec::new();
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            chain.push(p);
            cur = self.node(p).parent;
        }
        chain.reverse();
        chain
    }

    /// Resolves the node for a schema path within a relation's object tree.
    ///
    /// * the empty path names the complex-object node,
    /// * `robots` names the HoLU,
    /// * `elem_of("robots")` — i.e. `want_element = true` — names the element
    ///   HeLU beneath the HoLU (the `C.O. "robots"` node of Fig. 5),
    /// * `robots.trajectory` names the BLU inside the element tuple.
    pub fn node_for_path(
        &self,
        relation: &str,
        path: &AttrPath,
        want_element: bool,
    ) -> Option<NodeId> {
        let mut cur = self.object_node(relation)?;
        for step in path.steps() {
            // Descend through the (unique) child chain matching the step;
            // element HeLUs are transparent intermediate hops.
            cur = self.descend(cur, step)?;
        }
        if want_element {
            // The element node of a HoLU is its single HeLU/BLU child.
            let node = self.node(cur);
            if node.category == Category::HoLU {
                cur = *node.children.first()?;
            }
        }
        Some(cur)
    }

    fn descend(&self, from: NodeId, step: &str) -> Option<NodeId> {
        let node = self.node(from);
        for &c in &node.children {
            let child = self.node(c);
            if child.step == StepKind::Attr
                && child
                    .attr_path
                    .as_ref()
                    .and_then(|p| p.steps().last())
                    .is_some_and(|s| s == step)
            {
                return Some(c);
            }
            // Step through transparent element nodes (HeLU under HoLU).
            if child.step == StepKind::Elem {
                if let Some(found) = self.descend(c, step) {
                    return Some(found);
                }
            }
        }
        None
    }

    /// All reference BLUs within a relation's object tree.
    pub fn ref_blus(&self, relation: &str) -> Vec<NodeId> {
        let Some(root) = self.object_node(relation) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            if n.ref_target.is_some() {
                out.push(id);
            }
            stack.extend(n.children.iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Relations reachable via dashed edges from `relation` (directly).
    pub fn dashed_targets(&self, relation: &str) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .ref_blus(relation)
            .into_iter()
            .filter_map(|id| self.node(id).ref_target.as_deref())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}
