//! Mutation-style conformance tests.
//!
//! Each `mutant_*` test drives the *real* lock manager (or emits exactly the
//! events a broken lock manager would emit) in a way that violates one
//! §4.4.2 protocol rule, and asserts that the linter reports exactly the
//! expected typed violation. The `conformant_*` tests run unmodified engine
//! paths and assert the linter stays silent — together they show the checks
//! are neither vacuous nor trigger-happy.
//!
//! The trace ring is process-global, so every test serializes on [`RING`]
//! and scopes its assertions to `events_since(mark)`.

use colock_check::{Linter, ViolationKind};
use colock_core::authorization::{Authorization, Right};
use colock_core::fixtures::fig1_catalog;
use colock_core::resource::{PathStep, ResourcePath};
use colock_core::{AccessMode, InstanceTarget};
use colock_lockmgr::{LockManager, LockMode, LockRequestOptions, TxnId};
use colock_nf2::value::build::{list, set, tup};
use colock_nf2::{ObjectKey, Value};
use colock_storage::Store;
use colock_trace::{self as trace, Event, EventKind, RuleTag};
use colock_txn::{ProtocolKind, TransactionManager, TxnKind};
use std::sync::{Arc, Mutex};

static RING: Mutex<()> = Mutex::new(());

/// Serializes ring access, enables tracing, and hands the caller the
/// sequence mark to drain from.
fn with_ring<T>(f: impl FnOnce(u64) -> T) -> T {
    let _guard = RING.lock().unwrap_or_else(|e| e.into_inner());
    trace::enable();
    let mark = trace::current_seq();
    f(mark)
}

fn kinds(report: &colock_check::LintReport) -> Vec<ViolationKind> {
    report.violations.iter().map(|v| v.kind).collect()
}

fn cells_object(key: &str) -> ResourcePath {
    ResourcePath::database("db1")
        .child(PathStep::Segment("seg1".into()))
        .child(PathStep::Relation("cells".into()))
        .child(PathStep::Object(ObjectKey::from(key)))
}

fn begin_short(txn: TxnId) {
    trace::emit(|| Event::new(EventKind::TxnBegin, txn.0).detail("short"));
}

#[test]
fn mutant_skipping_ancestor_intents_is_caught() {
    with_ring(|mark| {
        // A broken protocol layer that grabs the explicit target lock
        // without first intent-locking the path above it (rules 1/2).
        let lm: LockManager<ResourcePath> = LockManager::new();
        let txn = TxnId(7001);
        begin_short(txn);
        {
            let _rule = trace::rule_scope(RuleTag::Target);
            lm.acquire(txn, cells_object("c1"), LockMode::X, LockRequestOptions::default())
                .unwrap();
        }
        let report = Linter::with_catalog(&fig1_catalog()).lint(&trace::events_since(mark));
        assert_eq!(kinds(&report), vec![ViolationKind::MissingAncestorIntent], "{}", report.render());
        assert!(report.violations[0].detail.contains("db:db1"), "{}", report.violations[0]);
    });
}

#[test]
fn mutant_releasing_mid_growth_is_caught() {
    with_ring(|mark| {
        // A broken engine that releases during the growing phase of a short
        // transaction and then keeps acquiring (two-phase discipline).
        let lm: LockManager<ResourcePath> = LockManager::new();
        let txn = TxnId(7002);
        let db = ResourcePath::database("db1");
        begin_short(txn);
        let scope = trace::rule_scope(RuleTag::AncestorIntent);
        lm.acquire(txn, db.clone(), LockMode::IX, LockRequestOptions::default()).unwrap();
        lm.release(txn, &db);
        lm.acquire(txn, db, LockMode::IX, LockRequestOptions::default()).unwrap();
        drop(scope);
        let report = Linter::with_catalog(&fig1_catalog()).lint(&trace::events_since(mark));
        assert_eq!(kinds(&report), vec![ViolationKind::AcquireAfterRelease], "{}", report.render());
    });
}

#[test]
fn mutant_downgrading_conversion_is_caught() {
    with_ring(|mark| {
        // The real lock manager only converts along `join`; emit the exact
        // event stream a lock manager with a downgrade bug would produce.
        let txn = TxnId(7003);
        begin_short(txn);
        trace::emit(|| {
            Event::new(EventKind::Grant, txn.0)
                .resource("db:db1")
                .mode("X")
                .rule(RuleTag::Target)
                .detail("immediate")
        });
        trace::emit(|| {
            Event::new(EventKind::Conversion, txn.0)
                .resource("db:db1")
                .mode("S")
                .detail("X -> S")
        });
        let report = Linter::with_catalog(&fig1_catalog()).lint(&trace::events_since(mark));
        assert_eq!(kinds(&report), vec![ViolationKind::IllegalConversion], "{}", report.render());
    });
}

#[test]
fn mutant_releasing_root_before_leaf_is_caught() {
    with_ring(|mark| {
        // A broken early-release path that walks root-to-leaf (rule 5
        // demands leaf-to-root before EOT).
        let lm: LockManager<ResourcePath> = LockManager::new();
        let txn = TxnId(7004);
        let db = ResourcePath::database("db1");
        let seg = db.clone().child(PathStep::Segment("seg1".into()));
        trace::emit(|| Event::new(EventKind::TxnBegin, txn.0).detail("long"));
        let scope = trace::rule_scope(RuleTag::AncestorIntent);
        lm.acquire(txn, db.clone(), LockMode::IX, LockRequestOptions::default()).unwrap();
        lm.acquire(txn, seg.clone(), LockMode::IX, LockRequestOptions::default()).unwrap();
        drop(scope);
        lm.release(txn, &db);
        lm.release(txn, &seg);
        trace::emit(|| {
            Event::new(EventKind::TxnReleaseEarly, txn.0).resource(format!("{seg:?}"))
        });
        let report = Linter::with_catalog(&fig1_catalog()).lint(&trace::events_since(mark));
        assert_eq!(kinds(&report), vec![ViolationKind::ReleaseOrder], "{}", report.render());
        assert_eq!(report.violations[0].resource, "db:db1");
    });
}

#[test]
fn mutant_detector_without_victim_is_caught() {
    with_ring(|mark| {
        // A detector that reports a live cycle and never resolves it. The
        // later lock-manager event proves the stream continued past the
        // detection with no victim in between.
        trace::emit(|| Event::new(EventKind::DeadlockDetected, 0).detail("T3, T8"));
        trace::emit(|| Event::new(EventKind::Release, 9001).resource("r").mode("X"));
        let report = Linter::new().lint(&trace::events_since(mark));
        assert_eq!(kinds(&report), vec![ViolationKind::MissingVictim], "{}", report.render());
    });
}

// --- conformant engine paths must lint clean -----------------------------

fn populated_store() -> Arc<Store> {
    let store = Arc::new(Store::new(Arc::new(fig1_catalog())));
    for (e, t) in [("e1", "grip"), ("e2", "weld"), ("e3", "drill")] {
        store
            .insert("effectors", tup(vec![("eff_id", Value::str(e)), ("tool", Value::str(t))]))
            .unwrap();
    }
    store
        .insert(
            "cells",
            tup(vec![
                ("cell_id", Value::str("c1")),
                (
                    "c_objects",
                    set(vec![tup(vec![
                        ("obj_id", Value::str("o1")),
                        ("obj_name", Value::str("part")),
                    ])]),
                ),
                (
                    "robots",
                    list(vec![tup(vec![
                        ("robot_id", Value::str("r1")),
                        ("trajectory", Value::str("t1")),
                        (
                            "effectors",
                            set(vec![
                                Value::reference("effectors", "e1"),
                                Value::reference("effectors", "e2"),
                            ]),
                        ),
                    ])]),
                ),
            ]),
        )
        .unwrap();
    store
}

fn robot(r: &str) -> InstanceTarget {
    InstanceTarget::object("cells", "c1").elem("robots", r)
}

#[test]
fn conformant_short_txns_lint_clean() {
    with_ring(|mark| {
        let mut authz = Authorization::allow_all();
        authz.set_relation_default("effectors", Right::Read);
        let store = populated_store();
        let linter = Linter::with_catalog(store.catalog());
        let mgr = TransactionManager::over_store(store, authz, ProtocolKind::Proposed);

        // Update with downward propagation into the shared effectors
        // (rule 4′ weakens their entry points to S), then read them back.
        let t = mgr.begin(TxnKind::Short);
        t.update(&robot("r1").attr("trajectory"), Value::str("t9")).unwrap();
        t.read(&robot("r1")).unwrap();
        t.commit().unwrap();

        // An aborting reader.
        let t = mgr.begin(TxnKind::Short);
        t.read(&InstanceTarget::object("effectors", "e1")).unwrap();
        t.abort().unwrap();

        let events = trace::events_since(mark);
        let report = linter.lint(&events);
        assert!(report.is_clean(), "{}", report.render_with_context(&events));
        assert!(report.grants_checked > 0, "linter saw no grants — tracing broken?");
        assert_eq!(report.txns_checked, 2);
    });
}

#[test]
fn conformant_long_txn_with_early_release_lints_clean() {
    with_ring(|mark| {
        let store = populated_store();
        let linter = Linter::with_catalog(store.catalog());
        let mgr =
            TransactionManager::over_store(store, Authorization::allow_all(), ProtocolKind::Proposed);

        let t = mgr.begin(TxnKind::Long);
        let value = t.checkout(&robot("r1"), AccessMode::Update).unwrap();
        t.checkin(&robot("r1"), value).unwrap();
        t.release_early(&robot("r1")).unwrap();
        t.commit().unwrap();

        let events = trace::events_since(mark);
        let report = linter.lint(&events);
        assert!(report.is_clean(), "{}", report.render_with_context(&events));
    });
}
