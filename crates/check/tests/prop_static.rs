//! Property tests for the static analyzer.
//!
//! Every schema the nf2 builder accepts must derive a lock graph that the
//! analyzer passes, and deliberately mismatched graph/catalog pairs must be
//! rejected with the right typed error.

use colock_check::{check_graph, check_matrix, check_schema, CheckError};
use colock_core::fixtures::fig1_catalog;
use colock_core::graph::derive::derive_from_schema;
use colock_nf2::builder::{DatabaseBuilder, RelationBuilder};
use colock_nf2::types::shorthand::*;
use colock_nf2::{AttrType, Catalog, DatabaseSchema, SegmentSchema};
use colock_testkit::{forall, Rng};

/// A random attribute type of bounded depth. References only point at
/// strictly later relations, which keeps the reference graph acyclic by
/// construction (the paper treats only non-recursive complex objects).
fn random_type(rng: &mut Rng, depth: u32, rel: usize, n_rels: usize, uniq: &mut u32) -> AttrType {
    let can_ref = rel + 1 < n_rels;
    let pick = rng.gen_range(0..if depth == 0 { if can_ref { 3u32 } else { 2 } } else { if can_ref { 6 } else { 5 } });
    match pick {
        0 => str_(),
        1 => int_(),
        2 if can_ref && depth == 0 => ref_(format!("r{}", rng.gen_range(rel + 1..n_rels))),
        2 => set(random_type(rng, depth - 1, rel, n_rels, uniq)),
        3 => list(random_type(rng, depth - 1, rel, n_rels, uniq)),
        4 => {
            let n = rng.gen_range(1..3usize);
            tuple(
                (0..n)
                    .map(|_| {
                        *uniq += 1;
                        attr(&format!("f{uniq}"), random_type(rng, depth - 1, rel, n_rels, uniq))
                    })
                    .collect(),
            )
        }
        _ => ref_(format!("r{}", rng.gen_range(rel + 1..n_rels))),
    }
}

fn random_schema(rng: &mut Rng) -> DatabaseSchema {
    let n_rels = rng.gen_range(2..6usize);
    let mut db = DatabaseBuilder::new("db").segment("sa").segment("sb");
    let mut uniq = 0u32;
    for i in 0..n_rels {
        let name = format!("r{i}");
        let seg = if rng.gen_range(0..2u32) == 0 { "sa" } else { "sb" };
        let mut rel = RelationBuilder::new(&name, seg).attr(format!("{name}_id"), str_());
        for _ in 0..rng.gen_range(0..4u32) {
            uniq += 1;
            let attr_name = format!("a{uniq}");
            let ty = random_type(rng, 2, i, n_rels, &mut uniq);
            rel = rel.attr(&attr_name, ty);
        }
        db = db.relation(rel.finish());
    }
    db.finish().expect("generated schema must validate")
}

#[test]
fn every_buildable_schema_derives_a_clean_graph() {
    forall!(cases: 64, |rng| rng.next_u64(), |&seed| {
        let schema = random_schema(&mut Rng::seed_from_u64(seed));
        let report = check_schema(&schema);
        colock_testkit::ensure!(
            report.is_clean(),
            "schema {:?} failed static analysis:\n{}",
            schema.relations.iter().map(|r| &r.name).collect::<Vec<_>>(),
            report.render()
        );
        colock_testkit::ensure!(report.nodes_checked > 0);
        colock_testkit::ensure!(report.relations_checked == schema.relations.len());
        Ok(())
    });
}

#[test]
fn fig1_graph_is_clean() {
    let catalog = fig1_catalog();
    let graph = colock_core::graph::derive_lock_graph(&catalog);
    let report = check_graph(&graph, &catalog);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.relations_checked, 2);
}

#[test]
fn matrix_laws_hold() {
    assert!(check_matrix().is_empty());
}

/// Every nf2-derivable enlarged compatibility matrix passes the lattice laws.
///
/// A catalog admits the semantic modes only for keyed set/list HoLUs, so the
/// mode set an actual schema puts in play is the classical six plus *some
/// subset* of {Member, Insert, Delete} — which subset depends on the types the
/// schema happens to contain. Each restricted set must itself be a lawful
/// matrix: closed under join, join still the least upper bound within the
/// subset, compatibility symmetric and antitone under `covers`, and every
/// required parent intent representable inside the subset.
#[test]
fn every_nf2_derivable_matrix_passes_the_lattice_laws() {
    use colock_lockmgr::LockMode;
    use colock_testkit::{ensure, ensure_eq};

    // The full enlarged lattice passes the analyzer's own laws first; the
    // restrictions below would be vacuous against a broken base matrix.
    assert!(check_matrix().is_empty());

    let classical =
        [LockMode::NL, LockMode::IS, LockMode::IX, LockMode::S, LockMode::SIX, LockMode::X];
    let semantic = [LockMode::Member, LockMode::Insert, LockMode::Delete];

    forall!(cases: 96, |rng| rng.next_u64(), |&seed| {
        let mut rng = Rng::seed_from_u64(seed);
        // Derive the in-play semantic subset from a random schema exactly the
        // way the planner does: a semantic mode is reachable iff some
        // attribute in the schema admits it. Sets admit Insert/Delete/Member,
        // keyed lists likewise; on odd cases exercise an arbitrary subset
        // directly so sparse schemas don't starve the 3-of-8 combinations.
        let subset: Vec<LockMode> = if rng.gen_range(0..2u32) == 0 {
            let schema = random_schema(&mut rng);
            let any_semantic_holu = schema.relations.iter().any(|r| {
                fn admits_below(t: &colock_nf2::AttrType) -> bool {
                    t.admits_semantic_modes()
                        || t.element().is_some_and(admits_below)
                        || t.fields().is_some_and(|fs| fs.iter().any(|a| admits_below(&a.ty)))
                }
                r.attributes.iter().any(|a| admits_below(&a.ty))
            });
            if any_semantic_holu { semantic.to_vec() } else { vec![] }
        } else {
            semantic.iter().copied().filter(|_| rng.gen_range(0..2u32) == 0).collect()
        };
        let modes: Vec<LockMode> = classical.iter().chain(subset.iter()).copied().collect();

        for &a in &modes {
            // Parent intents stay representable after restriction.
            ensure!(modes.contains(&a.required_parent_intent()));
            for &b in &modes {
                // Compatibility is symmetric.
                ensure_eq!(a.compatible(b), b.compatible(a));
                // The join stays inside the restricted set…
                let j = a.join(b);
                ensure!(modes.contains(&j), "join({a}, {b}) = {j} escapes the subset");
                // …and is still the least upper bound *within* it.
                ensure!(j.covers(a) && j.covers(b));
                for &m in &modes {
                    if m.covers(a) && m.covers(b) {
                        ensure!(m.covers(j), "{m} above {a},{b} but not above join {j}");
                    }
                }
                // Stronger modes conflict at least as much (covers antitone).
                if a.covers(b) {
                    for &c in &modes {
                        ensure!(a.compatible(c) <= b.compatible(c));
                    }
                }
                // Admissible parent announcements never hide a conflict.
                if a.satisfies_parent_intent(b) {
                    for &c in &modes {
                        ensure!(a.compatible(c) <= b.compatible(c));
                    }
                }
            }
        }
        Ok(())
    });
}

fn catalog(schema: DatabaseSchema) -> Catalog {
    Catalog::new(schema).unwrap()
}

fn two_rel_schema(cells_extra: AttrType) -> DatabaseSchema {
    DatabaseBuilder::new("db1")
        .segment("s")
        .relation(
            RelationBuilder::new("cells", "s")
                .attr("cell_id", str_())
                .attr("payload", cells_extra)
                .finish(),
        )
        .relation(
            RelationBuilder::new("effectors", "s")
                .attr("eff_id", str_())
                .finish(),
        )
        .finish()
        .unwrap()
}

#[test]
fn graph_checked_against_wrong_schema_yields_derivation_mismatch() {
    // The graph realizes a set (HoLU); the catalog says the attribute is a
    // tuple (HeLU). An analyzer re-deriving from the schema must disagree.
    let graph = derive_from_schema(&two_rel_schema(set(str_())));
    let wrong = catalog(two_rel_schema(tuple(vec![attr("f", str_())])));
    let report = check_graph(&graph, &wrong);
    assert!(
        report
            .errors
            .iter()
            .any(|e| matches!(e, CheckError::DerivationMismatch { relation, .. } if relation == "cells")),
        "{}",
        report.render()
    );
}

#[test]
fn unreferenced_relation_with_dashed_edge_is_a_common_data_mismatch() {
    // Graph derived from a schema WITH a reference, checked against a
    // catalog WITHOUT it: the dashed edge now points at top-level data.
    let graph = derive_from_schema(&two_rel_schema(ref_("effectors")));
    let wrong = catalog(two_rel_schema(str_()));
    let report = check_graph(&graph, &wrong);
    assert!(
        report.errors.iter().any(|e| matches!(
            e,
            CheckError::CommonDataMismatch { relation, .. } if relation == "effectors"
        )),
        "{}",
        report.render()
    );
}

#[test]
fn missing_dashed_edge_for_common_data_is_flagged() {
    // The mirror image: the catalog says effectors is common data, the
    // graph has no dashed edge reaching it.
    let graph = derive_from_schema(&two_rel_schema(str_()));
    let wrong = catalog(two_rel_schema(ref_("effectors")));
    let report = check_graph(&graph, &wrong);
    assert!(
        report.errors.iter().any(|e| matches!(
            e,
            CheckError::CommonDataMismatch { relation, .. } if relation == "effectors"
        )),
        "{}",
        report.render()
    );
}

#[test]
fn invalid_schema_is_reported_not_panicked() {
    // A reference cycle fails catalog validation; check_schema must turn
    // that into a typed error instead of unwrapping.
    let schema = DatabaseSchema {
        name: "db1".into(),
        segments: vec![SegmentSchema { name: "s".into() }],
        relations: vec![
            RelationBuilder::new("a", "s")
                .attr("a_id", str_())
                .attr("to_b", ref_("b"))
                .finish(),
            RelationBuilder::new("b", "s")
                .attr("b_id", str_())
                .attr("to_a", ref_("a"))
                .finish(),
        ],
    };
    let report = check_schema(&schema);
    assert!(!report.is_clean());
}
