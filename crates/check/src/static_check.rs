//! Static analysis of derived object-specific lock graphs.
//!
//! The derivation in `colock-core` (`graph::derive`) *constructs* lock
//! graphs from schemas; this module *verifies* them with an independent
//! implementation of the same rules, so a regression in either side is
//! caught by the disagreement. Four passes:
//!
//! 1. **Structure** — the solid edges form a tree: one root (the database
//!    node), every other node has exactly one immediate parent, parent and
//!    child lists agree, and no parent chain cycles (§4.4.1).
//! 2. **Derivation rules** (Fig. 5) — re-walks the schema and checks each
//!    attribute against its node: set/list → HoLU, tuple → HeLU, atomic →
//!    BLU, reference → BLU with a dashed edge into the referenced
//!    relation's complex-object node.
//! 3. **Unit soundness** (§4.3) — every common-data relation has exactly
//!    its complex-object node as entry point, the set of dashed-edge
//!    targets equals the set of common-data relations, superunit chains
//!    terminate at the database node, and no data-bearing node belongs to
//!    two units.
//! 4. **Compatibility matrix** — symmetry, NL neutrality, lattice laws of
//!    `join`/`covers`, and strength monotonicity of the GLPT76 matrix.

use colock_core::graph::{Category, DbLockGraph, NodeId, Units};
use colock_lockmgr::LockMode;
use colock_nf2::{AttrPath, AttrType, Catalog, DatabaseSchema};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A well-formedness defect found by the static analyzer. Every variant
/// carries enough context to point at the offending node (rendered as the
/// root-to-node name path) or matrix entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The solid edges do not form a tree rooted at the database node.
    NotATree {
        /// Path to the offending node.
        node: String,
        /// What exactly is broken.
        why: String,
    },
    /// A parent chain revisits a node.
    CycleDetected {
        /// Path (as far as it could be rendered) to the node whose chain
        /// cycles.
        node: String,
    },
    /// A schema attribute and its lock-graph node disagree with the Fig. 5
    /// derivation rules.
    DerivationMismatch {
        /// The relation being checked.
        relation: String,
        /// Schema path of the attribute.
        path: String,
        /// What the derivation rules require there.
        expected: String,
        /// What the graph actually holds.
        found: String,
    },
    /// A reference BLU's dashed edge points at a relation with no
    /// complex-object node.
    DanglingRef {
        /// Path to the reference BLU.
        node: String,
        /// The missing target relation.
        target: String,
    },
    /// A dashed edge lands in a relation the catalog does not classify as
    /// common data (or a common-data relation is never referenced).
    CommonDataMismatch {
        /// The relation whose classification disagrees.
        relation: String,
        /// What disagrees.
        why: String,
    },
    /// A common-data relation lacks an entry point, or its entry point is
    /// not its complex-object node.
    BadEntryPoint {
        /// The common-data relation.
        relation: String,
        /// What is wrong with its entry point.
        why: String,
    },
    /// A superunit chain does not start at the database node.
    SuperunitNotRooted {
        /// The relation whose chain is broken.
        relation: String,
        /// The chain as rendered node names.
        chain: Vec<String>,
    },
    /// A data-bearing node belongs to two units.
    UnitsOverlap {
        /// Path to the shared node.
        node: String,
        /// The first unit claiming it.
        first: String,
        /// The second unit claiming it.
        second: String,
    },
    /// A compatibility-matrix or mode-lattice law fails.
    MatrixViolation {
        /// The law that failed.
        law: &'static str,
        /// The witnessing modes.
        detail: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::NotATree { node, why } => write!(f, "not a tree at {node}: {why}"),
            CheckError::CycleDetected { node } => {
                write!(f, "parent chain of {node} contains a cycle")
            }
            CheckError::DerivationMismatch { relation, path, expected, found } => write!(
                f,
                "derivation mismatch in `{relation}` at `{path}`: expected {expected}, found {found}"
            ),
            CheckError::DanglingRef { node, target } => {
                write!(f, "dashed edge from {node} dangles: relation `{target}` has no C.O. node")
            }
            CheckError::CommonDataMismatch { relation, why } => {
                write!(f, "common-data classification of `{relation}` disagrees: {why}")
            }
            CheckError::BadEntryPoint { relation, why } => {
                write!(f, "entry point of `{relation}`: {why}")
            }
            CheckError::SuperunitNotRooted { relation, chain } => write!(
                f,
                "superunit chain of `{relation}` does not start at the database node: [{}]",
                chain.join(" / ")
            ),
            CheckError::UnitsOverlap { node, first, second } => {
                write!(f, "node {node} belongs to two units: {first} and {second}")
            }
            CheckError::MatrixViolation { law, detail } => {
                write!(f, "matrix law `{law}` fails: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Result of a static analysis run.
#[derive(Debug, Clone, Default)]
pub struct StaticReport {
    /// Every defect found, in pass order.
    pub errors: Vec<CheckError>,
    /// Nodes visited by the structure pass.
    pub nodes_checked: usize,
    /// Relations walked by the derivation pass.
    pub relations_checked: usize,
}

impl StaticReport {
    /// Whether the graph passed every check.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// One line per defect (empty string when clean).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.errors {
            let _ = writeln!(out, "static check: {e}");
        }
        out
    }
}

/// Root-to-node name path, e.g.
/// `Database "db1" / Segment "seg1" / Relation "cells" / C.O. "cells"`.
fn node_path(graph: &DbLockGraph, id: NodeId) -> String {
    let mut names: Vec<&str> = Vec::new();
    let mut cur = Some(id);
    let mut hops = 0;
    while let Some(n) = cur {
        names.push(graph.node(n).name.as_str());
        cur = graph.node(n).parent;
        hops += 1;
        if hops > graph.len() {
            names.push("…cycle…");
            break;
        }
    }
    names.reverse();
    names.join(" / ")
}

/// Runs all four passes over a derived graph and its catalog.
pub fn check_graph(graph: &DbLockGraph, catalog: &Catalog) -> StaticReport {
    let mut report = StaticReport::default();
    check_structure(graph, &mut report);
    check_derivation(graph, catalog.schema(), &mut report);
    check_units(graph, catalog, &mut report);
    report.errors.extend(check_matrix());
    report
}

/// Convenience: derives the graph from a validated schema, then checks it.
pub fn check_schema(schema: &DatabaseSchema) -> StaticReport {
    let catalog = match Catalog::new(schema.clone()) {
        Ok(c) => c,
        Err(e) => {
            let mut report = StaticReport::default();
            report.errors.push(CheckError::CommonDataMismatch {
                relation: schema.name.clone(),
                why: format!("schema did not validate: {e}"),
            });
            return report;
        }
    };
    let graph = colock_core::graph::derive_lock_graph(&catalog);
    check_graph(&graph, &catalog)
}

/// Pass 1: solid edges form a tree rooted at the database node.
fn check_structure(graph: &DbLockGraph, report: &mut StaticReport) {
    report.nodes_checked = graph.len();
    for node in graph.nodes() {
        if node.id == graph.db_node() {
            if node.parent.is_some() {
                report.errors.push(CheckError::NotATree {
                    node: node_path(graph, node.id),
                    why: "the database node has a parent".into(),
                });
            }
        } else if node.parent.is_none() {
            report.errors.push(CheckError::NotATree {
                node: node_path(graph, node.id),
                why: "non-root node without an immediate parent (§4.4.1)".into(),
            });
        }
        // Parent/child agreement in both directions.
        if let Some(p) = node.parent {
            if !graph.node(p).children.contains(&node.id) {
                report.errors.push(CheckError::NotATree {
                    node: node_path(graph, node.id),
                    why: format!("missing from the child list of {}", graph.node(p).name),
                });
            }
        }
        for &c in &node.children {
            if graph.node(c).parent != Some(node.id) {
                report.errors.push(CheckError::NotATree {
                    node: node_path(graph, c),
                    why: format!("listed as child of {} but has another parent", node.name),
                });
            }
        }
        // Acyclicity of the parent chain.
        let mut cur = node.parent;
        let mut hops = 0;
        while let Some(p) = cur {
            hops += 1;
            if hops > graph.len() {
                report.errors.push(CheckError::CycleDetected { node: node_path(graph, node.id) });
                break;
            }
            cur = graph.node(p).parent;
        }
    }
}

/// Pass 2: re-derive each relation from the schema and compare categories.
fn check_derivation(graph: &DbLockGraph, schema: &DatabaseSchema, report: &mut StaticReport) {
    for rel in &schema.relations {
        report.relations_checked += 1;
        let mismatch = |path: &AttrPath, expected: &str, found: String| CheckError::DerivationMismatch {
            relation: rel.name.clone(),
            path: if path.is_root() { "<object root>".into() } else { path.steps().join(".") },
            expected: expected.into(),
            found,
        };
        let Some(rel_id) = graph.relation_node(&rel.name) else {
            report.errors.push(mismatch(&AttrPath::root(), "a Relation node", "nothing".into()));
            continue;
        };
        let rel_node = graph.node(rel_id);
        if rel_node.category != Category::Relation {
            report.errors.push(mismatch(
                &AttrPath::root(),
                "category Relation",
                rel_node.category.to_string(),
            ));
        }
        // The relation hangs below its segment, which hangs below the root.
        let seg_ok = rel_node.parent == graph.segment_node(&rel.segment)
            && rel_node
                .parent
                .is_some_and(|s| graph.node(s).parent == Some(graph.db_node()));
        if !seg_ok {
            report.errors.push(mismatch(
                &AttrPath::root(),
                &format!("ancestry database / segment `{}`", rel.segment),
                node_path(graph, rel_id),
            ));
        }
        let Some(co_id) = graph.object_node(&rel.name) else {
            report.errors.push(mismatch(&AttrPath::root(), "a C.O. (HeLU) node", "nothing".into()));
            continue;
        };
        let co = graph.node(co_id);
        if co.category != Category::HeLU || co.parent != Some(rel_id) {
            report.errors.push(mismatch(
                &AttrPath::root(),
                "a HeLU complex-object node below the relation node",
                format!("{} below {:?}", co.category, co.parent.map(|p| &graph.node(p).name)),
            ));
        }
        // Children of the C.O. node must match the attributes 1:1, in order.
        check_children(graph, rel, co_id, &rel.attributes, AttrPath::root(), report);
    }
}

/// Checks that `parent`'s children realize exactly `attrs` (Fig. 5 rules).
fn check_children(
    graph: &DbLockGraph,
    rel: &colock_nf2::RelationSchema,
    parent: NodeId,
    attrs: &[colock_nf2::Attribute],
    parent_path: AttrPath,
    report: &mut StaticReport,
) {
    let children = &graph.node(parent).children;
    if children.len() != attrs.len() {
        report.errors.push(CheckError::DerivationMismatch {
            relation: rel.name.clone(),
            path: if parent_path.is_root() {
                "<object root>".into()
            } else {
                parent_path.steps().join(".")
            },
            expected: format!("{} child node(s)", attrs.len()),
            found: format!("{}", children.len()),
        });
        return;
    }
    for (&child, attr) in children.iter().zip(attrs) {
        check_attr_node(graph, rel, child, &attr.name, &attr.ty, parent_path.clone(), report);
    }
}

/// Checks one attribute node (and its subtree) against its schema type.
fn check_attr_node(
    graph: &DbLockGraph,
    rel: &colock_nf2::RelationSchema,
    id: NodeId,
    name: &str,
    ty: &AttrType,
    parent_path: AttrPath,
    report: &mut StaticReport,
) {
    let path = parent_path.child(name);
    let node = graph.node(id);
    let mut mismatch = |expected: &str, found: String| {
        report.errors.push(CheckError::DerivationMismatch {
            relation: rel.name.clone(),
            path: path.steps().join("."),
            expected: expected.into(),
            found,
        });
    };
    if node.attr_path.as_ref() != Some(&path) {
        mismatch(
            "a node labelled with the attribute's schema path",
            format!("path {:?}", node.attr_path),
        );
        return;
    }
    match ty {
        // Rule 4: atomic attributes are BLUs (leaves, no dashed edge).
        AttrType::Atomic(_) => {
            if node.category != Category::Blu || !node.children.is_empty() || node.ref_target.is_some()
            {
                mismatch("a leaf BLU (rule 4)", describe_node(graph, id));
            }
        }
        // References: BLU + dashed edge to the target's C.O. node.
        AttrType::Ref(target) => {
            if node.category != Category::Blu || !node.children.is_empty() {
                mismatch("a leaf BLU carrying a dashed edge", describe_node(graph, id));
            }
            check_ref_edge(graph, id, target, report);
        }
        // Rules 1/2: sets and lists are HoLUs with one element node below.
        AttrType::Set(elem) | AttrType::List(elem) => {
            if node.category != Category::HoLU {
                mismatch("a HoLU (rules 1/2)", describe_node(graph, id));
                return;
            }
            if node.children.len() != 1 {
                mismatch("exactly one element node below the HoLU", describe_node(graph, id));
                return;
            }
            check_element_node(graph, rel, node.children[0], elem, path.clone(), report);
        }
        // Rule 3: complex tuples are HeLUs with one child per field.
        AttrType::Tuple(fields) => {
            if node.category != Category::HeLU {
                mismatch("a HeLU (rule 3)", describe_node(graph, id));
                return;
            }
            check_children(graph, rel, id, fields, path.clone(), report);
        }
    }
}

/// Checks the element node below a HoLU.
fn check_element_node(
    graph: &DbLockGraph,
    rel: &colock_nf2::RelationSchema,
    id: NodeId,
    elem: &AttrType,
    path: AttrPath,
    report: &mut StaticReport,
) {
    let node = graph.node(id);
    let mut mismatch = |expected: &str, found: String| {
        report.errors.push(CheckError::DerivationMismatch {
            relation: rel.name.clone(),
            path: format!("{}[]", path.steps().join(".")),
            expected: expected.into(),
            found,
        });
    };
    match elem {
        AttrType::Tuple(fields) => {
            if node.category != Category::HeLU {
                mismatch("an element HeLU (C.O. node of Fig. 5)", describe_node(graph, id));
                return;
            }
            check_children(graph, rel, id, fields, path.clone(), report);
        }
        AttrType::Set(inner) | AttrType::List(inner) => {
            if node.category != Category::HoLU || node.children.len() != 1 {
                mismatch("a nested HoLU with one element node", describe_node(graph, id));
                return;
            }
            check_element_node(graph, rel, node.children[0], inner, path, report);
        }
        AttrType::Atomic(_) => {
            if node.category != Category::Blu || !node.children.is_empty() || node.ref_target.is_some()
            {
                mismatch("an element BLU", describe_node(graph, id));
            }
        }
        AttrType::Ref(target) => {
            if node.category != Category::Blu || !node.children.is_empty() {
                mismatch("an element reference BLU", describe_node(graph, id));
            }
            check_ref_edge(graph, id, target, report);
        }
    }
}

fn describe_node(graph: &DbLockGraph, id: NodeId) -> String {
    let node = graph.node(id);
    format!(
        "{} `{}` with {} child(ren){}",
        node.category,
        node_path(graph, id),
        node.children.len(),
        match &node.ref_target {
            Some(t) => format!(", dashed edge to `{t}`"),
            None => String::new(),
        }
    )
}

/// A reference BLU's dashed edge must name the schema's target and land on
/// an existing complex-object node.
fn check_ref_edge(graph: &DbLockGraph, id: NodeId, target: &str, report: &mut StaticReport) {
    let node = graph.node(id);
    match node.ref_target.as_deref() {
        Some(t) if t == target => {
            if graph.object_node(target).is_none() {
                report.errors.push(CheckError::DanglingRef {
                    node: node_path(graph, id),
                    target: target.to_string(),
                });
            }
        }
        other => {
            report.errors.push(CheckError::DerivationMismatch {
                relation: node.relation.clone().unwrap_or_default(),
                path: node.attr_path.as_ref().map(|p| p.steps().join(".")).unwrap_or_default(),
                expected: format!("a dashed edge to `{target}`"),
                found: match other {
                    Some(t) => format!("a dashed edge to `{t}`"),
                    None => "no dashed edge".into(),
                },
            });
        }
    }
}

/// Pass 3: units, entry points and superunits (§4.3).
fn check_units(graph: &DbLockGraph, catalog: &Catalog, report: &mut StaticReport) {
    let units = Units::new(graph, catalog);
    let common: HashSet<String> = catalog
        .schema()
        .common_data_relations()
        .iter()
        .map(|r| r.name.clone())
        .collect();

    // Dashed-edge targets across the whole graph must be exactly the
    // common-data relations: inner units have exactly the entry points
    // reachable via dashed edges, and nothing else is an inner unit.
    let mut dashed_targets: HashSet<&str> = HashSet::new();
    for rel in graph.relation_names() {
        dashed_targets.extend(graph.dashed_targets(rel));
    }
    for t in &dashed_targets {
        if !common.contains(*t) {
            report.errors.push(CheckError::CommonDataMismatch {
                relation: t.to_string(),
                why: "a dashed edge points here, but the catalog calls it top-level data".into(),
            });
        }
    }
    for c in &common {
        if !dashed_targets.contains(c.as_str()) {
            report.errors.push(CheckError::CommonDataMismatch {
                relation: c.clone(),
                why: "classified as common data, but no dashed edge reaches it".into(),
            });
        }
    }

    for rel in graph.relation_names() {
        if common.contains(rel) {
            // Entry point: exactly the complex-object node.
            match units.entry_point(rel) {
                None => report.errors.push(CheckError::BadEntryPoint {
                    relation: rel.to_string(),
                    why: "common-data relation without an entry point".into(),
                }),
                Some(ep) => {
                    if Some(ep) != graph.object_node(rel) || !units.is_entry_point(ep) {
                        report.errors.push(CheckError::BadEntryPoint {
                            relation: rel.to_string(),
                            why: format!(
                                "entry point is {} rather than the relation's C.O. node",
                                node_path(graph, ep)
                            ),
                        });
                    }
                }
            }
            // Superunit chain: immediate parents up to and including the
            // database node, root first.
            let chain = units.superunit_chain(rel);
            if chain.first() != Some(&graph.db_node()) {
                report.errors.push(CheckError::SuperunitNotRooted {
                    relation: rel.to_string(),
                    chain: chain.iter().map(|&id| graph.node(id).name.clone()).collect(),
                });
            }
        } else if units.entry_point(rel).is_some() {
            report.errors.push(CheckError::BadEntryPoint {
                relation: rel.to_string(),
                why: "top-level relation must not have an entry point".into(),
            });
        }
    }

    // Unit disjointness over data-bearing nodes (database/segment nodes are
    // shared by definition — "plus the parent nodes").
    let mut owner: HashMap<NodeId, String> = HashMap::new();
    for rel in graph.relation_names() {
        let unit = if common.contains(rel) {
            format!("inner unit `{rel}`")
        } else {
            format!("outer unit `{rel}`")
        };
        for id in units.unit_nodes(rel) {
            if graph.node(id).relation.is_none() {
                continue;
            }
            if let Some(first) = owner.insert(id, unit.clone()) {
                if first != unit {
                    report.errors.push(CheckError::UnitsOverlap {
                        node: node_path(graph, id),
                        first,
                        second: unit.clone(),
                    });
                }
            }
        }
    }
}

/// Pass 4: sanity of the compatibility matrix and mode lattice. This is
/// schema-independent, so it can also be run on its own.
pub fn check_matrix() -> Vec<CheckError> {
    use LockMode::*;
    let mut errors = Vec::new();
    let all = [NL, IS, Member, Insert, Delete, IX, S, SIX, X];
    let real = LockMode::ALL;

    for &a in &all {
        for &b in &all {
            if a.compatible(b) != b.compatible(a) {
                errors.push(CheckError::MatrixViolation {
                    law: "symmetry",
                    detail: format!("{a} vs {b}"),
                });
            }
            if a.join(b) != b.join(a) {
                errors.push(CheckError::MatrixViolation {
                    law: "join commutativity",
                    detail: format!("{a} join {b}"),
                });
            }
            for &c in &all {
                if a.join(b).join(c) != a.join(b.join(c)) {
                    errors.push(CheckError::MatrixViolation {
                        law: "join associativity",
                        detail: format!("({a}, {b}, {c})"),
                    });
                }
            }
        }
        if !a.compatible(NL) || a.join(NL) != a || a.join(a) != a {
            errors.push(CheckError::MatrixViolation {
                law: "NL neutrality / idempotence",
                detail: a.to_string(),
            });
        }
    }
    // covers() must be the partial order induced by join.
    for &a in &all {
        for &b in &all {
            if a.covers(b) != (a.join(b) == a) {
                errors.push(CheckError::MatrixViolation {
                    law: "covers is the join order",
                    detail: format!("{a} covers {b}"),
                });
            }
        }
    }
    // Strength monotonicity: a stronger mode conflicts with a superset of
    // what a weaker mode conflicts with (IS/IX/S/SIX/X lattice).
    for &weak in &real {
        for &strong in &real {
            if !strong.covers(weak) {
                continue;
            }
            for &c in &real {
                if strong.compatible(c) && !weak.compatible(c) {
                    errors.push(CheckError::MatrixViolation {
                        law: "strength monotonicity",
                        detail: format!("{weak} <= {strong} but {weak} !~ {c} while {strong} ~ {c}"),
                    });
                }
            }
            // Parent intents must be monotone too (rules 1–4 stay satisfied
            // when a mode is strengthened).
            if !strong.required_parent_intent().covers(weak.required_parent_intent()) {
                errors.push(CheckError::MatrixViolation {
                    law: "parent-intent monotonicity",
                    detail: format!("{weak} <= {strong}"),
                });
            }
        }
        // Implicit descendant locks are covered by the lock itself.
        if !weak.covers(weak.implicit_descendant()) {
            errors.push(CheckError::MatrixViolation {
                law: "implicit descendant covered",
                detail: weak.to_string(),
            });
        }
        // Intention modes lock nothing themselves.
        if weak.is_intent() && (weak.allows_read() || weak.allows_write()) {
            errors.push(CheckError::MatrixViolation {
                law: "intent modes grant no access",
                detail: weak.to_string(),
            });
        }
    }
    // Semantic commutativity modes: each row must equal its classical
    // archetype's row — Member reads like IS, Insert/Delete write like IX —
    // so every matrix argument about the classical modes carries over
    // (rule 4′ in particular: role separation reasons about conflict rows,
    // and the semantic rows introduce no new conflict shape).
    for &m in &all {
        let archetype = match m {
            Member => Some(IS),
            Insert | Delete => Some(IX),
            _ => None,
        };
        if let Some(arch) = archetype {
            for &c in &all {
                if m.compatible(c) != arch.compatible(c) {
                    errors.push(CheckError::MatrixViolation {
                        law: "semantic row equals classical row",
                        detail: format!("{m} vs {c} (archetype {arch})"),
                    });
                }
            }
        }
    }
    // Ancestor-intent admissibility must refine covers soundly: whenever a
    // held mode satisfies a required parent intent, its conflict set must
    // contain the intent's — descendant activity stays as visible to
    // conflicting requests as under the classical protocol.
    for &held in &all {
        for &req in &all {
            if !held.satisfies_parent_intent(req) {
                continue;
            }
            for &c in &all {
                if !req.compatible(c) && held.compatible(c) {
                    errors.push(CheckError::MatrixViolation {
                        law: "parent-intent admissibility refines covers",
                        detail: format!("{held} admits for {req} but hides conflict with {c}"),
                    });
                }
            }
        }
    }
    // Fast-path lanes must exist exactly for the intent modes and be
    // conflict-faithful: every conflict of the published mode is visible as
    // a conflict of its lane, so lane-based summary admission never hides a
    // real conflict.
    for &m in &all {
        if m.fastpath_lane().is_some() != m.is_intent() {
            errors.push(CheckError::MatrixViolation {
                law: "fastpath lanes cover exactly the intents",
                detail: m.to_string(),
            });
        }
        if let Some(lane) = m.fastpath_lane() {
            for &c in &all {
                if !m.compatible(c) && lane.compatible(c) {
                    errors.push(CheckError::MatrixViolation {
                        law: "fastpath lane is conflict-faithful",
                        detail: format!("{m} conflicts with {c}, lane {lane} does not"),
                    });
                }
            }
        }
    }
    // The summary word's two real-grant classes partition the non-intent,
    // non-NL modes; intent modes (semantic ones included) belong to neither.
    for &m in &all {
        let classes = (m.is_share_class() as u8) + (m.is_exclusive_class() as u8);
        let expected = if m == NL || m.is_intent() { 0 } else { 1 };
        if classes != expected {
            errors.push(CheckError::MatrixViolation {
                law: "summary classes partition non-intent modes",
                detail: m.to_string(),
            });
        }
    }
    errors
}
