//! Trace serializability certification.
//!
//! The [`lint`](crate::lint) module replays the §4.4.2 protocol rules per
//! transaction; this module proves the property those rules exist for:
//! **conflict serializability of the whole trace**. It reconstructs the
//! serialization (conflict) graph from a recorded event stream and runs
//! cycle detection — an acyclic graph certifies the run equivalent to some
//! serial order, independently of *how* the engine scheduled it.
//!
//! # Edge rules
//!
//! Nodes are committed transaction incarnations (a `TxnBegin` re-using an id
//! starts a new incarnation; aborted or unfinished transactions are excluded,
//! as classical serializability theory prescribes — their effects are undone).
//! Grants open per-`(txn, resource)` lock *instances*, releases close them, a
//! conversion re-grant closes the old instance and opens one in the joined
//! mode. Two instances of different transactions **conflict** when their
//! lock-mode footprints collide under the multi-granularity interpretation:
//!
//! - equal resource: the modes are incompatible (`!m1.compatible(m2)`);
//! - strict ancestor A over descendant D: the ancestor's *implicit*
//!   descendant mode collides (`!mA.implicit_descendant().compatible(mD)`) —
//!   S/SIX imply S below, X implies X below, intents imply nothing. This is
//!   exactly why distinct-element `Insert`/`Insert` grants on one container
//!   commute (no edge: `Insert` implies nothing below and the element X
//!   locks land on different paths), while a same-element collision
//!   materializes as X-vs-S on that element's path and produces an edge.
//!
//! A conflict where the earlier instance was released before the later grant
//! orders the two transactions (edge *earlier → later*). Instances still
//! open at the later grant *overlap*, and fall into three cases:
//!
//! - the prior holder had already entered its **release phase** (its first
//!   release precedes the grant and none of its grants follow that first
//!   release): `release_all` at commit drops locks shard by shard, so a
//!   conflicting grant can legally land between the holder's ancestor-intent
//!   releases and its remaining descendant releases. The holder is past its
//!   lock point, so the overlap is ordered *prior → new*. Conversion
//!   closures do not count as releases here — a conversion ends the
//!   old-mode instance while the lock is still held, squarely inside the
//!   growing phase (the engine guarantees the other half of the evidence:
//!   an optimistic release is traced *before* the summary decrement that
//!   admits a rival, so a traced first release never lags the grants it
//!   enabled);
//! - **optimistic** (fast-path) instances publish by summary CAS and emit
//!   their `Grant` events outside any ordering with a rival's pessimistic
//!   decision, so their trace positions are unreliable against conflicting
//!   grants; the overlap adds only the *earlier → later* edge. That is an
//!   under-approximation (it can miss a cycle a truly broken fast path
//!   would create, never invent one), and the differential suite covers
//!   the fast path independently;
//! - any other pessimistic overlap means the manager granted **through a
//!   live conflict**: edges are added in *both* directions, forcing a cycle
//!   (a certification failure — this is how a broken compatibility matrix,
//!   e.g. write skew under commuting semantic modes, is caught even when
//!   every per-transaction rule holds).
//!
//! # MVCC reads
//!
//! Snapshot readers never appear in the lock table, so lock instances cannot
//! order them. They are ordered by **version timestamp** instead: a
//! `SnapshotRead` at snapshot ts *T* of an object root takes a reads-from
//! edge from every committed writer of that root whose commit ts ≤ *T*. No
//! anti-dependency edge is drawn to later writers the reader did not
//! observe: the snapshot protocol serializes the reader before them by
//! construction, and adding only reads-from edges leaves readers with no
//! outgoing edges at all — a snapshot reader can never be part of a cycle,
//! which is precisely PR 7's zero-wait guarantee restated graph-side.
//!
//! # Cooperative (rule 5) cycles
//!
//! Long transactions release targets early by design (§4.4.2 rule 5): the
//! paper trades strict serializability for cooperative design sessions.
//! A cycle whose members include a long (or crash-recovered, or
//! before-window) transaction is therefore reported as a **cooperative
//! advisory**, not a violation; only cycles made entirely of short and
//! snapshot transactions fail certification.

use crate::lint::{involves_txn, is_strict_ancestor, parse_mode, strict_ancestors};
use colock_lockmgr::LockMode;
use colock_trace::{dot_escape, explain, Event, EventKind};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::ops::Bound;

/// One committed transaction incarnation — a node of the conflict graph.
///
/// Managers number transactions independently, so a trace spanning a server
/// restart legitimately re-uses ids; each `TxnBegin` after the first bumps
/// the incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnNode {
    /// Raw transaction id as traced.
    pub txn: u64,
    /// 0 for the first appearance of the id inside the window.
    pub incarnation: u32,
}

impl fmt::Display for TxnNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.incarnation == 0 {
            write!(f, "T{}", self.txn)
        } else {
            write!(f, "T{}#{}", self.txn, self.incarnation)
        }
    }
}

/// How a node's transaction was begun — decides cycle classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeClass {
    /// Begun `short` or `readonly-locking` inside the window: full 2PL.
    Short,
    /// Begun `long`, or crash-recovered: rule 5 early release applies.
    Long,
    /// Begun `readonly` (MVCC snapshot reader): zero locks.
    Snapshot,
    /// Began before the window opened — its early history is unknown, so a
    /// cycle through it cannot be blamed on the engine.
    Unknown,
}

/// One conflict-graph edge, anchored to the event that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictEdge {
    /// Serialized-before endpoint.
    pub from: TxnNode,
    /// Serialized-after endpoint.
    pub to: TxnNode,
    /// Sequence number of the grant / read that created the edge.
    pub seq: u64,
    /// Human-readable conflict description.
    pub why: String,
}

/// A strongly connected component of size ≥ 2: a serialization cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictCycle {
    /// The cycle members, ascending.
    pub members: Vec<TxnNode>,
    /// Whether a long / recovered / before-window member makes this a rule 5
    /// cooperative advisory rather than a violation.
    pub cooperative: bool,
    /// Every recorded edge between two members, by `seq`.
    pub edges: Vec<ConflictEdge>,
}

impl ConflictCycle {
    /// Graphviz rendering of the cycle: members as red ellipses (orange for
    /// cooperative advisories), one labelled edge per recorded conflict.
    pub fn to_dot(&self) -> String {
        let color = if self.cooperative { "orange" } else { "red" };
        let mut out = String::from("digraph conflict_cycle {\n  rankdir=LR;\n");
        for m in &self.members {
            out.push_str(&format!("  \"{m}\" [color={color}];\n"));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                e.from,
                e.to,
                dot_escape(&e.why)
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Result of a certification run.
#[derive(Debug, Clone, Default)]
pub struct CertifyReport {
    /// Events examined.
    pub events_seen: usize,
    /// Committed transaction incarnations (conflict-graph nodes).
    pub txns_committed: usize,
    /// Grant events replayed into lock instances.
    pub grants_replayed: usize,
    /// Snapshot reads ordered by version timestamp.
    pub reads_checked: usize,
    /// Distinct conflict edges between committed nodes.
    pub edges: usize,
    /// Events whose mode/detail could not be interpreted.
    pub malformed: usize,
    /// Every strongly connected component of size ≥ 2, violations first.
    pub cycles: Vec<ConflictCycle>,
}

impl CertifyReport {
    /// Whether the trace is conflict serializable (no non-cooperative
    /// cycle). Cooperative advisories do not fail certification.
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// Cycles made entirely of short/snapshot transactions: real
    /// serializability violations.
    pub fn violations(&self) -> impl Iterator<Item = &ConflictCycle> {
        self.cycles.iter().filter(|c| !c.cooperative)
    }

    /// Rule 5 cooperative cycles (long / recovered / before-window member).
    pub fn advisories(&self) -> impl Iterator<Item = &ConflictCycle> {
        self.cycles.iter().filter(|c| c.cooperative)
    }

    /// One line per cycle plus a summary line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for c in &self.cycles {
            let kind = if c.cooperative { "cooperative cycle" } else { "VIOLATION" };
            let members =
                c.members.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(", ");
            let _ = writeln!(out, "[{kind}] cycle of {{{members}}}:");
            for e in c.edges.iter().take(16) {
                let _ = writeln!(out, "  {} -> {} (seq={}): {}", e.from, e.to, e.seq, e.why);
            }
            if c.edges.len() > 16 {
                let _ = writeln!(out, "  … {} more edge(s)", c.edges.len() - 16);
            }
        }
        let _ = writeln!(
            out,
            "certified {} event(s): {} committed txn(s), {} grant(s), {} snapshot read(s), \
             {} edge(s): {} violation(s), {} cooperative cycle(s)",
            self.events_seen,
            self.txns_committed,
            self.grants_replayed,
            self.reads_checked,
            self.edges,
            self.violations().count(),
            self.advisories().count(),
        );
        out
    }

    /// [`CertifyReport::render`] followed by, per violating cycle, the
    /// explain timeline of its members and the DOT export — a cycle can be
    /// read in full context.
    pub fn render_with_context(&self, events: &[Event]) -> String {
        use std::fmt::Write;
        let mut out = self.render();
        for c in self.cycles.iter().filter(|c| !c.cooperative) {
            let ids: HashSet<u64> = c.members.iter().map(|m| m.txn).collect();
            let scoped: Vec<Event> = events
                .iter()
                .filter(|e| ids.contains(&e.txn) || ids.iter().any(|&t| involves_txn(e, t)))
                .cloned()
                .collect();
            let members =
                c.members.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(", ");
            let _ = writeln!(out, "--- timeline of cycle {{{members}}} ---");
            out.push_str(&explain::render_timeline(&explain::timeline(&scoped)));
            out.push_str(&c.to_dot());
        }
        out
    }
}

/// All nine modes, indexable by [`mode_idx`].
const MODES: [LockMode; 9] = [
    LockMode::NL,
    LockMode::IS,
    LockMode::Member,
    LockMode::Insert,
    LockMode::Delete,
    LockMode::IX,
    LockMode::S,
    LockMode::SIX,
    LockMode::X,
];

fn mode_idx(m: LockMode) -> usize {
    match m {
        LockMode::NL => 0,
        LockMode::IS => 1,
        LockMode::Member => 2,
        LockMode::Insert => 3,
        LockMode::Delete => 4,
        LockMode::IX => 5,
        LockMode::S => 6,
        LockMode::SIX => 7,
        LockMode::X => 8,
    }
}

/// One granted lock instance: the half-open `[grant, release)` life of a
/// `(txn, resource, mode)` holding.
#[derive(Debug, Clone)]
struct Instance {
    node: TxnNode,
    optimistic: bool,
    seq: u64,
    release_seq: Option<u64>,
    /// The instance ended because its owner converted to a stronger mode
    /// (the lock itself is still held): not evidence of a shrinking phase,
    /// so [`resolve_overlaps`] must ignore it when locating the owner's
    /// first real release.
    converted: bool,
}

/// Per-resource instance store, bucketed by mode so a new grant only scans
/// buckets whose mode can actually conflict with it.
#[derive(Default)]
struct ResSlot {
    by_mode: [Vec<u32>; 9],
}

/// `Some(first-four-components)` when `resource` sits at or below an object
/// root `db:…/seg:…/rel:…/obj:…`.
fn object_root(resource: &str) -> Option<&str> {
    let mut slashes = resource.char_indices().filter(|&(_, c)| c == '/');
    let (a, b, c) = (slashes.next()?, slashes.next()?, slashes.next()?);
    let end = slashes.next().map(|(i, _)| i).unwrap_or(resource.len());
    let comps = [&resource[..a.0], &resource[a.0 + 1..b.0], &resource[b.0 + 1..c.0]];
    if comps[0].starts_with("db:")
        && comps[1].starts_with("seg:")
        && comps[2].starts_with("rel:")
        && resource[c.0 + 1..end].starts_with("obj:")
    {
        Some(&resource[..end])
    } else {
        None
    }
}

/// Parses a `ts=N` event detail.
fn parse_ts(detail: &str) -> Option<u64> {
    detail.strip_prefix("ts=")?.parse().ok()
}

/// The serializability certifier. See the [module docs](self) for the edge
/// rules it applies.
///
/// ```
/// use colock_check::Certifier;
/// use colock_trace::{Event, EventKind};
/// let mut events = vec![
///     Event::new(EventKind::TxnBegin, 1).detail("short"),
///     Event::new(EventKind::Grant, 1).mode("X").resource("r").detail("immediate"),
///     Event::new(EventKind::Release, 1).mode("X").resource("r"),
///     Event::new(EventKind::TxnCommit, 1),
///     Event::new(EventKind::TxnBegin, 2).detail("short"),
///     Event::new(EventKind::Grant, 2).mode("X").resource("r").detail("immediate"),
///     Event::new(EventKind::Release, 2).mode("X").resource("r"),
///     Event::new(EventKind::TxnCommit, 2),
/// ];
/// for (i, e) in events.iter_mut().enumerate() {
///     e.seq = i as u64;
/// }
/// let report = Certifier::new().certify(&events);
/// assert!(report.is_clean());
/// assert_eq!(report.edges, 1); // T1 → T2 on r
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Certifier;

impl Certifier {
    /// Constructs a certifier.
    pub fn new() -> Self {
        Certifier
    }

    /// Reconstructs the conflict graph of `events` (sequence-ordered, as the
    /// ring or a trace file produces them) and reports every cycle.
    pub fn certify(&self, events: &[Event]) -> CertifyReport {
        let mut report = CertifyReport { events_seen: events.len(), ..Default::default() };

        let mut incarnation: HashMap<u64, u32> = HashMap::new();
        let mut class: HashMap<TxnNode, NodeClass> = HashMap::new();
        let mut committed: HashMap<TxnNode, Option<u64>> = HashMap::new();
        let mut instances: Vec<Instance> = Vec::new();
        let mut slots: BTreeMap<String, ResSlot> = BTreeMap::new();
        // Open instance index per (txn, resource) — one incarnation of an id
        // is ever live at a time.
        let mut open: HashMap<u64, HashMap<String, u32>> = HashMap::new();
        let mut edges: HashMap<(TxnNode, TxnNode), (u64, String)> = HashMap::new();
        // Pessimistic overlaps parked until the whole trace is read; see
        // `resolve_overlaps`.
        let mut overlaps: HashMap<(TxnNode, TxnNode), (u64, String)> = HashMap::new();
        // (reader, object root, snapshot ts, seq).
        let mut snap_reads: Vec<(TxnNode, String, u64, u64)> = Vec::new();

        let node_of = |inc: &HashMap<u64, u32>, txn: u64| TxnNode {
            txn,
            incarnation: inc.get(&txn).copied().unwrap_or(0),
        };

        for e in events {
            if e.txn == 0 {
                continue; // detector-level events carry no owner
            }
            match e.kind {
                EventKind::TxnBegin => {
                    // A re-begun id is a fresh incarnation: close whatever
                    // the previous one still had open (a killed server may
                    // never have traced its releases).
                    let fresh = !incarnation.contains_key(&e.txn);
                    if let Some(prior) = open.remove(&e.txn) {
                        for (_, idx) in prior {
                            instances[idx as usize].release_seq = Some(e.seq);
                        }
                    }
                    let inc = incarnation.entry(e.txn).or_insert(0);
                    if !fresh {
                        *inc += 1;
                    }
                    let cls = match e.detail.as_str() {
                        "long" => NodeClass::Long,
                        "readonly" => NodeClass::Snapshot,
                        _ => NodeClass::Short,
                    };
                    class.insert(TxnNode { txn: e.txn, incarnation: *inc }, cls);
                }
                EventKind::TxnRecovered => {
                    incarnation.entry(e.txn).or_insert(0);
                    class.insert(node_of(&incarnation, e.txn), NodeClass::Long);
                }
                EventKind::Grant => {
                    let Some(mode) = parse_mode(&e.mode) else {
                        report.malformed += 1;
                        continue;
                    };
                    if e.detail == "already-held" || mode == LockMode::NL {
                        continue; // no new rights were granted
                    }
                    incarnation.entry(e.txn).or_insert(0);
                    let node = node_of(&incarnation, e.txn);
                    report.grants_replayed += 1;
                    // A re-grant on a held resource is a conversion: the old
                    // instance ends here and the joined mode starts a new
                    // one, so a later conflict is attributed to the phase
                    // that actually overlapped it.
                    if let Some(idx) =
                        open.get_mut(&e.txn).and_then(|m| m.remove(&e.resource))
                    {
                        instances[idx as usize].release_seq = Some(e.seq);
                        instances[idx as usize].converted = true;
                    }
                    let optimistic = e.detail == "fastpath";
                    scan_conflicts(
                        &mut edges, &mut overlaps, &instances, &slots, node, &e.resource,
                        mode, optimistic, e.seq,
                    );
                    let idx = instances.len() as u32;
                    instances.push(Instance {
                        node,
                        optimistic,
                        seq: e.seq,
                        release_seq: None,
                        converted: false,
                    });
                    slots
                        .entry(e.resource.clone())
                        .or_default()
                        .by_mode[mode_idx(mode)]
                        .push(idx);
                    open.entry(e.txn).or_default().insert(e.resource.clone(), idx);
                }
                EventKind::Release => {
                    if let Some(idx) =
                        open.get_mut(&e.txn).and_then(|m| m.remove(&e.resource))
                    {
                        instances[idx as usize].release_seq = Some(e.seq);
                    }
                }
                EventKind::SnapshotRead => {
                    incarnation.entry(e.txn).or_insert(0);
                    let node = node_of(&incarnation, e.txn);
                    report.reads_checked += 1;
                    match (parse_ts(&e.detail), object_root(&e.resource)) {
                        (Some(ts), Some(root)) => {
                            snap_reads.push((node, root.to_string(), ts, e.seq));
                        }
                        (None, _) => report.malformed += 1,
                        // A read above object level resolves no version
                        // chain; nothing to order.
                        (_, None) => {}
                    }
                }
                EventKind::TxnCommit => {
                    incarnation.entry(e.txn).or_insert(0);
                    committed.insert(node_of(&incarnation, e.txn), parse_ts(&e.detail));
                }
                _ => {}
            }
        }

        resolve_overlaps(&mut edges, overlaps, &instances);

        // MVCC reads-from edges: index committed version-installing writers
        // by the object roots their X instances cover, then order each
        // snapshot read against them by timestamp.
        if !snap_reads.is_empty() {
            let mut by_root: HashMap<&str, HashMap<TxnNode, u64>> = HashMap::new();
            // X locks above object level (escalation) cover every object of
            // the subtree; matched by prefix below.
            let mut broad: Vec<(&str, TxnNode, u64)> = Vec::new();
            for (resource, slot) in &slots {
                for &idx in &slot.by_mode[mode_idx(LockMode::X)] {
                    let inst = &instances[idx as usize];
                    let Some(&Some(ts)) = committed.get(&inst.node) else {
                        continue;
                    };
                    match object_root(resource) {
                        Some(root) => {
                            by_root.entry(root).or_default().insert(inst.node, ts);
                        }
                        None => broad.push((resource.as_str(), inst.node, ts)),
                    }
                }
            }
            for (reader, root, snap_ts, seq) in &snap_reads {
                let writers = by_root.get(root.as_str()).into_iter().flatten();
                let broad_writers = broad
                    .iter()
                    .filter(|(r, _, _)| is_strict_ancestor(r, root))
                    .map(|(_, w, ts)| (w, ts));
                for (w, ts) in writers.chain(broad_writers) {
                    if w.txn == reader.txn || *ts > *snap_ts {
                        continue; // unobserved later version: no anti-dependency
                    }
                    edges.entry((*w, *reader)).or_insert_with(|| {
                        (*seq, format!("reads-from {root}: version ts={ts} ≤ snapshot ts={snap_ts}"))
                    });
                }
            }
        }

        // Graph over committed nodes only.
        let mut nodes: Vec<TxnNode> = committed.keys().copied().collect();
        nodes.sort_unstable();
        report.txns_committed = nodes.len();
        let idx_of: HashMap<TxnNode, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut kept_edges: Vec<((TxnNode, TxnNode), (u64, String))> = Vec::new();
        for ((a, b), info) in edges {
            if let (Some(&ia), Some(&ib)) = (idx_of.get(&a), idx_of.get(&b)) {
                adj[ia].push(ib);
                kept_edges.push(((a, b), info));
            }
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        report.edges = kept_edges.len();

        for scc in tarjan_sccs(&adj) {
            if scc.len() < 2 {
                continue;
            }
            let mut members: Vec<TxnNode> = scc.iter().map(|&i| nodes[i]).collect();
            members.sort_unstable();
            let member_set: HashSet<TxnNode> = members.iter().copied().collect();
            let cooperative = members.iter().any(|m| {
                !matches!(
                    class.get(m).copied().unwrap_or(NodeClass::Unknown),
                    NodeClass::Short | NodeClass::Snapshot
                )
            });
            let mut cycle_edges: Vec<ConflictEdge> = kept_edges
                .iter()
                .filter(|((a, b), _)| member_set.contains(a) && member_set.contains(b))
                .map(|((from, to), (seq, why))| ConflictEdge {
                    from: *from,
                    to: *to,
                    seq: *seq,
                    why: why.clone(),
                })
                .collect();
            cycle_edges.sort_unstable_by_key(|e| e.seq);
            report.cycles.push(ConflictCycle { members, cooperative, edges: cycle_edges });
        }
        report.cycles.sort_by_key(|c| (c.cooperative, c.members.clone()));
        report
    }
}

/// Records every conflict between a new grant and the recorded instances,
/// applying the edge-direction rules from the [module docs](self).
/// Non-optimistic overlaps cannot be oriented until the whole trace is read
/// (the prior holder may already be inside its commit release), so they are
/// parked in `overlaps` and resolved by [`resolve_overlaps`].
#[allow(clippy::too_many_arguments)]
fn scan_conflicts(
    edges: &mut HashMap<(TxnNode, TxnNode), (u64, String)>,
    overlaps: &mut HashMap<(TxnNode, TxnNode), (u64, String)>,
    instances: &[Instance],
    slots: &BTreeMap<String, ResSlot>,
    node: TxnNode,
    resource: &str,
    mode: LockMode,
    optimistic: bool,
    seq: u64,
) {
    let mut add = |prior: &Instance, prior_res: &str, prior_eff: LockMode, new_eff: LockMode| {
        if prior.node == node {
            return;
        }
        let released = prior.release_seq.is_some();
        let why = move || format!("{prior_eff}@{prior_res} vs {new_eff}@{resource}");
        if released || prior.optimistic || optimistic {
            // Ordered (or optimistic release lag): earlier → later only.
            let reason = if released { "released before" } else { "optimistic overlap" };
            edges
                .entry((prior.node, node))
                .or_insert_with(|| (seq, format!("{} ({reason})", why())));
        } else {
            // Two pessimistic instances holding incompatible footprints at
            // once: either the prior holder is mid-way through its commit
            // release (legal, ordered) or the manager granted through a
            // live conflict (a violation). Decided at the end of the trace.
            overlaps.entry((prior.node, node)).or_insert_with(|| (seq, why()));
        }
    };

    // Equal resource: direct incompatibility.
    if let Some(slot) = slots.get(resource) {
        for (mi, bucket) in MODES.iter().zip(&slot.by_mode) {
            if mode.compatible(*mi) {
                continue;
            }
            for &idx in bucket {
                add(&instances[idx as usize], resource, *mi, mode);
            }
        }
    }
    // Ancestors: their implicit descendant mode reaches down to this grant.
    for anc in strict_ancestors(resource) {
        if let Some(slot) = slots.get(anc) {
            for (mi, bucket) in MODES.iter().zip(&slot.by_mode) {
                let eff = mi.implicit_descendant();
                if eff == LockMode::NL || eff.compatible(mode) {
                    continue;
                }
                for &idx in bucket {
                    add(&instances[idx as usize], anc, eff, mode);
                }
            }
        }
    }
    // Descendants: only S/SIX/X grants reach below themselves.
    let eff = mode.implicit_descendant();
    if eff != LockMode::NL {
        let prefix = format!("{resource}/");
        let from = Bound::Excluded(resource.to_string());
        for (res, slot) in slots.range::<String, _>((from, Bound::Unbounded)) {
            if !res.starts_with(&prefix) {
                break;
            }
            for (mi, bucket) in MODES.iter().zip(&slot.by_mode) {
                if eff.compatible(*mi) {
                    continue;
                }
                for &idx in bucket {
                    add(&instances[idx as usize], res, *mi, eff);
                }
            }
        }
    }
}

/// Orients the parked pessimistic overlaps once the whole trace is known.
///
/// `release_all` at commit walks the shards one at a time, so another
/// transaction can legally be granted a conflicting lock in the window where
/// the finishing holder has dropped its ancestor intents but not yet a
/// remaining descendant instance. That overlap is ordered, not broken: the
/// holder is past its lock point (2PL shrinking phase), every one of its
/// accesses happened before the new grant, so the edge is *prior → new*.
/// The rule demands real two-phase evidence — the prior node's first release
/// must precede the grant **and** no grant of the prior node may follow its
/// first release. Any other pessimistic overlap means the manager granted
/// through a live conflict, and edges both ways force the cycle into the
/// report (this is what catches write skew under a broken matrix).
fn resolve_overlaps(
    edges: &mut HashMap<(TxnNode, TxnNode), (u64, String)>,
    overlaps: HashMap<(TxnNode, TxnNode), (u64, String)>,
    instances: &[Instance],
) {
    if overlaps.is_empty() {
        return;
    }
    // (first release seq, last grant seq) per node, from the instance table.
    let mut phase: HashMap<TxnNode, (u64, u64)> = HashMap::new();
    for inst in instances {
        let e = phase.entry(inst.node).or_insert((u64::MAX, 0));
        e.1 = e.1.max(inst.seq);
        if let Some(r) = inst.release_seq {
            // A conversion closes the old-mode instance while the lock is
            // still held (growing phase) — only real releases bound the
            // shrinking phase.
            if !inst.converted {
                e.0 = e.0.min(r);
            }
        }
    }
    // Deterministic resolution order (HashMap iteration is not).
    let mut parked: Vec<((TxnNode, TxnNode), (u64, String))> = overlaps.into_iter().collect();
    parked.sort_unstable_by_key(|a| (a.1 .0, a.0));
    for ((prior, new), (seq, why)) in parked {
        let (first_release, last_grant) = phase.get(&prior).copied().unwrap_or((u64::MAX, 0));
        if first_release <= seq && last_grant <= first_release {
            edges
                .entry((prior, new))
                .or_insert_with(|| (seq, format!("{why} (commit-release overlap)")));
        } else {
            for (a, b) in [(prior, new), (new, prior)] {
                edges
                    .entry((a, b))
                    .or_insert_with(|| (seq, format!("{why} (unserializable overlap)")));
            }
        }
    }
}

/// Iterative Tarjan strongly-connected-components (recursion-free: conflict
/// chains in a long trace can be thousands of nodes deep).
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut sccs = Vec::new();
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        while let Some(&(v, child)) = frames.last() {
            if child == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if child < adj[v].len() {
                frames.last_mut().expect("frame present").1 += 1;
                let w = adj[v][child];
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linter;

    fn ev(seq: u64, kind: EventKind, txn: u64) -> Event {
        let mut e = Event::new(kind, txn);
        e.seq = seq;
        e.t_us = seq;
        e
    }

    fn begin(seq: u64, txn: u64, kind: &str) -> Event {
        ev(seq, EventKind::TxnBegin, txn).detail(kind)
    }

    fn grant(seq: u64, txn: u64, resource: &str, mode: &str) -> Event {
        ev(seq, EventKind::Grant, txn).mode(mode).resource(resource).detail("immediate")
    }

    fn release(seq: u64, txn: u64, resource: &str, mode: &str) -> Event {
        ev(seq, EventKind::Release, txn).mode(mode).resource(resource)
    }

    fn commit(seq: u64, txn: u64) -> Event {
        ev(seq, EventKind::TxnCommit, txn)
    }

    const OBJ_C: &str = "db:d/seg:s/rel:r/obj:c";
    const OBJ_D: &str = "db:d/seg:s/rel:r/obj:d";

    #[test]
    fn sequential_conflicts_are_acyclic() {
        let events = vec![
            begin(0, 1, "short"),
            grant(1, 1, OBJ_C, "X"),
            release(2, 1, OBJ_C, "X"),
            commit(3, 1),
            begin(4, 2, "short"),
            grant(5, 2, OBJ_C, "X"),
            release(6, 2, OBJ_C, "X"),
            commit(7, 2),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.edges, 1);
        assert_eq!(report.txns_committed, 2);
    }

    /// The tentpole mutation test: write skew under a broken compatibility
    /// matrix that grants a semantic `Insert` alongside an `S` on the same
    /// container. Each transaction reads one container (S) and inserts into
    /// the other; all four grants co-held. Every per-transaction rule holds
    /// (proper 2PL, no ancestor requirement broken, `Insert` is an intent so
    /// the linter's conflicting-grants replay skips it) — the rule linter
    /// passes, the certifier must not.
    #[test]
    fn write_skew_caught_by_certifier_but_not_linter() {
        let cs = format!("{OBJ_C}/items");
        let ds = format!("{OBJ_D}/items");
        let ce = format!("{cs}/[k1]");
        let de = format!("{ds}/[k2]");
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            // T1 reads C, T2 reads D.
            grant(2, 1, OBJ_C, "S"),
            grant(3, 2, OBJ_D, "S"),
            // Broken matrix: each inserts into the container the other is
            // reading, while the S locks are still held.
            grant(4, 1, &ds, "IN"),
            grant(5, 2, &cs, "IN"),
            grant(6, 1, &de, "X"),
            grant(7, 2, &ce, "X"),
            release(8, 1, &de, "X"),
            release(9, 1, &ds, "IN"),
            release(10, 1, OBJ_C, "S"),
            commit(11, 1),
            release(12, 2, &ce, "X"),
            release(13, 2, &cs, "IN"),
            release(14, 2, OBJ_D, "S"),
            commit(15, 2),
        ];
        let lint = Linter::new().lint(&events);
        assert!(lint.is_clean(), "linter must pass this trace:\n{}", lint.render());
        let report = Certifier::new().certify(&events);
        assert!(!report.is_clean(), "certifier must flag write skew:\n{}", report.render());
        let cycle = report.violations().next().expect("one violating cycle");
        assert_eq!(
            cycle.members,
            vec![
                TxnNode { txn: 1, incarnation: 0 },
                TxnNode { txn: 2, incarnation: 0 }
            ]
        );
        // The context rendering names both directions and exports DOT.
        let ctx = report.render_with_context(&events);
        assert!(ctx.contains("digraph conflict_cycle"), "{ctx}");
        assert!(ctx.contains("== txn 1 =="), "{ctx}");
    }

    /// `release_all` at commit drops locks shard by shard: a rival grant in
    /// the window between the holder's ancestor releases and its remaining
    /// descendant releases overlaps but is ordered, not a violation.
    #[test]
    fn commit_release_overlap_is_ordered_not_cyclic() {
        let elem = format!("{OBJ_C}/robots/[r2]");
        let traj = format!("{elem}/trajectory");
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            grant(2, 1, &elem, "X"),
            grant(3, 1, &traj, "X"),
            // T1 commits: release_all happens to visit the element's shard
            // before the trajectory's.
            release(4, 1, &elem, "X"),
            // Rival grant lands in the window — T1 still holds X on the
            // trajectory below, but is past its lock point.
            grant(5, 2, &elem, "S"),
            release(6, 1, &traj, "X"),
            commit(7, 1),
            release(8, 2, &elem, "S"),
            commit(9, 2),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "shrinking-phase overlap must certify:\n{}", report.render());
        assert_eq!(report.edges, 1, "single ordered T1 → T2 edge expected");
    }

    /// A conversion closes the old-mode instance mid-growth; that closure
    /// must not count as the holder's first release, or any converting
    /// transaction would lose the commit-release excuse and a legal
    /// shrinking-phase overlap would read as a cycle.
    #[test]
    fn conversion_does_not_forfeit_commit_release_excuse() {
        let elem = format!("{OBJ_C}/robots/[r2]");
        let traj = format!("{elem}/trajectory");
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            grant(2, 1, &elem, "S"),
            // S → X conversion: the S instance is closed here while the
            // lock stays held — still the growing phase.
            grant(3, 1, &elem, "X"),
            grant(4, 1, &traj, "X"),
            // T1 commits; release_all drops the element before the
            // trajectory below it.
            release(5, 1, &elem, "X"),
            grant(6, 2, &elem, "S"),
            release(7, 1, &traj, "X"),
            commit(8, 1),
            release(9, 2, &elem, "S"),
            commit(10, 2),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "converting holder must keep the excuse:\n{}", report.render());
        assert_eq!(report.edges, 1, "single ordered T1 → T2 edge expected");
    }

    /// The release-phase excuse requires real two-phase evidence: a holder
    /// that grants *after* its first release is not shrinking, and its
    /// overlap stays bidirectional (certification failure).
    #[test]
    fn overlap_after_non_two_phase_release_still_flagged() {
        let elem = format!("{OBJ_C}/robots/[r2]");
        let traj = format!("{elem}/trajectory");
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            grant(2, 1, &elem, "X"),
            release(3, 1, &elem, "X"),
            // T1 acquires again after releasing: 2PL is broken, so its
            // release phase proves nothing about ordering.
            grant(4, 1, &traj, "X"),
            grant(5, 2, &traj, "S"),
            release(6, 1, &traj, "X"),
            commit(7, 1),
            release(8, 2, &traj, "S"),
            commit(9, 2),
        ];
        let report = Certifier::new().certify(&events);
        assert!(!report.is_clean(), "non-two-phase overlap must fail:\n{}", report.render());
    }

    #[test]
    fn distinct_element_inserts_commute() {
        let cs = format!("{OBJ_C}/items");
        let e1 = format!("{cs}/[a]");
        let e2 = format!("{cs}/[b]");
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            grant(2, 1, &cs, "IN"),
            grant(3, 2, &cs, "IN"),
            grant(4, 1, &e1, "X"),
            grant(5, 2, &e2, "X"),
            release(6, 1, &e1, "X"),
            release(7, 1, &cs, "IN"),
            commit(8, 1),
            release(9, 2, &e2, "X"),
            release(10, 2, &cs, "IN"),
            commit(11, 2),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.edges, 0, "distinct-element inserters must not be ordered");
    }

    #[test]
    fn same_element_collision_produces_a_cycle() {
        let cs = format!("{OBJ_C}/items");
        let e1 = format!("{cs}/[k]");
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            grant(2, 1, &cs, "IN"),
            grant(3, 2, &cs, "MB"),
            // Same element key: X and S overlap — a broken element-key
            // protocol let both through.
            grant(4, 1, &e1, "X"),
            grant(5, 2, &e1, "S"),
            release(6, 1, &e1, "X"),
            release(7, 1, &cs, "IN"),
            commit(8, 1),
            release(9, 2, &e1, "S"),
            release(10, 2, &cs, "MB"),
            commit(11, 2),
        ];
        let report = Certifier::new().certify(&events);
        assert!(!report.is_clean(), "{}", report.render());
    }

    #[test]
    fn long_transaction_cycles_are_cooperative_advisories() {
        // T1 (long) releases its target early (rule 5), T2 writes it, then
        // T1 writes something T2 read earlier: a cycle, but cooperative.
        let events = vec![
            begin(0, 1, "long"),
            begin(1, 2, "short"),
            grant(2, 2, OBJ_D, "S"),
            grant(3, 1, OBJ_C, "X"),
            release(4, 1, OBJ_C, "X"), // rule 5 early release
            grant(5, 2, OBJ_C, "X"),   // T1 → T2
            release(6, 2, OBJ_C, "X"),
            release(7, 2, OBJ_D, "S"),
            commit(8, 2),
            grant(9, 1, OBJ_D, "X"), // T2 → T1
            release(10, 1, OBJ_D, "X"),
            commit(11, 1),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "cooperative cycles must not fail:\n{}", report.render());
        assert_eq!(report.advisories().count(), 1);
        let adv = report.advisories().next().expect("advisory");
        assert!(adv.cooperative);
        // The same shape between two short transactions IS a violation.
        let mut broken = events.clone();
        broken[0] = begin(0, 1, "short");
        let report = Certifier::new().certify(&broken);
        assert!(!report.is_clean());
    }

    #[test]
    fn snapshot_reads_take_reads_from_edges_only() {
        let events = vec![
            begin(0, 1, "short"),
            grant(1, 1, OBJ_C, "X"),
            release(2, 1, OBJ_C, "X"),
            ev(3, EventKind::TxnCommit, 1).detail("ts=5"),
            begin(4, 3, "readonly"),
            ev(5, EventKind::SnapshotRead, 3).resource(OBJ_C).detail("ts=7"),
            commit(6, 3),
            begin(7, 2, "short"),
            grant(8, 2, OBJ_C, "X"),
            release(9, 2, OBJ_C, "X"),
            ev(10, EventKind::TxnCommit, 2).detail("ts=9"),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.reads_checked, 1);
        // W1 (ts=5 ≤ 7) → reader, plus W1 → W2 on the lock conflict. No
        // anti-dependency edge to the unobserved W2 (ts=9 > 7).
        assert_eq!(report.edges, 2, "{}", report.render());
    }

    #[test]
    fn optimistic_release_lag_does_not_invent_cycles() {
        let rel = "db:d/seg:s/rel:r";
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            // T1's fast-path IX: its release event lags past T2's grant.
            ev(2, EventKind::Grant, 1).mode("IX").resource(rel).detail("fastpath"),
            grant(3, 2, rel, "X"), // appears to overlap the optimistic IX
            release(4, 1, rel, "IX"),
            commit(5, 1),
            release(6, 2, rel, "X"),
            commit(7, 2),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.edges, 1); // directed T1 → T2 only
    }

    #[test]
    fn pessimistic_overlap_is_flagged() {
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            grant(2, 1, OBJ_C, "X"),
            grant(3, 2, OBJ_C, "X"), // granted through the conflict
            release(4, 1, OBJ_C, "X"),
            commit(5, 1),
            release(6, 2, OBJ_C, "X"),
            commit(7, 2),
        ];
        let report = Certifier::new().certify(&events);
        assert!(!report.is_clean(), "{}", report.render());
    }

    #[test]
    fn conversion_regrant_segments_instances() {
        // T1's S phase overlaps T2's S (compatible); T1 only converts to X
        // after T2 released. Without conversion segmentation the X instance
        // would appear to span T2's S and invent a cycle.
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            grant(2, 1, OBJ_C, "S"),
            grant(3, 2, OBJ_C, "S"),
            release(4, 2, OBJ_C, "S"),
            commit(5, 2),
            ev(6, EventKind::Conversion, 1).mode("X").resource(OBJ_C).detail("S -> X"),
            grant(7, 1, OBJ_C, "X"),
            release(8, 1, OBJ_C, "X"),
            commit(9, 1),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "{}", report.render());
        // Only the ordered T2 → T1 edge (S released before the X re-grant).
        assert_eq!(report.edges, 1, "{}", report.render());
    }

    #[test]
    fn aborted_transactions_are_not_nodes() {
        let events = vec![
            begin(0, 1, "short"),
            begin(1, 2, "short"),
            grant(2, 1, OBJ_C, "X"),
            grant(3, 2, OBJ_C, "X"), // overlap — but T2 aborts
            release(4, 2, OBJ_C, "X"),
            ev(5, EventKind::TxnAbort, 2),
            release(6, 1, OBJ_C, "X"),
            commit(7, 1),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.txns_committed, 1);
        assert_eq!(report.edges, 0);
    }

    #[test]
    fn rebegun_ids_are_separate_incarnations() {
        let events = vec![
            begin(0, 1, "short"),
            grant(1, 1, OBJ_C, "X"),
            release(2, 1, OBJ_C, "X"),
            commit(3, 1),
            begin(4, 1, "short"), // same id, new incarnation
            grant(5, 1, OBJ_C, "X"),
            release(6, 1, OBJ_C, "X"),
            commit(7, 1),
        ];
        let report = Certifier::new().certify(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.txns_committed, 2);
        assert_eq!(report.edges, 1); // T1 → T1#1
    }

    #[test]
    fn object_root_extraction() {
        assert_eq!(object_root("db:d/seg:s/rel:r/obj:k"), Some("db:d/seg:s/rel:r/obj:k"));
        assert_eq!(
            object_root("db:d/seg:s/rel:r/obj:k/a/[e]"),
            Some("db:d/seg:s/rel:r/obj:k")
        );
        assert_eq!(object_root("db:d/seg:s/rel:r"), None);
        assert_eq!(object_root("db:d"), None);
    }
}
