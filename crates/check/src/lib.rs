//! Independent conformance checking for the colock workspace.
//!
//! The engine crates *implement* the paper's lock technique; this crate
//! *verifies* them, from the outside, using only public artifacts:
//!
//! - [`static_check`] analyzes a derived object-specific lock graph offline —
//!   tree structure, Fig. 5 derivation conformance, §4.3 unit/entry-point
//!   soundness, and the algebraic laws of the compatibility matrix.
//! - [`lint`] replays a recorded trace (live ring drain or parsed trace
//!   file) and checks the §4.4.2 protocol rules 1–5 against what the engine
//!   actually did, reporting typed [`Violation`]s.
//!
//! Neither path touches engine internals, so a bug in the engine cannot hide
//! itself from its own checker. The sim driver and the stress binaries drain
//! the trace ring through the linter when `COLOCK_CHECK=1` is set (see
//! [`enabled_from_env`]); `cargo run --bin colock_check` lints trace files
//! offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod lint;
pub mod static_check;

pub use certify::{Certifier, CertifyReport, ConflictCycle, ConflictEdge, TxnNode};
pub use lint::{LintReport, Linter, Violation, ViolationKind};
pub use static_check::{check_graph, check_matrix, check_schema, CheckError, StaticReport};

use std::sync::OnceLock;

fn env_flag(v: &str) -> bool {
    matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes")
}

/// Whether `COLOCK_CHECK` asks for conformance checking (`1`, `true`, `on`
/// or `yes`, case-insensitive). Read once and cached for the process.
pub fn enabled_from_env() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("COLOCK_CHECK").map(|v| env_flag(&v)).unwrap_or(false)
    })
}

/// Whether the serializability certifier should run. `COLOCK_CERTIFY` wins
/// when set (so the certifier can be toggled independently, e.g. off for a
/// bisect of a linter failure); otherwise it follows `COLOCK_CHECK`, putting
/// the certifier next to the linter in every gated harness. Read once and
/// cached for the process.
pub fn certify_enabled_from_env() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("COLOCK_CERTIFY") {
        Ok(v) => env_flag(&v),
        Err(_) => enabled_from_env(),
    })
}
