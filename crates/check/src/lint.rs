//! Protocol conformance linting over recorded traces.
//!
//! The linter replays a `colock-trace` event stream (a live ring drain or a
//! parsed `to_line` file) and checks the §4.4.2 protocol rules against what
//! the engine actually did:
//!
//! - **Rules 1/2** — before a transaction's explicit lock is granted, every
//!   ancestor up to the database node holds a mode covering the required
//!   intent (`required_parent_intent` of the granted mode).
//! - **Rules 3/4** — entry-point grants land exactly on the object root of a
//!   common-data relation and follow an already-held non-intent lock (the
//!   dereferenced source); rule 4′ grants are weakened to S.
//! - **Conversions** — every conversion moves up the mode lattice (the
//!   target covers the stated held mode) and the stated held mode matches
//!   the replayed lock table.
//! - **Rule 5 / two-phase discipline** — short transactions acquire no new
//!   lock after their first release (long transactions, recovery re-adoption
//!   and optimizer escalation are the documented exceptions); early releases
//!   proceed leaf-to-root within the release run preceding each
//!   `TxnReleaseEarly` marker.
//! - **Deadlock handling** — every detected cycle is followed by exactly one
//!   victim drawn from its members; stale detections (`resource = "stale"`)
//!   expect none.
//!
//! The linter is deliberately tolerant of ring wraparound: per-transaction
//! checks run only for transactions whose `TxnBegin`/`TxnRecovered` event is
//! inside the slice, and a trailing cycle whose victim fell outside the
//! window is not reported.

use colock_lockmgr::LockMode;
use colock_nf2::Catalog;
use colock_trace::{explain, Event, EventKind, RuleTag};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The protocol rule a trace violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// An explicit lock was granted while an ancestor lacked the required
    /// intent mode (rules 1/2).
    MissingAncestorIntent,
    /// An entry-point-tagged grant landed on a node that is not the object
    /// root of a common-data relation (§4.3).
    EntryPointMisplaced,
    /// A rule-4′ entry-point grant was not weakened to S.
    EntryPointNotWeakened,
    /// An entry-point grant arrived before the transaction held any
    /// non-intent lock (nothing could have been dereferenced yet).
    EntryPointBeforeTarget,
    /// A conversion moved down the mode lattice, or its stated held mode
    /// disagrees with the replayed lock table.
    IllegalConversion,
    /// A short transaction acquired a lock after its first release
    /// (two-phase discipline, rule 5).
    AcquireAfterRelease,
    /// An early-release run freed an ancestor before one of its descendants
    /// (rule 5: leaf-to-root).
    ReleaseOrder,
    /// A victim was chosen that does not answer the preceding detected
    /// cycle (wrong member, or no cycle at all).
    UnmatchedVictim,
    /// A detected cycle was never answered by a victim.
    MissingVictim,
    /// An event carried a field the linter could not interpret (e.g. an
    /// unknown lock mode) — the trace itself is damaged.
    MalformedEvent,
    /// A snapshot (read-only MVCC) transaction appeared in a lock-manager
    /// event: snapshot readers must never enter the lock table, wait, or
    /// release anything.
    SnapshotTxnLocked,
    /// A `SnapshotRead` event was emitted by a transaction that did not
    /// begin as a snapshot reader — a writer (or locking reader) bypassing
    /// the lock protocol through the version chains.
    SnapshotReadOutsideSnapshotTxn,
    /// Two transactions held incompatible non-intent modes on the same
    /// resource at once — the manager granted through a conflict. With
    /// semantic container modes this is where an element-key collision
    /// surfaces: commuting `Insert`/`Insert` grants are clean, but an
    /// `Insert` and a `Member` touching the same element key materialize as
    /// X and S on the element resource, which must never overlap.
    ConflictingGrants,
    /// A semantic container mode (Member/Insert/Delete) was granted on an
    /// attribute whose schema does not admit it
    /// (`Catalog::admits_semantic_modes` is false): without a derivable
    /// element key, "distinct elements commute" is unenforceable and the
    /// planner must fall back to classical IS/IX.
    SemanticModeNotAdmitted,
}

impl ViolationKind {
    /// Stable short name used in rendered reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::MissingAncestorIntent => "missing-ancestor-intent",
            ViolationKind::EntryPointMisplaced => "entry-point-misplaced",
            ViolationKind::EntryPointNotWeakened => "entry-point-not-weakened",
            ViolationKind::EntryPointBeforeTarget => "entry-point-before-target",
            ViolationKind::IllegalConversion => "illegal-conversion",
            ViolationKind::AcquireAfterRelease => "acquire-after-release",
            ViolationKind::ReleaseOrder => "release-order",
            ViolationKind::UnmatchedVictim => "unmatched-victim",
            ViolationKind::MissingVictim => "missing-victim",
            ViolationKind::MalformedEvent => "malformed-event",
            ViolationKind::SnapshotTxnLocked => "snapshot-txn-locked",
            ViolationKind::SnapshotReadOutsideSnapshotTxn => "snapshot-read-outside-snapshot-txn",
            ViolationKind::ConflictingGrants => "conflicting-grants",
            ViolationKind::SemanticModeNotAdmitted => "semantic-mode-not-admitted",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One protocol violation, anchored to the event that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that was broken.
    pub kind: ViolationKind,
    /// The offending transaction (0 for detector-level violations).
    pub txn: u64,
    /// Sequence number of the exposing event.
    pub seq: u64,
    /// The resource involved, if any.
    pub resource: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] T{} seq={}", self.kind, self.txn, self.seq)?;
        if !self.resource.is_empty() {
            write!(f, " {}", self.resource)?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

/// Result of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every violation, in trace order.
    pub violations: Vec<Violation>,
    /// Events examined.
    pub events_seen: usize,
    /// Transactions whose begin/recovery marker was inside the slice (only
    /// these are checked).
    pub txns_checked: usize,
    /// Grant events replayed against the rules.
    pub grants_checked: usize,
    /// Detected deadlock cycles paired with victims.
    pub deadlocks_checked: usize,
}

impl LintReport {
    /// Whether the trace passed every check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One line per violation plus a summary line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{v}");
        }
        let _ = writeln!(
            out,
            "checked {} event(s), {} txn(s), {} grant(s), {} deadlock(s): {} violation(s)",
            self.events_seen,
            self.txns_checked,
            self.grants_checked,
            self.deadlocks_checked,
            self.violations.len()
        );
        out
    }

    /// [`LintReport::render`] followed by the explain timeline of each
    /// offending transaction, so a violation can be read in context.
    pub fn render_with_context(&self, events: &[Event]) -> String {
        use std::fmt::Write;
        let mut out = self.render();
        let mut shown: HashSet<u64> = HashSet::new();
        for v in &self.violations {
            if !shown.insert(v.txn) {
                continue;
            }
            let scoped: Vec<Event> = events
                .iter()
                .filter(|e| e.txn == v.txn || involves_txn(e, v.txn))
                .cloned()
                .collect();
            if scoped.is_empty() {
                continue;
            }
            let _ = writeln!(out, "--- timeline of T{} ---", v.txn);
            out.push_str(&explain::render_timeline(&explain::timeline(&scoped)));
        }
        out
    }
}

/// Events emitted by the lock manager itself (under a shard lock), as
/// opposed to transaction-layer markers.
fn is_lockmgr_kind(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::Request
            | EventKind::Grant
            | EventKind::Wait
            | EventKind::Wakeup
            | EventKind::Conversion
            | EventKind::DeadlockDetected
            | EventKind::VictimChosen
            | EventKind::Release
    )
}

/// Detector events carry txn 0 but mention cycle members in their detail.
pub(crate) fn involves_txn(e: &Event, txn: u64) -> bool {
    matches!(e.kind, EventKind::DeadlockDetected) && parse_cycle(&e.detail).contains(&txn)
}

/// Parses a detector cycle detail such as `"T3, T8"`.
fn parse_cycle(detail: &str) -> Vec<u64> {
    detail
        .split(',')
        .filter_map(|p| p.trim().trim_start_matches('T').parse().ok())
        .collect()
}

pub(crate) fn parse_mode(s: &str) -> Option<LockMode> {
    Some(match s {
        "NL" => LockMode::NL,
        "IS" => LockMode::IS,
        "MB" => LockMode::Member,
        "IN" => LockMode::Insert,
        "DL" => LockMode::Delete,
        "IX" => LockMode::IX,
        "S" => LockMode::S,
        "SIX" => LockMode::SIX,
        "X" => LockMode::X,
        _ => return None,
    })
}

/// Strict ancestors of a rendered [`ResourcePath`], root first: for
/// `a/b/c` yields `a` then `a/b`.
///
/// [`ResourcePath`]: colock_core::resource::ResourcePath
pub(crate) fn strict_ancestors(resource: &str) -> impl Iterator<Item = &str> {
    resource
        .char_indices()
        .filter(|&(_, c)| c == '/')
        .map(move |(i, _)| &resource[..i])
}

pub(crate) fn is_strict_ancestor(a: &str, b: &str) -> bool {
    b.len() > a.len() && b.as_bytes()[a.len()] == b'/' && b.starts_with(a)
}

/// `Some(relation)` when `resource` is the object root `db:…/seg:…/rel:R/obj:…`.
fn object_root_relation(resource: &str) -> Option<&str> {
    let comps: Vec<&str> = resource.split('/').collect();
    if comps.len() == 4
        && comps[0].starts_with("db:")
        && comps[1].starts_with("seg:")
        && comps[2].starts_with("rel:")
        && comps[3].starts_with("obj:")
    {
        Some(&comps[2][4..])
    } else {
        None
    }
}

/// Replayed per-transaction lock state.
#[derive(Default)]
struct TxnState {
    long: bool,
    /// Begun as a snapshot reader (`TxnBegin` detail `readonly`); the
    /// locking fallback begins as `readonly-locking` and is *not* snapshot.
    snapshot: bool,
    held: HashMap<String, LockMode>,
    released_any: bool,
    /// Contiguous run of this transaction's `Release` events, pending a
    /// possible `TxnReleaseEarly` marker.
    release_run: Vec<(u64, String)>,
}

/// Walks an attribute type tree collecting every dotted attribute path
/// (element components contribute no step) whose type admits the semantic
/// container modes.
fn collect_semantic_paths(
    relation: &str,
    path: &str,
    ty: &colock_nf2::AttrType,
    out: &mut HashSet<(String, String)>,
) {
    use colock_nf2::AttrType;
    match ty {
        AttrType::Set(inner) | AttrType::List(inner) => {
            if ty.admits_semantic_modes() {
                out.insert((relation.to_string(), path.to_string()));
            }
            // Element tuples continue the dotted path below the container
            // (`robots.effectors`): resources address them via `[key]`
            // components, which carry no path step.
            collect_semantic_paths(relation, path, inner, out);
        }
        AttrType::Tuple(fields) => {
            for f in fields {
                let child = if path.is_empty() {
                    f.name.clone()
                } else {
                    format!("{path}.{}", f.name)
                };
                collect_semantic_paths(relation, &child, &f.ty, out);
            }
        }
        _ => {}
    }
}

/// `Some((relation, dotted attr path))` for a resource naming an attribute
/// inside a complex object: `db:…/seg:…/rel:R/obj:…/a/[e]/b` maps to
/// `(R, "a.b")` (attribute steps print bare in the path syntax, elements
/// as `[key]`). `None` when the resource names no relation or no attribute
/// below the object (a semantic grant there is malformed by construction).
fn semantic_target(resource: &str) -> Option<(&str, String)> {
    let mut relation = None;
    let mut in_object = false;
    let mut path = String::new();
    for comp in resource.split('/') {
        if let Some(r) = comp.strip_prefix("rel:") {
            relation = Some(r);
        } else if comp.starts_with("obj:") {
            in_object = true;
        } else if in_object && !comp.starts_with('[') && !comp.is_empty() {
            // A bare component below the object is an attribute step;
            // `[key]` components are set/list elements and contribute no
            // schema path step (`AttrPath` skips them the same way).
            if !path.is_empty() {
                path.push('.');
            }
            path.push_str(comp);
        }
    }
    match (relation, path.is_empty()) {
        (Some(r), false) => Some((r, path)),
        _ => None,
    }
}

/// The conformance linter. Construct with [`Linter::with_catalog`] when the
/// schema is known (enables the entry-point placement and semantic-mode
/// admission checks) or [`Linter::new`] for schema-free linting.
#[derive(Debug, Clone, Default)]
pub struct Linter {
    common: Option<HashSet<String>>,
    /// `(relation, dotted attr path)` pairs whose schema admits the
    /// semantic container modes; `None` disables the admission check.
    semantic_admitted: Option<HashSet<(String, String)>>,
}

impl Linter {
    /// A schema-free linter: all checks except entry-point placement and
    /// semantic-mode admission.
    pub fn new() -> Self {
        Linter::default()
    }

    /// A linter that knows the catalog's common-data relations and which
    /// attribute paths admit the semantic container modes.
    pub fn with_catalog(catalog: &Catalog) -> Self {
        let mut l = Self::with_common_data(
            catalog.schema().common_data_relations().iter().map(|r| r.name.clone()),
        );
        let mut admitted = HashSet::new();
        for rel in &catalog.schema().relations {
            for attr in &rel.attributes {
                collect_semantic_paths(&rel.name, &attr.name, &attr.ty, &mut admitted);
            }
        }
        l.semantic_admitted = Some(admitted);
        l
    }

    /// A linter with an explicit common-data relation set.
    pub fn with_common_data<I: IntoIterator<Item = String>>(relations: I) -> Self {
        Linter { common: Some(relations.into_iter().collect()), semantic_admitted: None }
    }

    /// Replays `events` (which must be in sequence order, as produced by the
    /// ring or a trace file) and reports every protocol violation.
    pub fn lint(&self, events: &[Event]) -> LintReport {
        let mut report = LintReport { events_seen: events.len(), ..Default::default() };

        // Pass 1: transactions whose lifetime start is inside the slice.
        // Anything else may have acquired locks before the window opened
        // (ring wraparound), so per-transaction checks would false-positive.
        let began: HashSet<u64> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::TxnBegin | EventKind::TxnRecovered))
            .map(|e| e.txn)
            .collect();
        report.txns_checked = began.len();

        // Pass 2: chronological replay of per-transaction state.
        //
        // `holders` replays the cross-transaction grant table for the
        // conflicting-grants check. Only *non-intent* modes participate:
        // their grant and release events are emitted under the owning shard
        // mutex, so their trace order is their lock order. Optimistic intent
        // grants can migrate into the shard map without a trace event (the
        // drain), so replaying intents here would false-positive.
        let mut txns: HashMap<u64, TxnState> = HashMap::new();
        let mut holders: HashMap<String, Vec<(u64, LockMode)>> = HashMap::new();
        for e in events {
            if e.txn == 0 {
                continue;
            }
            match e.kind {
                // A fresh incarnation of the id invalidates any holdings a
                // previous (possibly killed) incarnation left untraced.
                EventKind::TxnBegin => {
                    for hs in holders.values_mut() {
                        hs.retain(|&(t, _)| t != e.txn);
                    }
                }
                EventKind::Grant => {
                    if let Some(mode) = parse_mode(&e.mode) {
                        if !mode.is_intent() && mode != LockMode::NL {
                            let hs = holders.entry(e.resource.clone()).or_default();
                            for &(other, held) in hs.iter() {
                                if other != e.txn && !mode.compatible(held) {
                                    report.violations.push(Violation {
                                        kind: ViolationKind::ConflictingGrants,
                                        txn: e.txn,
                                        seq: e.seq,
                                        resource: e.resource.clone(),
                                        detail: format!(
                                            "{} granted while T{other} holds {held}",
                                            e.mode
                                        ),
                                    });
                                }
                            }
                            hs.retain(|&(t, _)| t != e.txn);
                            hs.push((e.txn, mode));
                        }
                    }
                }
                EventKind::Release => {
                    if let Some(hs) = holders.get_mut(&e.resource) {
                        hs.retain(|&(t, _)| t != e.txn);
                    }
                }
                _ => {}
            }
            if !began.contains(&e.txn) {
                continue;
            }
            let state = txns.entry(e.txn).or_default();
            match e.kind {
                // A fresh begin starts a new incarnation of the id: managers
                // number transactions independently, so a trace spanning a
                // server restart (e.g. a crash/recovery cycle) legitimately
                // re-uses ids. State from the previous incarnation must not
                // leak into the new one.
                EventKind::TxnBegin => {
                    *state = TxnState {
                        long: e.detail == "long",
                        snapshot: e.detail == "readonly",
                        ..Default::default()
                    }
                }
                EventKind::TxnRecovered => state.long = true,
                // Lock-free reads are checked, not silently exempt: the pair
                // of rules below makes "snapshot readers acquire zero locks"
                // and "only snapshot readers use the version chains"
                // machine-verified properties of every trace.
                EventKind::SnapshotRead if !state.snapshot => {
                    report.violations.push(Violation {
                        kind: ViolationKind::SnapshotReadOutsideSnapshotTxn,
                        txn: e.txn,
                        seq: e.seq,
                        resource: e.resource.clone(),
                        detail: format!(
                            "snapshot read ({}) from a transaction not begun readonly",
                            e.detail
                        ),
                    });
                }
                kind if state.snapshot && is_lockmgr_kind(kind) => {
                    report.violations.push(Violation {
                        kind: ViolationKind::SnapshotTxnLocked,
                        txn: e.txn,
                        seq: e.seq,
                        resource: e.resource.clone(),
                        detail: format!(
                            "snapshot transaction in a {} event (readers must elide all locks)",
                            kind.as_str()
                        ),
                    });
                }
                EventKind::Grant => {
                    report.grants_checked += 1;
                    state.release_run.clear();
                    self.check_grant(e, state, &mut report);
                }
                EventKind::Conversion => {
                    state.release_run.clear();
                    check_conversion(e, state, &mut report);
                }
                EventKind::Release => {
                    state.held.remove(&e.resource);
                    state.released_any = true;
                    state.release_run.push((e.seq, e.resource.clone()));
                }
                EventKind::TxnReleaseEarly => {
                    check_release_order(e, state, &mut report);
                    state.release_run.clear();
                }
                _ => state.release_run.clear(),
            }
        }

        // Pass 3: pair detected cycles with victims, across the whole slice.
        self.check_deadlocks(events, &mut report);
        report
    }

    fn check_grant(&self, e: &Event, state: &mut TxnState, report: &mut LintReport) {
        let Some(mode) = parse_mode(&e.mode) else {
            report.violations.push(Violation {
                kind: ViolationKind::MalformedEvent,
                txn: e.txn,
                seq: e.seq,
                resource: e.resource.clone(),
                detail: format!("grant with unknown mode `{}`", e.mode),
            });
            return;
        };
        let recovered = e.rule == RuleTag::Recovered || e.detail == "recovered";

        // Semantic container modes are schema-gated: Member/Insert/Delete
        // are only sound on set/list attributes with a derivable element key
        // (`admits_semantic_modes`), because commuting distinct-element
        // operations requires the element resources those keys name.
        if mode.is_semantic() {
            if let Some(admitted) = &self.semantic_admitted {
                let target = semantic_target(&e.resource);
                let ok = target
                    .as_ref()
                    .is_some_and(|(r, p)| admitted.contains(&(r.to_string(), p.clone())));
                if !ok {
                    report.violations.push(Violation {
                        kind: ViolationKind::SemanticModeNotAdmitted,
                        txn: e.txn,
                        seq: e.seq,
                        resource: e.resource.clone(),
                        detail: match target {
                            Some((r, p)) => format!(
                                "{} on `{p}` of relation `{r}`, which does not admit \
                                 semantic modes",
                                e.mode
                            ),
                            None => format!(
                                "{} on a resource that names no container attribute",
                                e.mode
                            ),
                        },
                    });
                }
            }
        }

        // Two-phase discipline. Long transactions span sessions (their short
        // locks come and go around the persistent long locks), recovery
        // re-installs without a growing phase, `already-held` grants add no
        // lock, and the escalation optimizer trades lock grain mid-txn by
        // design — everything else must not grow after shrinking.
        if !state.long
            && state.released_any
            && !recovered
            && e.detail != "already-held"
            && e.rule != RuleTag::Escalation
        {
            report.violations.push(Violation {
                kind: ViolationKind::AcquireAfterRelease,
                txn: e.txn,
                seq: e.seq,
                resource: e.resource.clone(),
                detail: format!("{} granted after the transaction already released", e.mode),
            });
        }

        // Rules 1/2: ancestors hold the required intent before the grant.
        let proposed_rule = matches!(
            e.rule,
            RuleTag::Target
                | RuleTag::AncestorIntent
                | RuleTag::EntryPoint
                | RuleTag::EntryPointNonModifiable
        );
        if proposed_rule && !recovered {
            let need = mode.required_parent_intent();
            for anc in strict_ancestors(&e.resource) {
                let held = state.held.get(anc).copied().unwrap_or(LockMode::NL);
                // `satisfies_parent_intent`, not bare `covers`: a semantic
                // Insert/Delete on the container announces descendant writes
                // just as loudly as IX (identical conflict rows), so an
                // element X under it needs no IX conversion.
                if !held.satisfies_parent_intent(need) {
                    report.violations.push(Violation {
                        kind: ViolationKind::MissingAncestorIntent,
                        txn: e.txn,
                        seq: e.seq,
                        resource: e.resource.clone(),
                        detail: format!(
                            "ancestor `{anc}` holds {held}, but {} on the target requires {need}",
                            e.mode
                        ),
                    });
                    break;
                }
            }
        }

        // Rules 3/4 second half: entry-point grants.
        if matches!(e.rule, RuleTag::EntryPoint | RuleTag::EntryPointNonModifiable) && !recovered {
            if let Some(common) = &self.common {
                match object_root_relation(&e.resource) {
                    Some(rel) if common.contains(rel) => {}
                    Some(rel) => report.violations.push(Violation {
                        kind: ViolationKind::EntryPointMisplaced,
                        txn: e.txn,
                        seq: e.seq,
                        resource: e.resource.clone(),
                        detail: format!("`{rel}` is not a common-data relation"),
                    }),
                    None => report.violations.push(Violation {
                        kind: ViolationKind::EntryPointMisplaced,
                        txn: e.txn,
                        seq: e.seq,
                        resource: e.resource.clone(),
                        detail: "not an object root".into(),
                    }),
                }
            }
            if !state.held.values().any(|m| !m.is_intent() && *m != LockMode::NL) {
                report.violations.push(Violation {
                    kind: ViolationKind::EntryPointBeforeTarget,
                    txn: e.txn,
                    seq: e.seq,
                    resource: e.resource.clone(),
                    detail: "no non-intent lock held yet, nothing could have been dereferenced"
                        .into(),
                });
            }
            if e.rule == RuleTag::EntryPointNonModifiable && mode != LockMode::S {
                report.violations.push(Violation {
                    kind: ViolationKind::EntryPointNotWeakened,
                    txn: e.txn,
                    seq: e.seq,
                    resource: e.resource.clone(),
                    detail: format!("rule 4′ requires S on a non-modifiable entry point, got {mode}"),
                });
            }
        }

        state.held.insert(e.resource.clone(), mode);
    }

    fn check_deadlocks(&self, events: &[Event], report: &mut LintReport) {
        let dv: Vec<&Event> = events
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::DeadlockDetected | EventKind::VictimChosen)
            })
            .collect();
        let mut i = 0;
        while i < dv.len() {
            let e = dv[i];
            if e.kind == EventKind::VictimChosen {
                // A leading victim may pair with a detection before the
                // window; anywhere else it is an orphan.
                if i > 0 {
                    report.violations.push(Violation {
                        kind: ViolationKind::UnmatchedVictim,
                        txn: e.txn,
                        seq: e.seq,
                        resource: e.resource.clone(),
                        detail: "victim without a preceding detected cycle".into(),
                    });
                }
                i += 1;
                continue;
            }
            // A stale detection expects no victim (every member turned
            // runnable between snapshot and marking).
            if e.resource == "stale" {
                i += 1;
                continue;
            }
            report.deadlocks_checked += 1;
            match dv.get(i + 1) {
                Some(v) if v.kind == EventKind::VictimChosen => {
                    let cycle = parse_cycle(&e.detail);
                    if !cycle.contains(&v.txn) {
                        report.violations.push(Violation {
                            kind: ViolationKind::UnmatchedVictim,
                            txn: v.txn,
                            seq: v.seq,
                            resource: v.resource.clone(),
                            detail: format!("victim T{} is not in the cycle [{}]", v.txn, e.detail),
                        });
                    }
                    i += 2;
                }
                Some(_) => {
                    report.violations.push(Violation {
                        kind: ViolationKind::MissingVictim,
                        txn: 0,
                        seq: e.seq,
                        resource: e.resource.clone(),
                        detail: format!("cycle [{}] was never resolved", e.detail),
                    });
                    i += 1;
                }
                None => {
                    // Only flag a trailing unanswered cycle when a later
                    // *lock-manager* event proves the stream continued: the
                    // detector emits the victim while still holding every
                    // shard lock, so any lock event past the detection must
                    // have been emitted after the victim (had there been
                    // one). Transaction-layer events don't establish that
                    // ordering — they can slip between detection and victim.
                    let continued = events
                        .iter()
                        .any(|ev| ev.seq > e.seq && is_lockmgr_kind(ev.kind));
                    if continued {
                        report.violations.push(Violation {
                            kind: ViolationKind::MissingVictim,
                            txn: 0,
                            seq: e.seq,
                            resource: e.resource.clone(),
                            detail: format!("cycle [{}] was never resolved", e.detail),
                        });
                    }
                    i += 1;
                }
            }
        }
    }
}

fn check_conversion(e: &Event, state: &mut TxnState, report: &mut LintReport) {
    // Conversion detail is `"{held} -> {target}"`; the mode field carries
    // the target.
    let parsed = e.detail.split_once(" -> ").and_then(|(h, t)| {
        Some((parse_mode(h.trim())?, parse_mode(t.trim())?))
    });
    let Some((stated_held, target)) = parsed else {
        report.violations.push(Violation {
            kind: ViolationKind::MalformedEvent,
            txn: e.txn,
            seq: e.seq,
            resource: e.resource.clone(),
            detail: format!("conversion with unreadable detail `{}`", e.detail),
        });
        return;
    };
    if !target.covers(stated_held) {
        report.violations.push(Violation {
            kind: ViolationKind::IllegalConversion,
            txn: e.txn,
            seq: e.seq,
            resource: e.resource.clone(),
            detail: format!("{stated_held} -> {target} moves down the mode lattice"),
        });
    }
    if let Some(&tracked) = state.held.get(&e.resource) {
        if tracked != stated_held {
            report.violations.push(Violation {
                kind: ViolationKind::IllegalConversion,
                txn: e.txn,
                seq: e.seq,
                resource: e.resource.clone(),
                detail: format!(
                    "conversion claims {stated_held} held, but the trace shows {tracked}"
                ),
            });
        }
    }
}

fn check_release_order(e: &Event, state: &mut TxnState, report: &mut LintReport) {
    // Rule 5: within the release run answered by this marker, a descendant
    // must go before its ancestor (leaf-to-root).
    let run = &state.release_run;
    for (i, (seq, anc)) in run.iter().enumerate() {
        for (_, desc) in &run[i + 1..] {
            if is_strict_ancestor(anc, desc) {
                report.violations.push(Violation {
                    kind: ViolationKind::ReleaseOrder,
                    txn: e.txn,
                    seq: *seq,
                    resource: anc.clone(),
                    detail: format!("released before its descendant `{desc}` (rule 5)"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind, txn: u64) -> Event {
        let mut e = Event::new(kind, txn);
        e.seq = seq;
        e
    }

    fn grant(seq: u64, txn: u64, resource: &str, mode: &str, rule: RuleTag) -> Event {
        let mut e = ev(seq, EventKind::Grant, txn).resource(resource).mode(mode).detail("immediate");
        e.rule = rule;
        e
    }

    #[test]
    fn ancestor_helpers() {
        let r = "db:d/seg:s/rel:r/obj:k";
        let ancs: Vec<&str> = strict_ancestors(r).collect();
        assert_eq!(ancs, vec!["db:d", "db:d/seg:s", "db:d/seg:s/rel:r"]);
        assert!(is_strict_ancestor("db:d/seg:s", r));
        assert!(!is_strict_ancestor(r, r));
        assert!(!is_strict_ancestor("db:d/seg:sx", "db:d/seg:s/rel:r"));
        assert_eq!(object_root_relation(r), Some("r"));
        assert_eq!(object_root_relation("db:d/seg:s/rel:r"), None);
        assert_eq!(object_root_relation("db:d/seg:s/rel:r/obj:k/a"), None);
    }

    #[test]
    fn clean_hierarchical_txn_passes() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d", "IX", RuleTag::AncestorIntent),
            grant(3, 7, "db:d/seg:s", "IX", RuleTag::AncestorIntent),
            grant(4, 7, "db:d/seg:s/rel:r", "IX", RuleTag::AncestorIntent),
            grant(5, 7, "db:d/seg:s/rel:r/obj:k", "X", RuleTag::Target),
            ev(6, EventKind::Release, 7).resource("db:d/seg:s/rel:r/obj:k").mode("X"),
            ev(7, EventKind::Release, 7).resource("db:d").mode("IX"),
            ev(8, EventKind::TxnCommit, 7),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.txns_checked, 1);
        assert_eq!(report.grants_checked, 4);
    }

    /// Managers number transactions independently, so a trace spanning a
    /// server restart re-uses ids: the first incarnation's releases must not
    /// count as the second incarnation's shrinking phase.
    #[test]
    fn re_begun_txn_id_starts_a_fresh_incarnation() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d", "X", RuleTag::Target),
            ev(3, EventKind::Release, 7).resource("db:d").mode("X"),
            ev(4, EventKind::TxnCommit, 7),
            // Same id under a fresh manager (post-restart).
            ev(5, EventKind::TxnBegin, 7).detail("short"),
            grant(6, 7, "db:d", "X", RuleTag::Target),
            ev(7, EventKind::Release, 7).resource("db:d").mode("X"),
            ev(8, EventKind::TxnCommit, 7),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn missing_intent_is_flagged_with_offending_ancestor() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d/seg:s/rel:r/obj:k", "X", RuleTag::Target),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.kind, ViolationKind::MissingAncestorIntent);
        assert!(v.detail.contains("`db:d` holds NL"), "{}", v.detail);
    }

    #[test]
    fn weak_ancestor_mode_is_flagged() {
        // IS on the chain does not license an X below (needs IX).
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d", "IS", RuleTag::AncestorIntent),
            grant(3, 7, "db:d/seg:s", "IS", RuleTag::AncestorIntent),
            grant(4, 7, "db:d/seg:s/rel:r", "IS", RuleTag::AncestorIntent),
            grant(5, 7, "db:d/seg:s/rel:r/obj:k", "X", RuleTag::Target),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::MissingAncestorIntent);
    }

    #[test]
    fn unbegun_txns_are_not_checked() {
        // Same stream as above, but no TxnBegin in the window: wraparound
        // tolerance means no false positive.
        let events = vec![grant(2, 7, "db:d/seg:s/rel:r/obj:k", "X", RuleTag::Target)];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean());
        assert_eq!(report.txns_checked, 0);
    }

    #[test]
    fn untagged_grants_are_exempt_from_ancestor_checks() {
        let mut g = grant(2, 7, "db:d/seg:s/rel:r/obj:k", "X", RuleTag::None);
        g.rule = RuleTag::None;
        let events = vec![ev(1, EventKind::TxnBegin, 7).detail("short"), g];
        assert!(Linter::new().lint(&events).is_clean());
    }

    #[test]
    fn downgrade_conversion_is_flagged() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            ev(2, EventKind::Conversion, 7).resource("r").mode("S").detail("X -> S"),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::IllegalConversion);
    }

    #[test]
    fn conversion_held_mismatch_is_flagged() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d", "IS", RuleTag::AncestorIntent),
            ev(3, EventKind::Conversion, 7).resource("db:d").mode("SIX").detail("IX -> SIX"),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].detail.contains("trace shows IS"));
    }

    #[test]
    fn short_txn_acquire_after_release_is_flagged() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d", "IX", RuleTag::AncestorIntent),
            ev(3, EventKind::Release, 7).resource("db:d").mode("IX"),
            grant(4, 7, "db:d", "IX", RuleTag::AncestorIntent),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::AcquireAfterRelease);
    }

    /// A grant carrying the `fastpath` detail (optimistic summary-word CAS)
    /// is a normal grant to the linter: it satisfies ancestor-intent checks
    /// exactly like a shard-mutex grant and needs no exemption class.
    #[test]
    fn fastpath_grants_are_ordinary_grants() {
        let fast = |seq, txn, resource: &str, mode: &str, rule| {
            let mut e =
                ev(seq, EventKind::Grant, txn).resource(resource).mode(mode).detail("fastpath");
            e.rule = rule;
            e
        };
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            fast(2, 7, "db:d", "IX", RuleTag::AncestorIntent),
            fast(3, 7, "db:d/seg:s", "IX", RuleTag::AncestorIntent),
            fast(4, 7, "db:d/seg:s/rel:r", "IX", RuleTag::AncestorIntent),
            grant(5, 7, "db:d/seg:s/rel:r/obj:k", "X", RuleTag::Target),
            ev(6, EventKind::Release, 7).resource("db:d/seg:s/rel:r/obj:k").mode("X"),
            ev(7, EventKind::TxnCommit, 7),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.grants_checked, 4);
    }

    /// ... and being optimistic buys no indulgence: a fastpath grant inside
    /// a short transaction's shrinking phase is still two-phase breakage.
    #[test]
    fn fastpath_grant_after_release_is_still_flagged() {
        let mut g = ev(4, EventKind::Grant, 7).resource("db:d").mode("IX").detail("fastpath");
        g.rule = RuleTag::AncestorIntent;
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d", "IX", RuleTag::AncestorIntent),
            ev(3, EventKind::Release, 7).resource("db:d").mode("IX"),
            g,
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::AcquireAfterRelease);
    }

    #[test]
    fn long_txns_may_grow_after_releasing() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 9).detail("long"),
            grant(2, 9, "db:d", "IX", RuleTag::AncestorIntent),
            ev(3, EventKind::Release, 9).resource("db:d").mode("IX"),
            grant(4, 9, "db:d", "IX", RuleTag::AncestorIntent),
        ];
        assert!(Linter::new().lint(&events).is_clean());
    }

    #[test]
    fn early_release_must_go_leaf_to_root() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 9).detail("long"),
            grant(2, 9, "db:d", "IX", RuleTag::AncestorIntent),
            grant(3, 9, "db:d/seg:s", "IX", RuleTag::AncestorIntent),
            ev(4, EventKind::Release, 9).resource("db:d").mode("IX"),
            ev(5, EventKind::Release, 9).resource("db:d/seg:s").mode("IX"),
            ev(6, EventKind::TxnReleaseEarly, 9).resource("db:d/seg:s"),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::ReleaseOrder);
        assert_eq!(report.violations[0].resource, "db:d");
    }

    #[test]
    fn eot_release_order_is_unconstrained() {
        // The same root-before-leaf order, but at EOT (no marker): rule 5
        // allows any order at end of transaction.
        let events = vec![
            ev(1, EventKind::TxnBegin, 9).detail("short"),
            grant(2, 9, "db:d", "IX", RuleTag::AncestorIntent),
            grant(3, 9, "db:d/seg:s", "IX", RuleTag::AncestorIntent),
            ev(4, EventKind::Release, 9).resource("db:d").mode("IX"),
            ev(5, EventKind::Release, 9).resource("db:d/seg:s").mode("IX"),
            ev(6, EventKind::TxnCommit, 9),
        ];
        assert!(Linter::new().lint(&events).is_clean());
    }

    #[test]
    fn deadlock_without_victim_is_flagged() {
        let events = vec![
            ev(1, EventKind::DeadlockDetected, 0).detail("T3, T8"),
            ev(2, EventKind::Release, 3).resource("r").mode("X"),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::MissingVictim);
    }

    #[test]
    fn trailing_deadlock_followed_only_by_txn_markers_is_tolerated() {
        // A commit marker can slip between detection and victim (it needs no
        // shard lock), so it does not prove the victim is missing.
        let events = vec![
            ev(1, EventKind::DeadlockDetected, 0).detail("T3, T8"),
            ev(2, EventKind::TxnCommit, 5),
        ];
        assert!(Linter::new().lint(&events).is_clean());
    }

    #[test]
    fn trailing_deadlock_at_window_edge_is_tolerated() {
        let events = vec![ev(1, EventKind::DeadlockDetected, 0).detail("T3, T8")];
        assert!(Linter::new().lint(&events).is_clean());
    }

    #[test]
    fn victim_outside_cycle_is_flagged() {
        let events = vec![
            ev(1, EventKind::DeadlockDetected, 0).detail("T3, T8"),
            ev(2, EventKind::VictimChosen, 9).resource("r"),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::UnmatchedVictim);
    }

    #[test]
    fn stale_detection_expects_no_victim() {
        let events = vec![
            ev(1, EventKind::DeadlockDetected, 0).resource("stale").detail("T3, T8"),
            ev(2, EventKind::TxnCommit, 3),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.deadlocks_checked, 0);
    }

    #[test]
    fn matched_deadlock_and_victim_pass() {
        let events = vec![
            ev(1, EventKind::DeadlockDetected, 0).detail("T3, T8"),
            ev(2, EventKind::VictimChosen, 8).resource("r"),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.deadlocks_checked, 1);
    }

    #[test]
    fn entry_point_checks_use_the_common_data_set() {
        let lint = Linter::with_common_data(["effectors".to_string()]);
        // Well-formed: deref from a held X, entry point on the object root.
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d/seg:s/rel:cells/obj:c1", "X", RuleTag::Target),
            grant(3, 7, "db:d/seg:s2/rel:effectors/obj:e1", "X", RuleTag::EntryPoint),
        ];
        // (Ancestor intents elided via RuleTag granularity: use None tags.)
        let mut events = events;
        events[1].rule = RuleTag::None;
        events[2].rule = RuleTag::EntryPoint;
        let report = lint.lint(&events);
        let kinds: Vec<ViolationKind> = report.violations.iter().map(|v| v.kind).collect();
        // The entry-point grant itself still undergoes the ancestor check.
        assert_eq!(kinds, vec![ViolationKind::MissingAncestorIntent]);

        // Misplaced: entry tag on a non-common relation and a non-root.
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d/seg:s/rel:cells/obj:c1", "X", RuleTag::None),
            {
                let mut g = grant(3, 7, "db:d/seg:s/rel:cells/obj:c2", "X", RuleTag::EntryPoint);
                g.rule = RuleTag::EntryPoint;
                g
            },
        ];
        let report = lint.lint(&events);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::EntryPointMisplaced));
    }

    #[test]
    fn rule4_prime_entry_point_must_be_s() {
        let lint = Linter::with_common_data(["effectors".to_string()]);
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d/seg:s/rel:cells/obj:c1", "X", RuleTag::None),
            {
                let mut g = grant(
                    3,
                    7,
                    "db:d/seg:s2/rel:effectors/obj:e1",
                    "X",
                    RuleTag::EntryPointNonModifiable,
                );
                g.rule = RuleTag::EntryPointNonModifiable;
                g
            },
        ];
        let report = lint.lint(&events);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::EntryPointNotWeakened));
    }

    #[test]
    fn clean_snapshot_txn_passes() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("readonly"),
            ev(2, EventKind::SnapshotRead, 7).resource("cells[c1]").detail("ts=4"),
            ev(3, EventKind::SnapshotRead, 7).resource("cells[c1].robots[r1]").detail("ts=4"),
            ev(4, EventKind::TxnCommit, 7),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn snapshot_txn_acquiring_a_lock_is_flagged() {
        for kind in [EventKind::Request, EventKind::Grant, EventKind::Wait, EventKind::Release] {
            let events = vec![
                ev(1, EventKind::TxnBegin, 7).detail("readonly"),
                ev(2, kind, 7).resource("db:d").mode("S"),
            ];
            let report = Linter::new().lint(&events);
            assert_eq!(report.violations.len(), 1, "kind {kind:?}");
            assert_eq!(report.violations[0].kind, ViolationKind::SnapshotTxnLocked);
        }
    }

    #[test]
    fn snapshot_read_from_locking_txn_is_flagged() {
        for begin_detail in ["short", "long", "readonly-locking"] {
            let events = vec![
                ev(1, EventKind::TxnBegin, 7).detail(begin_detail),
                ev(2, EventKind::SnapshotRead, 7).resource("cells[c1]").detail("ts=4"),
            ];
            let report = Linter::new().lint(&events);
            assert_eq!(report.violations.len(), 1, "begin {begin_detail}");
            assert_eq!(
                report.violations[0].kind,
                ViolationKind::SnapshotReadOutsideSnapshotTxn
            );
        }
    }

    /// The `COLOCK_NO_MVCC` fallback reader begins `readonly-locking` and
    /// reads through ordinary S locks — that is legal, not a violation.
    #[test]
    fn readonly_locking_fallback_may_lock() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("readonly-locking"),
            grant(2, 7, "db:d", "IS", RuleTag::AncestorIntent),
            ev(3, EventKind::Release, 7).resource("db:d").mode("IS"),
            ev(4, EventKind::TxnCommit, 7),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
    }

    /// Ring-wraparound tolerance extends to the snapshot rules: a lock event
    /// from a txn whose begin is outside the window is not flagged.
    #[test]
    fn snapshot_rules_skip_unbegun_txns() {
        let events = vec![ev(2, EventKind::SnapshotRead, 7).resource("cells[c1]").detail("ts=4")];
        assert!(Linter::new().lint(&events).is_clean());
    }

    #[test]
    fn render_with_context_appends_timelines() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d/seg:s/rel:r/obj:k", "X", RuleTag::Target),
        ];
        let report = Linter::new().lint(&events);
        let rendered = report.render_with_context(&events);
        assert!(rendered.contains("missing-ancestor-intent"));
        assert!(rendered.contains("timeline of T7"));
    }

    /// A semantic Insert on the container licenses an element X below it
    /// without an IX conversion (`satisfies_parent_intent`): the protocol's
    /// commutativity win must lint clean.
    #[test]
    fn semantic_insert_licenses_element_x_below() {
        let obj = "db:d/seg:s/rel:r/obj:k";
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d", "IX", RuleTag::AncestorIntent),
            grant(3, 7, "db:d/seg:s", "IX", RuleTag::AncestorIntent),
            grant(4, 7, "db:d/seg:s/rel:r", "IX", RuleTag::AncestorIntent),
            grant(5, 7, obj, "IX", RuleTag::AncestorIntent),
            grant(6, 7, &format!("{obj}/attr:members"), "IN", RuleTag::AncestorIntent),
            grant(7, 7, &format!("{obj}/attr:members/elem:9"), "X", RuleTag::Target),
            ev(8, EventKind::TxnCommit, 7),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
    }

    /// A Member grant on the container does *not* license element writes —
    /// it reads like IS, so an X below still demands a write intent.
    #[test]
    fn member_does_not_license_element_x() {
        let obj = "db:d/seg:s/rel:r/obj:k";
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d", "IX", RuleTag::AncestorIntent),
            grant(3, 7, "db:d/seg:s", "IX", RuleTag::AncestorIntent),
            grant(4, 7, "db:d/seg:s/rel:r", "IX", RuleTag::AncestorIntent),
            grant(5, 7, obj, "IX", RuleTag::AncestorIntent),
            grant(6, 7, &format!("{obj}/attr:members"), "MB", RuleTag::AncestorIntent),
            grant(7, 7, &format!("{obj}/attr:members/elem:9"), "X", RuleTag::Target),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1, "{}", report.render());
        assert_eq!(report.violations[0].kind, ViolationKind::MissingAncestorIntent);
    }

    /// Mutation test: a manager granting an Insert and a Member that touch
    /// the *same element key* hands out X and S on the same element
    /// resource concurrently — the linter must flag the collision.
    #[test]
    fn conflicting_insert_member_on_same_element_key_is_flagged() {
        let obj = "db:d/seg:s/rel:r/obj:k";
        let elem = format!("{obj}/attr:members/elem:9");
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            ev(2, EventKind::TxnBegin, 8).detail("short"),
            grant(3, 7, obj, "IN", RuleTag::None),
            grant(4, 8, obj, "MB", RuleTag::None),
            // T7 inserts element 9 (X), the buggy manager then grants T8's
            // membership probe (S) on the same element while X is live.
            grant(5, 7, &elem, "X", RuleTag::None),
            grant(6, 8, &elem, "S", RuleTag::None),
        ];
        let report = Linter::new().lint(&events);
        let kinds: Vec<ViolationKind> = report.violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![ViolationKind::ConflictingGrants], "{}", report.render());
        assert!(report.violations[0].detail.contains("T7 holds X"), "{}", report.render());
    }

    /// Commuting Inserts on the same container with *distinct* element keys
    /// lint clean: the container grants commute and the element X locks are
    /// disjoint.
    #[test]
    fn commuting_inserts_on_distinct_elements_lint_clean() {
        let obj = "db:d/seg:s/rel:r/obj:k";
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            ev(2, EventKind::TxnBegin, 8).detail("short"),
            grant(3, 7, obj, "IN", RuleTag::None),
            grant(4, 8, obj, "IN", RuleTag::None),
            grant(5, 7, &format!("{obj}/attr:members/elem:1"), "X", RuleTag::None),
            grant(6, 8, &format!("{obj}/attr:members/elem:2"), "X", RuleTag::None),
            ev(7, EventKind::Release, 7).resource(format!("{obj}/attr:members/elem:1")).mode("X"),
            ev(8, EventKind::Release, 8).resource(format!("{obj}/attr:members/elem:2")).mode("X"),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
    }

    fn semantic_catalog() -> Catalog {
        use colock_nf2::types::shorthand::*;
        use colock_nf2::{DatabaseBuilder, RelationBuilder};
        let db = DatabaseBuilder::new("d")
            .segment("s")
            .relation(
                RelationBuilder::new("cells", "s")
                    .attr("cell_id", str_())
                    // Keyed tuple elements: admits semantic modes.
                    .attr("objs", set(tuple(vec![attr("obj_id", str_()), attr("nm", str_())])))
                    // Real elements carry no derivable key: rejected.
                    .attr("scores", set(real_()))
                    .finish(),
            )
            .finish()
            .expect("schema validates");
        Catalog::new(db).expect("catalog builds")
    }

    /// Mutation case for the PR 9 planner contract: a semantic mode used on
    /// an attribute whose schema `admits_semantic_modes` rejects must be
    /// flagged — on every semantic mode — while an admitted path stays clean
    /// and a schema-free linter leaves admission unchecked.
    #[test]
    fn semantic_mode_on_non_admitting_schema_is_flagged() {
        let linter = Linter::with_catalog(&semantic_catalog());
        let ok = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d/seg:s/rel:cells/obj:k/objs", "IN", RuleTag::None),
        ];
        let report = linter.lint(&ok);
        assert!(report.is_clean(), "{}", report.render());
        for mode in ["MB", "IN", "DL"] {
            let bad = vec![
                ev(1, EventKind::TxnBegin, 7).detail("short"),
                grant(2, 7, "db:d/seg:s/rel:cells/obj:k/scores", mode, RuleTag::None),
            ];
            let report = linter.lint(&bad);
            let kinds: Vec<ViolationKind> =
                report.violations.iter().map(|v| v.kind).collect();
            assert_eq!(
                kinds,
                vec![ViolationKind::SemanticModeNotAdmitted],
                "{mode}: {}",
                report.render()
            );
            assert!(report.violations[0].detail.contains("scores"), "{}", report.render());
            // Schema-free linting cannot check admission.
            assert!(Linter::new().lint(&bad).is_clean());
        }
        // A semantic grant that names no container attribute at all.
        let bad = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "db:d/seg:s/rel:cells/obj:k", "IN", RuleTag::None),
        ];
        let report = linter.lint(&bad);
        assert_eq!(report.violations.len(), 1, "{}", report.render());
        assert_eq!(report.violations[0].kind, ViolationKind::SemanticModeNotAdmitted);
    }

    /// The dotted path skips `elem:` components: a nested container below a
    /// keyed element is resolved as `objs.inner`, not flagged as unknown.
    #[test]
    fn semantic_admission_resolves_through_element_components() {
        use colock_nf2::types::shorthand::*;
        use colock_nf2::{DatabaseBuilder, RelationBuilder};
        let db = DatabaseBuilder::new("d")
            .segment("s")
            .relation(
                RelationBuilder::new("cells", "s")
                    .attr("cell_id", str_())
                    .attr(
                        "objs",
                        set(tuple(vec![
                            attr("obj_id", str_()),
                            attr("tags", set(str_())),   // admitted (string elements)
                            attr("weights", list(real_())), // rejected (no key)
                        ])),
                    )
                    .finish(),
            )
            .finish()
            .expect("schema validates");
        let linter = Linter::with_catalog(&Catalog::new(db).expect("catalog builds"));
        let base = "db:d/seg:s/rel:cells/obj:k/objs/[e1]";
        let ok = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, &format!("{base}/tags"), "IN", RuleTag::None),
        ];
        assert!(linter.lint(&ok).is_clean(), "{}", linter.lint(&ok).render());
        let bad = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, &format!("{base}/weights"), "DL", RuleTag::None),
        ];
        let report = linter.lint(&bad);
        assert_eq!(report.violations.len(), 1, "{}", report.render());
        assert_eq!(report.violations[0].kind, ViolationKind::SemanticModeNotAdmitted);
        assert!(report.violations[0].detail.contains("objs.weights"), "{}", report.render());
    }

    /// Mutation case for rules 1/2 over the semantic row: an `Insert` on the
    /// container requires IX-strength intent on every ancestor — an IS chain
    /// (or a bare chain) must be flagged, an IX chain passes, and a sibling
    /// `Insert` on the *parent* container satisfies the requirement too
    /// (`satisfies_parent_intent`).
    #[test]
    fn insert_without_parent_ix_is_flagged() {
        let container = "db:d/seg:s/rel:r/obj:k/members";
        let chain = |m: &str, seq0: u64| {
            vec![
                grant(seq0, 7, "db:d", m, RuleTag::AncestorIntent),
                grant(seq0 + 1, 7, "db:d/seg:s", m, RuleTag::AncestorIntent),
                grant(seq0 + 2, 7, "db:d/seg:s/rel:r", m, RuleTag::AncestorIntent),
                grant(seq0 + 3, 7, "db:d/seg:s/rel:r/obj:k", m, RuleTag::AncestorIntent),
            ]
        };
        // IS ancestors do not license an Insert below.
        let mut events = vec![ev(1, EventKind::TxnBegin, 7).detail("short")];
        events.extend(chain("IS", 2));
        events.push(grant(6, 7, container, "IN", RuleTag::Target));
        let report = Linter::new().lint(&events);
        let kinds: Vec<ViolationKind> = report.violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![ViolationKind::MissingAncestorIntent], "{}", report.render());
        assert!(report.violations[0].detail.contains("requires IX"), "{}", report.render());

        // No ancestor intent at all is flagged at the database root.
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, container, "IN", RuleTag::Target),
        ];
        let report = Linter::new().lint(&events);
        assert_eq!(report.violations.len(), 1, "{}", report.render());
        assert_eq!(report.violations[0].kind, ViolationKind::MissingAncestorIntent);
        assert!(report.violations[0].detail.contains("`db:d` holds NL"), "{}", report.render());

        // An IX chain licenses it.
        let mut events = vec![ev(1, EventKind::TxnBegin, 7).detail("short")];
        events.extend(chain("IX", 2));
        events.push(grant(6, 7, container, "IN", RuleTag::Target));
        assert!(Linter::new().lint(&events).is_clean());

        // A semantic Insert on the parent container announces descendant
        // writes as loudly as IX: an element X below needs no conversion.
        let mut events = vec![ev(1, EventKind::TxnBegin, 7).detail("short")];
        events.extend(chain("IX", 2));
        events.push(grant(6, 7, container, "IN", RuleTag::Target));
        events.push(grant(7, 7, &format!("{container}/[9]"), "X", RuleTag::Target));
        assert!(Linter::new().lint(&events).is_clean());
    }

    /// Sequential reuse of a resource by incompatible modes is clean as long
    /// as the release separates them — and a re-begun incarnation drops any
    /// holdings its killed predecessor never released.
    #[test]
    fn conflicting_grants_respects_releases_and_incarnations() {
        let events = vec![
            ev(1, EventKind::TxnBegin, 7).detail("short"),
            grant(2, 7, "r", "X", RuleTag::None),
            ev(3, EventKind::Release, 7).resource("r").mode("X"),
            ev(4, EventKind::TxnBegin, 8).detail("short"),
            grant(5, 8, "r", "X", RuleTag::None),
            // T8 is killed (no release traced); its re-begun incarnation
            // must not leave a phantom X behind.
            ev(6, EventKind::TxnBegin, 8).detail("short"),
            grant(7, 8, "q", "S", RuleTag::None),
            ev(8, EventKind::TxnBegin, 9).detail("short"),
            grant(9, 9, "r", "X", RuleTag::None),
        ];
        let report = Linter::new().lint(&events);
        assert!(report.is_clean(), "{}", report.render());
    }
}
