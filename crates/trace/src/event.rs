//! The structured event record and its two enums: what happened
//! ([`EventKind`]) and which protocol rule caused it ([`RuleTag`]).

use std::fmt;

/// Why a trace line failed to parse. The conformance linter consumes trace
/// files, so a torn or corrupted line must surface as a typed error rather
/// than being silently skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line does not have the nine tab-separated fields of
    /// [`Event::to_line`].
    FieldCount {
        /// How many fields the line actually had.
        got: usize,
    },
    /// A numeric header field (`seq`, `t_us`, `txn`, `shard`) did not parse.
    BadNumber {
        /// Which field was malformed.
        field: &'static str,
        /// The offending text.
        value: String,
    },
    /// The `kind` field names no [`EventKind`].
    UnknownKind(String),
    /// The `rule` field names no [`RuleTag`].
    UnknownRule(String),
    /// A payload field (`mode`, `resource`, `detail`) contains an
    /// incomplete or unknown backslash escape — the classic symptom of a
    /// line torn mid-write.
    BadEscape {
        /// Which field was malformed.
        field: &'static str,
        /// The offending (still escaped) text.
        value: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::FieldCount { got } => {
                write!(f, "expected 9 tab-separated fields, got {got}")
            }
            ParseError::BadNumber { field, value } => {
                write!(f, "field `{field}` is not a number: {value:?}")
            }
            ParseError::UnknownKind(s) => write!(f, "unknown event kind {s:?}"),
            ParseError::UnknownRule(s) => write!(f, "unknown rule tag {s:?}"),
            ParseError::BadEscape { field, value } => {
                write!(f, "field `{field}` has a bad escape sequence: {value:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Escapes tabs, newlines, carriage returns and backslashes so a payload
/// field can never break the tab-separated line format.
fn escape_field(s: &str) -> String {
    if !s.contains(['\t', '\n', '\r', '\\']) {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_field`]; rejects dangling or unknown escapes.
fn unescape_field(s: &str, field: &'static str) -> Result<String, ParseError> {
    if !s.contains('\\') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return Err(ParseError::BadEscape { field, value: s.to_string() }),
        }
    }
    Ok(out)
}

/// What happened, from the lock manager's or transaction manager's point of
/// view.
///
/// The first eight variants are emitted by `colock-lockmgr`; the `Txn*`
/// variants by `colock-txn`. Every variant is documented in DESIGN.md §6
/// together with the field conventions of the events that carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EventKind {
    /// A lock was requested (emitted before the grant/wait decision).
    #[default]
    Request,
    /// A lock was granted. `detail` distinguishes `immediate`,
    /// `already-held`, `after-wait`, `recovered`, and `fastpath`
    /// (optimistic summary-word CAS) grants.
    Grant,
    /// The requester enqueued as a waiter and is about to block.
    Wait,
    /// The lock manager granted a parked waiter and signalled its condvar.
    /// The matching [`EventKind::Grant`] is emitted by the woken thread.
    Wakeup,
    /// The request is an upgrade of a mode the transaction already holds
    /// (e.g. S→X). Followed by a `Grant` or `Wait` for the joined mode.
    Conversion,
    /// The snapshot detector found a waits-for cycle. `txn` is 0; `detail`
    /// lists the cycle members. Exactly one per detected cycle, immediately
    /// followed by its [`EventKind::VictimChosen`] — unless every member
    /// turned runnable between snapshot and marking, in which case the event
    /// carries `resource = "stale"` and no victim follows.
    DeadlockDetected,
    /// The youngest markable member of a detected cycle was chosen as the
    /// victim; `txn` is the victim.
    VictimChosen,
    /// A granted lock was removed from the table.
    Release,
    /// A transaction began (`detail` holds its kind, `short`/`long`).
    TxnBegin,
    /// A transaction committed.
    TxnCommit,
    /// A transaction aborted (voluntarily or as a deadlock victim).
    TxnAbort,
    /// A long transaction released its target subtree early (paper §4.4.2
    /// rule 5 shrinking phase).
    TxnReleaseEarly,
    /// A long transaction was re-adopted after a crash: journal replay found
    /// its surviving long locks and recovery re-created its state (`detail`
    /// holds the lock count).
    TxnRecovered,
    /// A read-only snapshot transaction read a target through the
    /// multiversion overlay without acquiring any lock (`detail` holds the
    /// snapshot timestamp).
    SnapshotRead,
    /// A server session was admitted (`colock-server`). `txn` is 0 — a
    /// session is not a transaction; the session id and peer address travel
    /// in `detail`, so the conformance linter ignores these events.
    SessionOpen,
    /// A server session ended (QUIT, idle timeout, error, or drain).
    /// `txn` is 0; `detail` holds the session id and the close reason.
    SessionClose,
}

impl EventKind {
    /// Stable short name used in the wire format and explain output.
    ///
    /// ```
    /// assert_eq!(colock_trace::EventKind::DeadlockDetected.as_str(), "deadlock");
    /// ```
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Request => "request",
            EventKind::Grant => "grant",
            EventKind::Wait => "wait",
            EventKind::Wakeup => "wakeup",
            EventKind::Conversion => "conversion",
            EventKind::DeadlockDetected => "deadlock",
            EventKind::VictimChosen => "victim",
            EventKind::Release => "release",
            EventKind::TxnBegin => "begin",
            EventKind::TxnCommit => "commit",
            EventKind::TxnAbort => "abort",
            EventKind::TxnReleaseEarly => "release-early",
            EventKind::TxnRecovered => "recovered",
            EventKind::SnapshotRead => "snapshot-read",
            EventKind::SessionOpen => "session-open",
            EventKind::SessionClose => "session-close",
        }
    }

    /// Inverse of [`EventKind::as_str`]; `None` for unknown names.
    ///
    /// ```
    /// use colock_trace::EventKind;
    /// assert_eq!(EventKind::parse("wakeup"), Some(EventKind::Wakeup));
    /// assert_eq!(EventKind::parse("nope"), None);
    /// ```
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "request" => EventKind::Request,
            "grant" => EventKind::Grant,
            "wait" => EventKind::Wait,
            "wakeup" => EventKind::Wakeup,
            "conversion" => EventKind::Conversion,
            "deadlock" => EventKind::DeadlockDetected,
            "victim" => EventKind::VictimChosen,
            "release" => EventKind::Release,
            "begin" => EventKind::TxnBegin,
            "commit" => EventKind::TxnCommit,
            "abort" => EventKind::TxnAbort,
            "release-early" => EventKind::TxnReleaseEarly,
            "recovered" => EventKind::TxnRecovered,
            "snapshot-read" => EventKind::SnapshotRead,
            "session-open" => EventKind::SessionOpen,
            "session-close" => EventKind::SessionClose,
            _ => return None,
        })
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which §4.4.2 protocol rule (or engine mechanism) produced a lock request.
///
/// The proposed protocol of the paper locks a lot more than the target the
/// caller named — ancestor intents, entry points of referenced subobjects,
/// weakened entry locks under rule 4′. The tag travels with every event the
/// lock manager emits so `trace-explain` can say *why* each lock exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RuleTag {
    /// No protocol context (direct `LockManager` call, tests, recovery).
    #[default]
    None,
    /// The lock the caller asked for, on the named target (rules 3 and 4,
    /// first half: explicit lock on the root of the requested subtree).
    Target,
    /// Implicit upward propagation: an intent lock on an ancestor of the
    /// target, acquired root-to-leaf before the target lock (rules 1, 2 and
    /// 5: every superunit of a locked unit carries an intent).
    AncestorIntent,
    /// Implicit downward propagation: a lock on the entry point of a
    /// referenced (shared or non-disjoint) subobject (rules 3 and 4, second
    /// half: S/X on the target propagates to entry points of inner units).
    EntryPoint,
    /// Rule 4′: the entry-point lock was weakened from X to S because the
    /// authorization environment forbids modifying the referenced relation.
    EntryPointNonModifiable,
    /// The naive-DAG comparison protocol's reverse scan that locks all
    /// parents of a shared unit before locking the unit itself.
    AllParentsScan,
    /// The whole-object comparison protocol's single coarse lock at the
    /// object (or relation) root.
    WholeObject,
    /// The tuple-level comparison protocol's per-tuple ancestor intents.
    TupleIntent,
    /// The tuple-level comparison protocol's lock on one tuple.
    Tuple,
    /// Lock taken (or re-taken) by the escalation/de-escalation optimizer,
    /// not by a protocol rule.
    Escalation,
    /// Lock re-installed by recovery (`install_recovered`).
    Recovered,
}

impl RuleTag {
    /// Stable short name used in the wire format and explain output.
    ///
    /// ```
    /// assert_eq!(colock_trace::RuleTag::AncestorIntent.as_str(), "ancestor-intent");
    /// ```
    pub fn as_str(self) -> &'static str {
        match self {
            RuleTag::None => "-",
            RuleTag::Target => "target",
            RuleTag::AncestorIntent => "ancestor-intent",
            RuleTag::EntryPoint => "entry-point",
            RuleTag::EntryPointNonModifiable => "entry-point-nonmod",
            RuleTag::AllParentsScan => "all-parents-scan",
            RuleTag::WholeObject => "whole-object",
            RuleTag::TupleIntent => "tuple-intent",
            RuleTag::Tuple => "tuple",
            RuleTag::Escalation => "escalation",
            RuleTag::Recovered => "recovered",
        }
    }

    /// Inverse of [`RuleTag::as_str`]; `None` for unknown names.
    ///
    /// ```
    /// use colock_trace::RuleTag;
    /// assert_eq!(RuleTag::parse("entry-point-nonmod"), Some(RuleTag::EntryPointNonModifiable));
    /// ```
    pub fn parse(s: &str) -> Option<RuleTag> {
        Some(match s {
            "-" => RuleTag::None,
            "target" => RuleTag::Target,
            "ancestor-intent" => RuleTag::AncestorIntent,
            "entry-point" => RuleTag::EntryPoint,
            "entry-point-nonmod" => RuleTag::EntryPointNonModifiable,
            "all-parents-scan" => RuleTag::AllParentsScan,
            "whole-object" => RuleTag::WholeObject,
            "tuple-intent" => RuleTag::TupleIntent,
            "tuple" => RuleTag::Tuple,
            "escalation" => RuleTag::Escalation,
            "recovered" => RuleTag::Recovered,
            _ => return None,
        })
    }

    /// One-line human explanation, phrased against the paper's §4.4.2 rules.
    /// Used verbatim by `trace-explain`.
    ///
    /// ```
    /// assert!(colock_trace::RuleTag::Target.describe().contains("rules 3/4"));
    /// ```
    pub fn describe(self) -> &'static str {
        match self {
            RuleTag::None => "no protocol context (direct lock-manager call)",
            RuleTag::Target => "explicit lock on the requested target (rules 3/4, first half)",
            RuleTag::AncestorIntent => {
                "implicit upward propagation: intent on a superunit of the target (rules 1/2/5)"
            }
            RuleTag::EntryPoint => {
                "implicit downward propagation: lock on the entry point of a referenced inner unit (rules 3/4, second half)"
            }
            RuleTag::EntryPointNonModifiable => {
                "rule 4': entry-point lock weakened to S because the subject may not modify the referenced relation"
            }
            RuleTag::AllParentsScan => {
                "naive-DAG comparison protocol: reverse scan locking every parent of a shared unit"
            }
            RuleTag::WholeObject => {
                "whole-object comparison protocol: one coarse lock at the object root"
            }
            RuleTag::TupleIntent => {
                "tuple-level comparison protocol: ancestor intent for a single tuple"
            }
            RuleTag::Tuple => "tuple-level comparison protocol: lock on one tuple",
            RuleTag::Escalation => "lock escalation/de-escalation optimizer, not a protocol rule",
            RuleTag::Recovered => "lock re-installed by recovery",
        }
    }
}

impl fmt::Display for RuleTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One traced occurrence: a fixed header (sequence number, microsecond
/// timestamp, kind, transaction) plus stringly-typed context fields that keep
/// this crate dependency-free.
///
/// Events are built with the consuming setters and serialized with
/// [`Event::to_line`] / [`Event::parse_line`]:
///
/// ```
/// use colock_trace::{Event, EventKind, RuleTag};
/// let e = Event::new(EventKind::Grant, 3)
///     .shard(5)
///     .mode("IX")
///     .rule(RuleTag::AncestorIntent)
///     .resource("db:db1/rel:cells")
///     .detail("immediate");
/// let parsed = Event::parse_line(&e.to_line()).unwrap();
/// assert_eq!(parsed, e);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Event {
    /// Monotonic sequence number, assigned by the ring buffer at record
    /// time (0 until recorded). Gaps after wraparound are expected.
    pub seq: u64,
    /// Microseconds since the process's trace epoch (first buffer use).
    pub t_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Raw transaction id (`TxnId.0`); 0 when no single txn applies.
    pub txn: u64,
    /// Lock-table shard index, or 0 for non-lockmgr events.
    pub shard: u32,
    /// Lock mode as printed by `LockMode`'s `Display` (empty when n/a).
    pub mode: String,
    /// Protocol rule that caused the request (see [`RuleTag`]).
    pub rule: RuleTag,
    /// Resource key, `Debug`-formatted (empty when n/a).
    pub resource: String,
    /// Free-form qualifier (grant path, cycle members, txn kind, ...).
    pub detail: String,
}

impl Event {
    /// Starts an event of the given kind for the given raw txn id.
    pub fn new(kind: EventKind, txn: u64) -> Event {
        Event { kind, txn, ..Event::default() }
    }

    /// Sets the lock-table shard index.
    pub fn shard(mut self, shard: u32) -> Event {
        self.shard = shard;
        self
    }

    /// Sets the lock mode string.
    pub fn mode(mut self, mode: impl Into<String>) -> Event {
        self.mode = mode.into();
        self
    }

    /// Sets the protocol-rule tag.
    pub fn rule(mut self, rule: RuleTag) -> Event {
        self.rule = rule;
        self
    }

    /// Sets the resource key string.
    pub fn resource(mut self, resource: impl Into<String>) -> Event {
        self.resource = resource.into();
        self
    }

    /// Sets the free-form detail string.
    pub fn detail(mut self, detail: impl Into<String>) -> Event {
        self.detail = detail.into();
        self
    }

    /// Serializes to one tab-separated line:
    /// `seq  t_us  kind  txn  shard  mode  rule  resource  detail`.
    ///
    /// Tabs, newlines, carriage returns and backslashes inside the payload
    /// fields (`mode`, `resource`, `detail`) are backslash-escaped so the
    /// round-trip through [`Event::parse_line`] is lossless.
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.seq,
            self.t_us,
            self.kind,
            self.txn,
            self.shard,
            escape_field(&self.mode),
            self.rule,
            escape_field(&self.resource),
            escape_field(&self.detail),
        )
    }

    /// Parses a line produced by [`Event::to_line`]; malformed input yields
    /// a typed [`ParseError`] naming the defect, so consumers (the
    /// conformance linter in particular) can distinguish a torn line from
    /// an empty stream.
    ///
    /// ```
    /// use colock_trace::{Event, ParseError};
    /// assert!(matches!(
    ///     Event::parse_line("not an event"),
    ///     Err(ParseError::FieldCount { got: 1 })
    /// ));
    /// ```
    pub fn parse_line(line: &str) -> Result<Event, ParseError> {
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 9 {
            return Err(ParseError::FieldCount { got: fields.len() });
        }
        let number = |field: &'static str, value: &str| {
            value
                .parse::<u64>()
                .map_err(|_| ParseError::BadNumber { field, value: value.to_string() })
        };
        let seq = number("seq", fields[0])?;
        let t_us = number("t_us", fields[1])?;
        let kind = EventKind::parse(fields[2])
            .ok_or_else(|| ParseError::UnknownKind(fields[2].to_string()))?;
        let txn = number("txn", fields[3])?;
        let shard = number("shard", fields[4])? as u32;
        let mode = unescape_field(fields[5], "mode")?;
        let rule = RuleTag::parse(fields[6])
            .ok_or_else(|| ParseError::UnknownRule(fields[6].to_string()))?;
        let resource = unescape_field(fields[7], "resource")?;
        let detail = unescape_field(fields[8], "detail")?;
        Ok(Event { seq, t_us, kind, txn, shard, mode, rule, resource, detail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for k in [
            EventKind::Request,
            EventKind::Grant,
            EventKind::Wait,
            EventKind::Wakeup,
            EventKind::Conversion,
            EventKind::DeadlockDetected,
            EventKind::VictimChosen,
            EventKind::Release,
            EventKind::TxnBegin,
            EventKind::TxnCommit,
            EventKind::TxnAbort,
            EventKind::TxnReleaseEarly,
            EventKind::TxnRecovered,
            EventKind::SnapshotRead,
            EventKind::SessionOpen,
            EventKind::SessionClose,
        ] {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
    }

    #[test]
    fn rule_roundtrip() {
        for r in [
            RuleTag::None,
            RuleTag::Target,
            RuleTag::AncestorIntent,
            RuleTag::EntryPoint,
            RuleTag::EntryPointNonModifiable,
            RuleTag::AllParentsScan,
            RuleTag::WholeObject,
            RuleTag::TupleIntent,
            RuleTag::Tuple,
            RuleTag::Escalation,
            RuleTag::Recovered,
        ] {
            assert_eq!(RuleTag::parse(r.as_str()), Some(r));
            assert!(!r.describe().is_empty());
        }
    }

    #[test]
    fn line_roundtrip_is_lossless_for_hostile_payloads() {
        // Tabs, newlines, carriage returns and backslashes in payload
        // fields must survive the wire format verbatim.
        let e = Event::new(EventKind::Wait, 7)
            .mode("S\\X")
            .resource("a\tb\\c")
            .detail("c\nd\re\\\\f");
        let line = e.to_line();
        assert_eq!(line.matches('\t').count(), 8, "payload tabs must be escaped");
        assert!(!line.contains('\n'), "payload newlines must be escaped");
        let parsed = Event::parse_line(&line).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn torn_lines_yield_typed_errors() {
        let good = Event::new(EventKind::Grant, 3)
            .mode("IX")
            .resource("db:db1/rel:cells")
            .detail("immediate")
            .to_line();
        // Truncation (torn write) drops fields.
        let torn = &good[..good.rfind('\t').unwrap()];
        assert_eq!(Event::parse_line(torn), Err(ParseError::FieldCount { got: 8 }));
        // A raw (unescaped) tab inside a payload field changes the count.
        let extra = good.replace("immediate", "imme\tdiate");
        assert_eq!(Event::parse_line(&extra), Err(ParseError::FieldCount { got: 10 }));
        // A dangling escape at end-of-line is rejected, not silently eaten.
        let dangling = format!("{}\\", good);
        assert!(matches!(
            Event::parse_line(&dangling),
            Err(ParseError::BadEscape { field: "detail", .. })
        ));
        // Unknown enum names are typed too.
        let bad_kind = good.replace("grant", "grunt");
        assert_eq!(Event::parse_line(&bad_kind), Err(ParseError::UnknownKind("grunt".into())));
        let bad_rule = good.replacen("\t-\t", "\trule9\t", 1);
        assert_eq!(Event::parse_line(&bad_rule), Err(ParseError::UnknownRule("rule9".into())));
        let bad_seq = format!("x{good}");
        assert!(matches!(
            Event::parse_line(&bad_seq),
            Err(ParseError::BadNumber { field: "seq", .. })
        ));
    }
}
