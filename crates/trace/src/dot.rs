//! Graphviz (DOT) export of a waits-for graph, captured by the deadlock
//! detector at detection time.

/// One waits-for edge: `waiter` is blocked on `holder`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// Raw id of the blocked transaction.
    pub waiter: u64,
    /// Raw id of the transaction it waits on.
    pub holder: u64,
    /// Resource the waiter is queued on (edge label).
    pub resource: String,
    /// Mode the waiter requested (edge label).
    pub mode: String,
}

/// A waits-for graph snapshot, with the detected cycle and chosen victim
/// highlighted in the rendered DOT.
///
/// ```
/// use colock_trace::{WaitEdge, WaitsForGraph};
/// let g = WaitsForGraph {
///     edges: vec![
///         WaitEdge { waiter: 1, holder: 2, resource: "rel:a".into(), mode: "X".into() },
///         WaitEdge { waiter: 2, holder: 1, resource: "rel:b".into(), mode: "X".into() },
///     ],
///     cycle: vec![1, 2],
///     victim: Some(2),
/// };
/// let dot = g.to_dot();
/// assert!(dot.starts_with("digraph waits_for {"));
/// assert!(dot.contains("\"T1\" -> \"T2\""));
/// assert!(dot.contains("T2") && dot.contains("victim"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitsForGraph {
    /// Every waits-for edge present when the cycle was found (the whole
    /// graph, not just the cycle).
    pub edges: Vec<WaitEdge>,
    /// Raw txn ids forming the detected cycle.
    pub cycle: Vec<u64>,
    /// The cycle member chosen for abort, if one was markable.
    pub victim: Option<u64>,
}

impl WaitsForGraph {
    /// Renders the graph as a Graphviz `digraph`. Cycle members are drawn
    /// as red ellipses, the victim as a red double ellipse, and each edge
    /// is labelled with the blocked request's mode and resource.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph waits_for {\n  rankdir=LR;\n");
        let mut nodes: Vec<u64> = self
            .edges
            .iter()
            .flat_map(|e| [e.waiter, e.holder])
            .chain(self.cycle.iter().copied())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        for n in nodes {
            let in_cycle = self.cycle.contains(&n);
            let is_victim = self.victim == Some(n);
            let attrs = match (in_cycle, is_victim) {
                (_, true) => " [color=red, peripheries=2, label=\"T{n}\\n(victim)\"]",
                (true, false) => " [color=red]",
                (false, false) => "",
            };
            out.push_str(&format!("  \"T{n}\"{};\n", attrs.replace("{n}", &n.to_string())));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  \"T{}\" -> \"T{}\" [label=\"{} {}\"];\n",
                e.waiter,
                e.holder,
                escape(&e.mode),
                escape(&e.resource)
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Escapes a string for use inside a double-quoted DOT label.
///
/// Backslashes and double quotes are backslash-escaped; literal newlines,
/// carriage returns and tabs become the two-character sequences `\n`, `\r`
/// and `\t` (which Graphviz renders as line breaks / whitespace instead of
/// terminating the attribute). Percent-escaped path components (`%22`,
/// `%7B`, …) are valid inside a quoted DOT string and pass through
/// unchanged, so an escaped label round-trips via [`dot_unescape`].
///
/// ```
/// use colock_trace::{dot_escape, dot_unescape};
/// let hostile = "rel:a\"b/obj:%22\nelem:c\\d";
/// let esc = dot_escape(hostile);
/// assert!(!esc.contains('\n'));
/// assert_eq!(dot_unescape(&esc), hostile);
/// ```
pub fn dot_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`dot_escape`]: decodes the backslash sequences it emits.
/// Unknown escape sequences keep their literal character (as Graphviz does).
pub fn dot_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(c) => out.push(c),
            None => out.push('\\'),
        }
    }
    out
}

fn escape(s: &str) -> String {
    dot_escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = WaitsForGraph {
            edges: vec![
                WaitEdge { waiter: 3, holder: 7, resource: "r1".into(), mode: "IX".into() },
                WaitEdge { waiter: 7, holder: 3, resource: "r2".into(), mode: "S".into() },
                WaitEdge { waiter: 9, holder: 3, resource: "r2".into(), mode: "X".into() },
            ],
            cycle: vec![3, 7],
            victim: Some(7),
        };
        let dot = g.to_dot();
        for t in ["\"T3\"", "\"T7\"", "\"T9\""] {
            assert!(dot.contains(t), "{dot}");
        }
        assert!(dot.contains("\"T3\" -> \"T7\" [label=\"IX r1\"]"));
        assert!(dot.contains("peripheries=2"));
        // Non-cycle node 9 must not be red.
        let t9_line = dot.lines().find(|l| l.contains("\"T9\"") && !l.contains("->")).unwrap();
        assert!(!t9_line.contains("red"));
    }

    #[test]
    fn labels_are_escaped() {
        let g = WaitsForGraph {
            edges: vec![WaitEdge {
                waiter: 1,
                holder: 2,
                resource: "a\"b".into(),
                mode: "X".into(),
            }],
            cycle: vec![],
            victim: None,
        };
        assert!(g.to_dot().contains("a\\\"b"));
    }

    #[test]
    fn hostile_labels_stay_inside_quotes() {
        // Quotes, %-escaped components, newlines and backslashes must all
        // survive inside one double-quoted label: no raw `"` or newline may
        // leak into the DOT structure.
        let g = WaitsForGraph {
            edges: vec![WaitEdge {
                waiter: 1,
                holder: 2,
                resource: "rel:a\"b/obj:%22%7B\nelem:c\\d".into(),
                mode: "X".into(),
            }],
            cycle: vec![],
            victim: None,
        };
        let dot = g.to_dot();
        let label_line = dot.lines().find(|l| l.contains("->")).unwrap();
        // Every `"` on the edge line is either a node-name delimiter, the
        // label delimiter, or escaped — count unescaped quotes: exactly 6
        // (2 per node name, 2 around the label).
        let mut unescaped = 0;
        let mut prev_backslash = false;
        for c in label_line.chars() {
            if c == '"' && !prev_backslash {
                unescaped += 1;
            }
            prev_backslash = c == '\\' && !prev_backslash;
        }
        assert_eq!(unescaped, 6, "{label_line}");
        // %-escapes pass through verbatim.
        assert!(label_line.contains("%22%7B"));
        // The literal newline was converted, not emitted.
        assert!(label_line.contains("\\n"));
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "plain",
            "rel:a\"b",
            "back\\slash",
            "multi\nline\r\n",
            "tab\there",
            "pct %22 %7B %n",
            "\\n already-escaped",
            "trailing backslash \\",
        ] {
            assert_eq!(dot_unescape(&dot_escape(s)), s, "round-trip of {s:?}");
            // The escaped form never contains raw quotes or line breaks.
            let esc = dot_escape(s);
            assert!(!esc.contains('\n') && !esc.contains('\r'));
            let mut prev = ' ';
            for c in esc.chars() {
                assert!(c != '"' || prev == '\\', "raw quote in {esc:?}");
                prev = c;
            }
        }
    }
}
