//! Power-of-two-bucket wait-time histograms, built from `Wait`→`Grant`
//! event pairs.

use crate::event::{Event, EventKind};
use std::collections::BTreeMap;

/// Number of buckets: bucket `i` counts waits in `[2^i, 2^(i+1))` µs
/// (bucket 0 also absorbs sub-microsecond waits, the last bucket absorbs
/// everything ≥ 2^31 µs ≈ 36 min).
pub const BUCKETS: usize = 32;

/// A histogram of wait durations with power-of-two microsecond buckets.
///
/// ```
/// use colock_trace::WaitHistogram;
/// let mut h = WaitHistogram::default();
/// h.record(3);    // 2–4 µs  → bucket 1
/// h.record(700);  // 512–1024 µs → bucket 9
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.max_us(), 700);
/// assert!(h.render("rel:cells").contains("<1024µs"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitHistogram {
    /// Per-bucket counts; see [`BUCKETS`] for the bucket boundaries.
    pub buckets: [u64; BUCKETS],
    /// Total waits recorded.
    pub count: u64,
    /// Sum of all recorded wait durations, µs.
    pub total_us: u64,
    /// Longest recorded wait, µs.
    pub max_us: u64,
}

/// Bucket index for a duration in microseconds.
fn bucket_of(us: u64) -> usize {
    (us.max(1).ilog2() as usize).min(BUCKETS - 1)
}

impl WaitHistogram {
    /// Records one wait of `us` microseconds.
    pub fn record(&mut self, us: u64) {
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &WaitHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_us += other.total_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Total waits recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean wait in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }

    /// Longest recorded wait in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Nearest-rank quantile in microseconds: the upper bound of the bucket
    /// holding the `⌈q·count⌉`-th wait, clamped to [`WaitHistogram::max_us`]
    /// (so the p100 of a histogram is exact, and low quantiles are bounded
    /// by the bucket resolution). Returns 0 when empty.
    ///
    /// ```
    /// use colock_trace::WaitHistogram;
    /// let mut h = WaitHistogram::default();
    /// for us in [3, 3, 3, 700] {
    ///     h.record(us);
    /// }
    /// assert_eq!(h.quantile_us(0.50), 4);    // bucket [2,4)
    /// assert_eq!(h.quantile_us(0.99), 700);  // bucket [512,1024) clamped to max
    /// assert_eq!(WaitHistogram::default().quantile_us(0.99), 0);
    /// ```
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let hi = if i + 1 >= 64 { u64::MAX } else { 1u64 << (i + 1) };
                // Clamp to the observed maximum only when one was recorded:
                // a histogram whose samples all landed in bucket 0 without
                // raising `max_us` (e.g. a single 0µs wait, or hand-built
                // bucket counts) must still report the bucket's upper bound
                // rather than collapsing every quantile to 0.
                return if self.max_us > 0 { hi.min(self.max_us) } else { hi };
            }
        }
        self.max_us
    }

    /// Renders an ASCII histogram titled with `label`: one `lo–hi  count
    /// bar` line per non-empty bucket plus a summary line.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!(
            "{label}: {} waits, mean {}µs, max {}µs\n",
            self.count,
            self.mean_us(),
            self.max_us
        );
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let hi = 1u64 << (i + 1);
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
            out.push_str(&format!("  {:>9} {:>6}  {}\n", format!("<{hi}µs"), n, bar));
        }
        out
    }
}

/// Pairs each `Wait` event with the requester's next `Grant` on the same
/// resource and accumulates the elapsed time into a per-resource histogram.
///
/// Waits that never resolve inside the event window (timeouts, deadlock
/// victims, buffer wraparound) are dropped. Events must be sorted by `seq`,
/// as [`crate::TraceBuffer::snapshot`] returns them.
///
/// ```
/// use colock_trace::{wait_histograms, Event, EventKind};
/// let mut w = Event::new(EventKind::Wait, 1).resource("r");
/// w.t_us = 100;
/// let mut g = Event::new(EventKind::Grant, 1).resource("r");
/// g.seq = 1;
/// g.t_us = 350;
/// let hists = wait_histograms(&[w, g]);
/// assert_eq!(hists["r"].count(), 1);
/// assert_eq!(hists["r"].mean_us(), 250);
/// ```
pub fn wait_histograms(events: &[Event]) -> BTreeMap<String, WaitHistogram> {
    let mut pending: BTreeMap<(u64, &str), u64> = BTreeMap::new();
    let mut hists: BTreeMap<String, WaitHistogram> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::Wait => {
                pending.insert((e.txn, e.resource.as_str()), e.t_us);
            }
            EventKind::Grant => {
                if let Some(start) = pending.remove(&(e.txn, e.resource.as_str())) {
                    hists
                        .entry(e.resource.clone())
                        .or_default()
                        .record(e.t_us.saturating_sub(start));
                }
            }
            _ => {}
        }
    }
    hists
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = WaitHistogram::default();
        a.record(10);
        let mut b = WaitHistogram::default();
        b.record(1000);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_us(), 1000);
        assert_eq!(a.total_us, 1012);
    }

    #[test]
    fn quantiles_track_distribution() {
        let mut h = WaitHistogram::default();
        // 90 fast waits (~8µs) and 10 slow ones (~5000µs).
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(5000);
        }
        assert_eq!(h.quantile_us(0.50), 16); // bucket [8,16)
        assert_eq!(h.quantile_us(0.90), 16);
        assert_eq!(h.quantile_us(0.95), 5000); // bucket [4096,8192) clamped to max
        assert_eq!(h.quantile_us(0.99), 5000);
        assert_eq!(h.quantile_us(1.0), 5000);
        // Quantiles survive a merge.
        let mut all = WaitHistogram::default();
        all.merge(&h);
        assert_eq!(all.quantile_us(0.99), h.quantile_us(0.99));
    }

    #[test]
    fn quantile_of_single_sample_is_exact() {
        let mut h = WaitHistogram::default();
        h.record(42);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 42);
        }
    }

    #[test]
    fn quantile_boundaries() {
        // Empty histogram: every quantile is 0.
        let empty = WaitHistogram::default();
        assert_eq!(empty.quantile_us(0.0), 0);
        assert_eq!(empty.quantile_us(1.0), 0);

        // A single 0µs wait lands in bucket 0 ([0,2)µs) without raising
        // max_us; q=1.0 must report the bucket's upper bound, not 0.
        let mut h = WaitHistogram::default();
        h.record(0);
        assert_eq!(h.quantile_us(0.0), 2);
        assert_eq!(h.quantile_us(1.0), 2);

        // Hand-built single-bucket counts (max_us never set, as a merge of
        // raw bucket data would produce): same rule, upper bound of the
        // populated bucket.
        let mut raw = WaitHistogram::default();
        raw.buckets[3] = 5; // [8,16)µs
        raw.count = 5;
        assert_eq!(raw.quantile_us(1.0), 16);
        assert_eq!(raw.quantile_us(0.0), 16);

        // q=0.0 on a multi-bucket histogram is the first sample's bucket.
        let mut multi = WaitHistogram::default();
        multi.record(3);
        multi.record(700);
        assert_eq!(multi.quantile_us(0.0), 4);
        assert_eq!(multi.quantile_us(1.0), 700);
        // Out-of-range q is clamped.
        assert_eq!(multi.quantile_us(-1.0), 4);
        assert_eq!(multi.quantile_us(2.0), 700);
    }

    #[test]
    fn unresolved_waits_are_dropped() {
        let mut w = Event::new(EventKind::Wait, 9).resource("r");
        w.t_us = 5;
        let hists = wait_histograms(&[w]);
        assert!(hists.is_empty());
    }
}
