#![forbid(unsafe_code)]
//! Structured lock-event tracing for the `colock` workspace.
//!
//! The crate provides (see DESIGN.md §6 for the full schema):
//!
//! * [`Event`] / [`EventKind`] / [`RuleTag`] — the structured record every
//!   instrumented code path emits, tagged with the §4.4.2 protocol rule
//!   that caused it,
//! * [`TraceBuffer`] — a fixed-capacity, overwrite-oldest ring buffer with
//!   a lock-free monotonic sequence counter,
//! * a process-global buffer behind an on/off switch ([`enable`],
//!   [`disable`], [`emit`]) that compiles down to one relaxed atomic load
//!   and a branch when tracing is off,
//! * [`WaitHistogram`] / [`wait_histograms`] — per-resource wait-time
//!   distributions with power-of-two buckets,
//! * [`WaitsForGraph`] — DOT export of the waits-for graph the deadlock
//!   detector saw,
//! * [`explain`] — replay of a captured trace into per-txn timelines.
//!
//! # Enabling tracing
//!
//! Tracing is off by default and costs one branch per instrumentation
//! point. Turn it on programmatically or from the environment:
//!
//! ```
//! colock_trace::enable();
//! let mark = colock_trace::current_seq();
//! // ... run transactions ...
//! let events = colock_trace::events_since(mark);
//! colock_trace::disable();
//! ```

#![warn(missing_docs)]

mod buffer;
mod dot;
mod event;
pub mod explain;
mod hist;

pub use buffer::TraceBuffer;
pub use dot::{dot_escape, dot_unescape, WaitEdge, WaitsForGraph};
pub use event::{Event, EventKind, ParseError, RuleTag};
pub use hist::{wait_histograms, WaitHistogram, BUCKETS};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global switch. `Relaxed` is enough: the only consequence of a stale
/// read is one dropped or one extra event around the toggle.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Default capacity of the global buffer (overridable with
/// `COLOCK_TRACE_CAP` before first use).
pub const DEFAULT_CAPACITY: usize = 65_536;

static GLOBAL: OnceLock<TraceBuffer> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Most recent deadlock DOT exports (newest last), capped.
static DEADLOCK_DOTS: Mutex<Vec<String>> = Mutex::new(Vec::new());
const DOT_KEEP: usize = 16;

fn global() -> &'static TraceBuffer {
    GLOBAL.get_or_init(|| {
        let cap = std::env::var("COLOCK_TRACE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        TraceBuffer::with_capacity(cap)
    })
}

/// Microseconds since the process's trace epoch (first call).
fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Turns the global trace on.
pub fn enable() {
    // Pin the epoch before the first event so timestamps start near zero.
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the global trace off (buffered events are kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the global trace is on.
///
/// ```
/// colock_trace::disable();
/// assert!(!colock_trace::is_enabled());
/// ```
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables tracing when the `COLOCK_TRACE` environment variable is set to
/// anything but `0`/`off`/empty. Returns whether tracing ended up enabled.
pub fn enable_from_env() -> bool {
    match std::env::var("COLOCK_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" && v != "off" => {
            enable();
            true
        }
        _ => is_enabled(),
    }
}

/// Records the event built by `make` into the global buffer — if tracing
/// is on. The closure keeps all construction cost (mode/resource
/// formatting, allocation) off the disabled path, which is one relaxed
/// load and a branch.
///
/// ```
/// use colock_trace::{Event, EventKind};
/// colock_trace::enable();
/// let mark = colock_trace::current_seq();
/// colock_trace::emit(|| Event::new(EventKind::TxnBegin, 42).detail("short"));
/// let events = colock_trace::events_since(mark);
/// assert_eq!(events.last().unwrap().txn, 42);
/// colock_trace::disable();
/// ```
#[inline]
pub fn emit(make: impl FnOnce() -> Event) {
    if !is_enabled() {
        return;
    }
    let mut e = make();
    e.t_us = now_us();
    if e.rule == RuleTag::None {
        e.rule = current_rule();
    }
    global().record(e);
}

/// Sequence number the next event will get. Capture before a run, then
/// pass to [`events_since`] to scope a snapshot to that run.
pub fn current_seq() -> u64 {
    global().next_seq()
}

/// Sorted copy of the buffered events with `seq >= since`.
pub fn events_since(since: u64) -> Vec<Event> {
    global().events_since(since)
}

/// Sorted copy of every buffered event.
pub fn snapshot() -> Vec<Event> {
    global().snapshot()
}

/// Clears the global buffer and the stored deadlock DOT exports (the
/// sequence counter keeps counting).
pub fn clear() {
    global().clear();
    DEADLOCK_DOTS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Stores a deadlock DOT export (keeps the most recent few).
pub fn record_deadlock_dot(dot: String) {
    let mut dots = DEADLOCK_DOTS.lock().unwrap_or_else(|e| e.into_inner());
    if dots.len() >= DOT_KEEP {
        dots.remove(0);
    }
    dots.push(dot);
}

/// The stored deadlock DOT exports, oldest first.
pub fn deadlock_dots() -> Vec<String> {
    DEADLOCK_DOTS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

thread_local! {
    static CURRENT_RULE: Cell<RuleTag> = const { Cell::new(RuleTag::None) };
}

/// The protocol-rule tag in scope on this thread (set by [`rule_scope`]).
pub fn current_rule() -> RuleTag {
    CURRENT_RULE.with(|c| c.get())
}

/// RAII guard restoring the previous thread-local rule tag on drop.
/// Returned by [`rule_scope`].
pub struct RuleScope {
    prev: RuleTag,
}

impl Drop for RuleScope {
    fn drop(&mut self) {
        CURRENT_RULE.with(|c| c.set(self.prev));
    }
}

/// Sets the thread-local rule tag for the lifetime of the returned guard.
/// Lock-manager events emitted while the guard lives inherit the tag, so
/// protocol code can annotate *why* it locks without threading a parameter
/// through every layer.
///
/// ```
/// use colock_trace::{current_rule, rule_scope, RuleTag};
/// assert_eq!(current_rule(), RuleTag::None);
/// {
///     let _g = rule_scope(RuleTag::EntryPoint);
///     assert_eq!(current_rule(), RuleTag::EntryPoint);
/// }
/// assert_eq!(current_rule(), RuleTag::None);
/// ```
pub fn rule_scope(tag: RuleTag) -> RuleScope {
    let prev = CURRENT_RULE.with(|c| c.replace(tag));
    RuleScope { prev }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share one process; keep them in a single #[test]
    // so cargo's parallel test runner cannot interleave enable/disable.
    #[test]
    fn global_switch_scopes_and_dots() {
        // Disabled: emit is a no-op and the closure must not run.
        disable();
        let mark = current_seq();
        emit(|| panic!("must not construct when disabled"));
        assert_eq!(current_seq(), mark);

        // Enabled: events flow, rule scopes nest and restore.
        enable();
        let mark = current_seq();
        {
            let _outer = rule_scope(RuleTag::Target);
            emit(|| Event::new(EventKind::Request, 1).resource("a"));
            {
                let _inner = rule_scope(RuleTag::AncestorIntent);
                emit(|| Event::new(EventKind::Request, 1).resource("b"));
            }
            emit(|| Event::new(EventKind::Request, 1).resource("c"));
        }
        // An explicit tag on the event wins over the scope.
        emit(|| Event::new(EventKind::Grant, 1).rule(RuleTag::Recovered));
        disable();

        let events = events_since(mark);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].rule, RuleTag::Target);
        assert_eq!(events[1].rule, RuleTag::AncestorIntent);
        assert_eq!(events[2].rule, RuleTag::Target);
        assert_eq!(events[3].rule, RuleTag::Recovered);
        // Timestamps are monotone non-decreasing in seq order.
        for w in events.windows(2) {
            assert!(w[0].t_us <= w[1].t_us);
        }

        record_deadlock_dot("digraph waits_for {}".into());
        assert!(deadlock_dots().last().unwrap().starts_with("digraph"));
        for i in 0..(DOT_KEEP + 3) {
            record_deadlock_dot(format!("g{i}"));
        }
        let dots = deadlock_dots();
        assert_eq!(dots.len(), DOT_KEEP);
        assert_eq!(dots.last().unwrap(), &format!("g{}", DOT_KEEP + 2));
    }

    #[test]
    fn env_gate_parses_off_values() {
        // Only checks the "absent/off" path deterministically; the "on"
        // path is covered by examples setting COLOCK_TRACE themselves.
        std::env::remove_var("COLOCK_TRACE");
        disable();
        assert!(!enable_from_env());
    }
}
