//! Replays a captured event stream into a human-readable per-transaction
//! timeline — the `trace-explain` rendering logic.

use crate::event::{Event, EventKind, RuleTag};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rendered timeline line, kept structured so callers can filter
/// before formatting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineLine {
    /// Sequence number of the event that produced the line.
    pub seq: u64,
    /// Microsecond timestamp of that event.
    pub t_us: u64,
    /// The rendered sentence (without txn prefix or timestamp).
    pub text: String,
}

/// A per-transaction timeline extracted from an event stream.
pub type Timeline = BTreeMap<u64, Vec<TimelineLine>>;

/// Builds per-transaction timelines from `seq`-sorted events.
///
/// `Request`/`Wait`/`Grant` triples on the same resource are folded into a
/// single sentence stating the rule that caused the request and how long
/// the wait lasted; detector events are attributed to every cycle member.
///
/// ```
/// use colock_trace::{explain, Event, EventKind, RuleTag};
/// let mut req = Event::new(EventKind::Request, 3)
///     .mode("IX").rule(RuleTag::AncestorIntent).resource("rel:robots");
/// req.t_us = 10;
/// let mut grant = Event::new(EventKind::Grant, 3)
///     .mode("IX").resource("rel:robots").detail("immediate");
/// grant.seq = 1;
/// grant.t_us = 12;
/// let tl = explain::timeline(&[req, grant]);
/// assert_eq!(tl[&3].len(), 1);
/// assert!(tl[&3][0].text.contains("granted IX on rel:robots immediately"));
/// assert!(tl[&3][0].text.contains("rules 1/2/5"));
/// ```
pub fn timeline(events: &[Event]) -> Timeline {
    let mut out: Timeline = BTreeMap::new();
    // Pending request context per (txn, resource): (rule, wait start µs).
    let mut requested: BTreeMap<(u64, String), (RuleTag, Option<u64>)> = BTreeMap::new();
    let mut push = |txn: u64, e: &Event, text: String| {
        out.entry(txn)
            .or_default()
            .push(TimelineLine { seq: e.seq, t_us: e.t_us, text });
    };
    for e in events {
        let key = (e.txn, e.resource.clone());
        match e.kind {
            EventKind::Request => {
                requested.insert(key, (e.rule, None));
            }
            EventKind::Conversion => {
                push(e.txn, e, format!("converting {} on {} ({})", e.mode, e.resource, e.detail));
            }
            EventKind::Wait => {
                if let Some(ctx) = requested.get_mut(&key) {
                    ctx.1 = Some(e.t_us);
                } else {
                    requested.insert(key, (e.rule, Some(e.t_us)));
                }
                push(e.txn, e, format!("blocked waiting for {} on {}", e.mode, e.resource));
            }
            EventKind::Grant => {
                let (rule, wait_start) =
                    requested.remove(&key).unwrap_or((e.rule, None));
                let why = match rule {
                    RuleTag::None => String::new(),
                    r => format!(" — {}", r.describe()),
                };
                let how = match wait_start {
                    Some(t0) => format!(
                        "after waiting {}µs",
                        e.t_us.saturating_sub(t0)
                    ),
                    None if e.detail == "already-held" => "already held".to_string(),
                    None => "immediately".to_string(),
                };
                push(e.txn, e, format!("granted {} on {} {}{}", e.mode, e.resource, how, why));
            }
            EventKind::Wakeup => {
                push(e.txn, e, format!("woken for {} on {}", e.mode, e.resource));
            }
            EventKind::DeadlockDetected => {
                for txn in parse_cycle(&e.detail) {
                    push(txn, e, format!("deadlock detected: cycle [{}]", e.detail));
                }
            }
            EventKind::VictimChosen => {
                push(e.txn, e, format!("chosen as deadlock victim (waiting on {})", e.resource));
            }
            EventKind::Release => {
                push(e.txn, e, format!("released {} on {}", e.mode, e.resource));
            }
            EventKind::TxnBegin => push(e.txn, e, format!("began ({})", e.detail)),
            EventKind::TxnCommit => push(e.txn, e, "committed".to_string()),
            EventKind::TxnAbort => push(e.txn, e, "aborted".to_string()),
            EventKind::TxnReleaseEarly => {
                push(e.txn, e, format!("released target early (rule 5): {}", e.resource));
            }
            EventKind::TxnRecovered => {
                push(e.txn, e, format!("re-adopted after crash recovery ({})", e.detail));
            }
            EventKind::SnapshotRead => {
                push(e.txn, e, format!("snapshot read of {} ({})", e.resource, e.detail));
            }
            EventKind::SessionOpen => {
                push(e.txn, e, format!("session opened ({})", e.detail));
            }
            EventKind::SessionClose => {
                push(e.txn, e, format!("session closed ({})", e.detail));
            }
        }
    }
    out
}

/// Parses the comma-separated txn list a `DeadlockDetected` event carries
/// in its `detail` field.
fn parse_cycle(detail: &str) -> Vec<u64> {
    detail
        .split(',')
        .filter_map(|p| p.trim().trim_start_matches('T').parse().ok())
        .collect()
}

/// Renders timelines as text: a header per transaction, then one
/// `[t+<µs>] <sentence>` line per event.
///
/// ```
/// use colock_trace::{explain, Event, EventKind};
/// let tl = explain::timeline(&[Event::new(EventKind::TxnCommit, 4)]);
/// let text = explain::render_timeline(&tl);
/// assert!(text.contains("== txn 4 =="));
/// assert!(text.contains("committed"));
/// ```
pub fn render_timeline(tl: &Timeline) -> String {
    let mut out = String::new();
    for (txn, lines) in tl {
        let _ = writeln!(out, "== txn {txn} ==");
        for l in lines {
            let _ = writeln!(out, "  [t+{:>8}µs] {}", l.t_us, l.text);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_us: u64, kind: EventKind, txn: u64) -> Event {
        let mut e = Event::new(kind, txn);
        e.seq = seq;
        e.t_us = t_us;
        e
    }

    #[test]
    fn wait_grant_folds_into_duration() {
        let events = vec![
            ev(0, 100, EventKind::Request, 1).mode("X").rule(RuleTag::Target).resource("r"),
            ev(1, 100, EventKind::Wait, 1).mode("X").resource("r"),
            ev(2, 1400, EventKind::Grant, 1).mode("X").resource("r").detail("after-wait"),
        ];
        let tl = timeline(&events);
        let lines = &tl[&1];
        assert_eq!(lines.len(), 2);
        assert!(lines[0].text.contains("blocked waiting"));
        assert!(lines[1].text.contains("after waiting 1300µs"));
        assert!(lines[1].text.contains("rules 3/4"));
    }

    #[test]
    fn deadlock_attributed_to_all_members() {
        let events = vec![
            ev(0, 5, EventKind::DeadlockDetected, 0).detail("T3, T8"),
            ev(1, 6, EventKind::VictimChosen, 8).resource("r"),
        ];
        let tl = timeline(&events);
        assert!(tl[&3][0].text.contains("cycle [T3, T8]"));
        assert!(tl[&8].iter().any(|l| l.text.contains("victim")));
    }

    #[test]
    fn render_is_grouped_by_txn() {
        let events = vec![
            ev(0, 1, EventKind::TxnBegin, 2).detail("short"),
            ev(1, 2, EventKind::TxnBegin, 1).detail("long"),
            ev(2, 3, EventKind::TxnCommit, 2),
        ];
        let text = render_timeline(&timeline(&events));
        let pos1 = text.find("== txn 1 ==").unwrap();
        let pos2 = text.find("== txn 2 ==").unwrap();
        assert!(pos1 < pos2);
        assert!(text.contains("began (long)"));
    }
}
