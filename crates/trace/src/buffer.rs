//! Fixed-capacity ring buffer of [`Event`]s with a lock-free sequence
//! counter.
//!
//! Writers claim a slot with one `fetch_add` on an `AtomicU64` and then take
//! the *per-slot* mutex to store the event; two writers only ever contend on
//! a slot mutex when the buffer has wrapped a full lap between their claims,
//! so the common path is one uncontended atomic plus one uncontended lock.
//! The oldest event is overwritten when the buffer is full, which means a
//! snapshot of a long run has a *gap*: sequence numbers start above zero and
//! are contiguous from there (modulo in-flight writers).

use crate::event::Event;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A fixed-capacity, overwrite-oldest ring buffer of trace events.
///
/// ```
/// use colock_trace::{Event, EventKind, TraceBuffer};
/// let buf = TraceBuffer::with_capacity(4);
/// for i in 0..6 {
///     buf.record(Event::new(EventKind::Request, i));
/// }
/// let snap = buf.snapshot();
/// // Capacity 4: the two oldest events were overwritten.
/// assert_eq!(snap.len(), 4);
/// assert_eq!(snap[0].seq, 2);
/// assert_eq!(snap[3].seq, 5);
/// ```
pub struct TraceBuffer {
    slots: Box<[Mutex<Option<Event>>]>,
    mask: u64,
    next: AtomicU64,
}

impl TraceBuffer {
    /// Creates a buffer holding at least `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<Mutex<Option<Event>>> = (0..cap).map(|_| Mutex::new(None)).collect();
        TraceBuffer { slots: slots.into_boxed_slice(), mask: cap as u64 - 1, next: AtomicU64::new(0) }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sequence number the *next* recorded event will receive; equivalently,
    /// the count of events ever recorded.
    pub fn next_seq(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// Records an event, stamping its `seq`, and returns that sequence
    /// number. Overwrites the oldest event once the buffer is full.
    pub fn record(&self, mut event: Event) -> u64 {
        let seq = self.next.fetch_add(1, Ordering::AcqRel);
        event.seq = seq;
        let slot = &self.slots[(seq & self.mask) as usize];
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        // A slow writer from a previous lap may land after a faster writer
        // from a later lap; keep the newer event.
        if guard.as_ref().is_none_or(|old| old.seq < seq) {
            *guard = Some(event);
        }
        seq
    }

    /// Copies out the currently-buffered events, sorted by sequence number.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events_since(0)
    }

    /// Copies out buffered events with `seq >= since`, sorted by sequence
    /// number. Use [`TraceBuffer::next_seq`] before a run to scope a
    /// snapshot to that run.
    pub fn events_since(&self, since: u64) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .filter(|e| e.seq >= since)
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Empties every slot. The sequence counter keeps counting (so seqnos
    /// stay monotonic across clears).
    pub fn clear(&self) {
        for s in self.slots.iter() {
            *s.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(TraceBuffer::with_capacity(0).capacity(), 2);
        assert_eq!(TraceBuffer::with_capacity(5).capacity(), 8);
        assert_eq!(TraceBuffer::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn wraparound_keeps_newest_and_sorts() {
        let buf = TraceBuffer::with_capacity(8);
        for i in 0..27 {
            buf.record(Event::new(EventKind::Request, i));
        }
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 8);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (19..27).collect::<Vec<u64>>());
        assert_eq!(buf.next_seq(), 27);
    }

    #[test]
    fn events_since_scopes_a_run() {
        let buf = TraceBuffer::with_capacity(64);
        buf.record(Event::new(EventKind::Request, 1));
        let mark = buf.next_seq();
        buf.record(Event::new(EventKind::Grant, 2));
        let run = buf.events_since(mark);
        assert_eq!(run.len(), 1);
        assert_eq!(run[0].txn, 2);
    }

    #[test]
    fn clear_keeps_counter_monotonic() {
        let buf = TraceBuffer::with_capacity(4);
        buf.record(Event::new(EventKind::Request, 1));
        buf.clear();
        assert!(buf.snapshot().is_empty());
        let seq = buf.record(Event::new(EventKind::Request, 2));
        assert_eq!(seq, 1);
    }

    #[test]
    fn concurrent_recording_yields_unique_monotonic_seqnos() {
        use std::sync::Arc;
        let buf = Arc::new(TraceBuffer::with_capacity(1 << 12));
        let threads = 8;
        let per = 250;
        colock_testkit::stress::run_threads(threads, std::time::Duration::from_secs(30), {
            let buf = Arc::clone(&buf);
            move |t| {
                for i in 0..per {
                    buf.record(Event::new(EventKind::Request, (t * per + i) as u64));
                }
            }
        });
        let snap = buf.snapshot();
        assert_eq!(snap.len(), threads * per);
        // Unique and strictly increasing after the sort == no duplicated seq.
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        assert_eq!(buf.next_seq(), (threads * per) as u64);
    }
}
