//! Property tests for the wire codecs (PROTOCOL.md §2–§5): randomly
//! generated requests, responses, targets and values must survive
//! encode → frame → unframe → parse bit-exactly, under arbitrary read
//! chunking, and malformed bytes must be refused with a typed error.

use colock_core::InstanceTarget;
use colock_lockmgr::TxnId;
use colock_nf2::{ObjectKey, Value};
use colock_server::frame::{encode_frame, FrameError, FrameReader, FRAME_MAX};
use colock_server::wire::{
    encode_target, encode_value, parse_target, parse_value, BeginKind, ErrorCode, Request,
    Response, Role, ALL_ERROR_CODES, PROTOCOL_VERSION,
};
use colock_testkit::Rng;
use std::io::Cursor;

/// Name pool with every delimiter the codecs must escape.
const NAMES: &[&str] = &[
    "cells",
    "robots",
    "eff",
    "a b c",
    "with:colon",
    "per%cent",
    "sla/sh",
    "br[ack]ets",
    "pa(ren)s",
    "cur{ly}",
    "eq=comma,",
    "tab\tand\nnewline",
    "unicode-ü-λ",
];

fn rand_name(rng: &mut Rng) -> String {
    NAMES[rng.gen_range(0..NAMES.len())].to_string()
}

fn rand_key(rng: &mut Rng) -> ObjectKey {
    if rng.gen_range(0..2) == 0 {
        ObjectKey::Str(rand_name(rng))
    } else {
        ObjectKey::Int(rng.gen_range(0..2_000_000) as i64 - 1_000_000)
    }
}

fn rand_target(rng: &mut Rng) -> InstanceTarget {
    let mut t = InstanceTarget::object(rand_name(rng), rand_key(rng));
    for _ in 0..rng.gen_range(0..3) {
        if rng.gen_range(0..2) == 0 {
            t = t.attr(rand_name(rng));
        } else {
            t = t.elem(rand_name(rng), rand_key(rng));
        }
    }
    t
}

fn rand_value(rng: &mut Rng, depth: usize) -> Value {
    let pick = if depth == 0 { rng.gen_range(0..5) } else { rng.gen_range(0..8) };
    match pick {
        0 => Value::Str(rand_name(rng)),
        1 => Value::Int(rng.gen_range(0..2_000_000) as i64 - 1_000_000),
        2 => Value::Real(rng.gen_range(0..1_000_000) as f64 / 128.0),
        3 => Value::Bool(rng.gen_range(0..2) == 0),
        4 => Value::Ref(colock_nf2::ObjectRef { relation: rand_name(rng), key: rand_key(rng) }),
        5 => Value::Set((0..rng.gen_range(0..4)).map(|_| rand_value(rng, depth - 1)).collect()),
        6 => Value::List((0..rng.gen_range(0..4)).map(|_| rand_value(rng, depth - 1)).collect()),
        _ => Value::Tuple(
            (0..rng.gen_range(0..4)).map(|_| (rand_name(rng), rand_value(rng, depth - 1))).collect(),
        ),
    }
}

fn rand_request(rng: &mut Rng) -> Request {
    match rng.gen_range(0..12) {
        0 => Request::Hello {
            name: rand_name(rng),
            version: PROTOCOL_VERSION,
            role: [Role::Reader, Role::Engineer, Role::Librarian][rng.gen_range(0..3)],
        },
        1 => Request::Begin {
            kind: [BeginKind::Short, BeginKind::Long, BeginKind::ReadOnly][rng.gen_range(0..3)],
        },
        2 => Request::Get { target: rand_target(rng) },
        3 => Request::Put { target: rand_target(rng), value: rand_value(rng, 2) },
        4 => Request::Del { target: rand_target(rng) },
        5 => Request::Checkout {
            target: rand_target(rng),
            access: [colock_core::AccessMode::Read, colock_core::AccessMode::Update]
                [rng.gen_range(0..2)],
        },
        6 => Request::Checkin { target: rand_target(rng), value: rand_value(rng, 2) },
        7 => Request::Commit,
        8 => Request::Abort,
        9 => Request::Resume { txn: TxnId(rng.gen_range(0..1_000_000) as u64) },
        10 => match rng.gen_range(0..3) {
            0 => Request::Explain,
            1 => Request::Trace,
            _ => Request::Stats,
        },
        _ => Request::Quit,
    }
}

#[test]
fn random_targets_roundtrip() {
    let mut rng = Rng::seed_from_u64(11);
    for _ in 0..2000 {
        let t = rand_target(&mut rng);
        let text = encode_target(&t);
        assert_eq!(parse_target(&text).expect(&text), t, "{text}");
    }
}

#[test]
fn random_values_roundtrip() {
    let mut rng = Rng::seed_from_u64(13);
    for _ in 0..2000 {
        let v = rand_value(&mut rng, 3);
        let text = encode_value(&v);
        assert_eq!(parse_value(&text).expect(&text), v, "{text}");
    }
}

#[test]
fn random_requests_roundtrip_through_frames() {
    let mut rng = Rng::seed_from_u64(17);
    for round in 0..400 {
        // A pipelined batch of requests in one byte stream, read back with a
        // random chunk size (1 = byte-at-a-time resumption).
        let batch: Vec<Request> = (0..rng.gen_range(1..6)).map(|_| rand_request(&mut rng)).collect();
        let mut bytes = String::new();
        for req in &batch {
            bytes.push_str(&encode_frame(&req.encode()));
        }
        let chunk = rng.gen_range(1..64);
        let mut reader = FrameReader::with_chunk(Cursor::new(bytes.into_bytes()), chunk);
        for req in &batch {
            let payload = reader.read_frame().expect("frame").expect("payload");
            assert_eq!(&Request::parse(&payload).expect(&payload), req, "round {round}");
        }
        assert!(reader.read_frame().expect("eof").is_none());
    }
}

#[test]
fn every_error_code_roundtrips_in_responses() {
    for code in ALL_ERROR_CODES {
        let resp = Response::Err {
            code: *code,
            message: format!("demo {code}"),
            backoff_ms: if code == &ErrorCode::Busy { Some(25) } else { None },
        };
        let payload = resp.encode();
        assert_eq!(Response::parse(&payload).unwrap(), resp, "{payload}");
    }
}

#[test]
fn malformed_length_prefixes_are_refused() {
    for bad in [
        "x5 HELLO\n",
        " 5 HELLO\n",
        "5x HELLO\n",
        "+5 HELLO\n",
        "-5 HELLO\n",
        "0x5 HELLO\n",
        "123456789 HELLO\n", // too many digits
        "\n",
        " \n",
    ] {
        let mut r = FrameReader::new(Cursor::new(bad.as_bytes().to_vec()));
        let err = r.read_frame().unwrap_err();
        assert!(matches!(err, FrameError::BadLength(_)), "{bad:?} -> {err}");
    }
}

#[test]
fn truncated_frames_are_refused() {
    for bad in ["5", "5 ", "5 HE", "5 HELL"] {
        let mut r = FrameReader::new(Cursor::new(bad.as_bytes().to_vec()));
        let err = r.read_frame().unwrap_err();
        assert!(matches!(err, FrameError::Truncated { .. }), "{bad:?} -> {err}");
    }
}

#[test]
fn lying_lengths_are_caught_by_the_terminator() {
    // Shorter and longer than the actual payload, respectively.
    for bad in ["3 HELLO\n", "7 HELLO\nX"] {
        let mut r = FrameReader::new(Cursor::new(bad.as_bytes().to_vec()));
        assert!(r.read_frame().is_err(), "{bad:?} should not parse");
    }
}

#[test]
fn oversized_frames_are_refused_from_the_prefix_alone() {
    let bad = format!("{} x\n", FRAME_MAX + 1);
    let mut r = FrameReader::new(Cursor::new(bad.into_bytes()));
    let err = r.read_frame().unwrap_err();
    assert!(matches!(err, FrameError::Oversized { .. }), "{err}");
}

#[test]
fn interleaved_partial_reads_keep_frame_boundaries() {
    // Two frames split at every possible byte boundary: the reader must
    // produce the same two payloads regardless of where the split lands.
    let stream = format!("{}{}", encode_frame("GET\trel:cells"), encode_frame("COMMIT"));
    for split in 1..stream.len() {
        let first = &stream[..split];
        let second = &stream[split..];
        let joined: Vec<u8> = first.bytes().chain(second.bytes()).collect();
        let mut r = FrameReader::with_chunk(Cursor::new(joined), split.max(1));
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("GET\trel:cells"), "split {split}");
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("COMMIT"), "split {split}");
        assert!(r.read_frame().unwrap().is_none());
    }
}

#[test]
fn random_garbage_never_panics_the_parsers() {
    let mut rng = Rng::seed_from_u64(23);
    for _ in 0..3000 {
        let len = rng.gen_range(0..40);
        let garbage: String = (0..len).map(|_| char::from(rng.gen_range(0x20u8..0x7f))).collect();
        // Any result is fine; panics are not.
        let _ = Request::parse(&garbage);
        let _ = Response::parse(&garbage);
        let _ = parse_target(&garbage);
        let _ = parse_value(&garbage);
    }
}
