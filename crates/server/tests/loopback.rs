//! End-to-end tests over real loopback TCP: server + blocking clients,
//! admission control, drain semantics, and lint-clean served traces.

use colock_core::authorization::{Authorization, Right};
use colock_core::AccessMode;
use colock_nf2::Value;
use colock_server::client::Client;
use colock_server::session::AdmissionPolicy;
use colock_server::wire::{parse_target, BeginKind, ErrorCode, Role};
use colock_server::{Server, ServerConfig};
use colock_sim::{build_cells_store, CellsConfig};
use colock_txn::{ProtocolKind, TransactionManager};
use std::sync::Arc;
use std::time::Duration;

fn manager() -> Arc<TransactionManager> {
    let cfg = CellsConfig { n_cells: 4, c_objects_per_cell: 8, ..Default::default() };
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    Arc::new(TransactionManager::over_store(build_cells_store(&cfg), authz, ProtocolKind::Proposed))
}

fn start(cfg: ServerConfig) -> Server {
    Server::start(manager(), cfg).expect("bind loopback")
}

#[test]
fn full_conversation_over_tcp() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), "e2e", Role::Engineer).expect("connect");

    c.begin(BeginKind::Short).expect("begin");
    let traj = parse_target("rel:cells/obj:c2/attr:robots/elem:r1/attr:trajectory").unwrap();
    let before = c.get(&traj).expect("get");
    assert_eq!(before, Value::str("traj-c2-r0"));
    c.put(&traj, Value::str("traj-new")).expect("put");
    assert_eq!(c.get(&traj).expect("get"), Value::str("traj-new"));
    c.commit().expect("commit");

    // Conversational check-out / check-in under a long transaction.
    c.begin(BeginKind::Long).expect("begin long");
    let robot = parse_target("rel:cells/obj:c2/attr:robots/elem:r1").unwrap();
    let copy = c.checkout(&robot, AccessMode::Update).expect("checkout");
    c.checkin(&robot, copy).expect("checkin");
    c.commit().expect("commit long");

    let stats = c.stats().expect("stats");
    assert!(stats.iter().any(|(n, _)| n == "lock.requests"));
    c.quit();
    assert_eq!(server.manager().active_count(), 0);
    server.kill();
}

#[test]
fn unauthorized_role_is_refused_over_tcp() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), "rdr", Role::Reader).expect("connect");
    c.begin(BeginKind::Short).expect("begin");
    let traj = parse_target("rel:cells/obj:c1/attr:robots/elem:r1/attr:trajectory").unwrap();
    let err = c.put(&traj, Value::str("nope")).expect_err("reader must not update");
    assert_eq!(err.code(), Some(ErrorCode::Unauthorized));
    c.abort().expect("abort");
    c.quit();
    server.kill();
}

#[test]
fn session_limit_turns_connections_away() {
    let cfg = ServerConfig { max_sessions: 2, ..Default::default() };
    let server = start(cfg);
    let _a = Client::connect(server.addr(), "a", Role::Engineer).expect("a");
    let _b = Client::connect(server.addr(), "b", Role::Engineer).expect("b");
    let err = Client::connect(server.addr(), "c", Role::Engineer).expect_err("table is full");
    assert_eq!(err.code(), Some(ErrorCode::SessionLimit));
    server.kill();
}

#[test]
fn admission_refusal_carries_a_backoff_hint() {
    let cfg = ServerConfig {
        max_inflight: 1,
        admission: AdmissionPolicy::Refuse,
        ..Default::default()
    };
    let server = start(cfg);
    let mut a = Client::connect(server.addr(), "a", Role::Engineer).expect("a");
    let mut b = Client::connect(server.addr(), "b", Role::Engineer).expect("b");
    a.begin(BeginKind::Short).expect("first slot");
    let err = b.begin(BeginKind::Short).expect_err("gate is full");
    assert_eq!(err.code(), Some(ErrorCode::Busy));
    assert!(err.is_retryable());
    match err {
        colock_server::client::ClientError::Server { backoff_ms, .. } => {
            assert!(backoff_ms.is_some(), "BUSY must hint a backoff")
        }
        other => panic!("{other}"),
    }
    a.commit().expect("commit");
    b.begin(BeginKind::Short).expect("slot freed");
    b.abort().expect("abort");
    server.kill();
}

#[test]
fn pipelined_requests_answer_in_order() {
    use colock_server::wire::{Request, Response};
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), "pipe", Role::Engineer).expect("connect");
    // Fire BEGIN + GET + COMMIT without reading any response.
    let traj = parse_target("rel:cells/obj:c3/attr:robots/elem:r2/attr:trajectory").unwrap();
    c.send(&Request::Begin { kind: BeginKind::Short }).expect("send");
    c.send(&Request::Get { target: traj }).expect("send");
    c.send(&Request::Commit).expect("send");
    let first = c.recv().expect("begin reply");
    assert!(matches!(first, Response::Ok(ref f) if f[0].starts_with('T')), "{first:?}");
    let second = c.recv().expect("get reply");
    assert!(matches!(second, Response::Ok(ref f) if f[0] == "s:traj-c3-r1"), "{second:?}");
    assert!(matches!(c.recv().expect("commit reply"), Response::Ok(_)));
    c.quit();
    server.kill();
}

#[test]
fn drain_refuses_new_work_and_leaks_long_locks() {
    let server = start(ServerConfig::default());
    let addr = server.addr();
    let mgr = Arc::clone(server.manager());

    // A long transaction checks out a robot, then its client disconnects.
    let robot = parse_target("rel:cells/obj:c1/attr:robots/elem:r1").unwrap();
    let txn = {
        let mut c = Client::connect(addr, "designer", Role::Engineer).expect("connect");
        let txn = c.begin(BeginKind::Long).expect("begin long");
        c.checkout(&robot, AccessMode::Update).expect("checkout");
        txn
        // dropped without QUIT: the server leaks the long txn
    };
    // Give the server a beat to notice the disconnect.
    std::thread::sleep(Duration::from_millis(300));
    let stragglers = server.drain(Duration::from_secs(2));
    assert_eq!(stragglers, 0, "disconnected sessions must not block the drain");

    // The long lock survived the drain: a rival against the same manager
    // still conflicts, and resume() can finish the conversation.
    {
        let rival = mgr.begin(colock_txn::TxnKind::Short);
        rival.set_wait_policy(colock_lockmgr::WaitPolicy::Try);
        let err = rival.lock(&robot, AccessMode::Update).unwrap_err();
        assert!(err.is_would_block(), "{err}");
        rival.abort().unwrap();
    }
    let resumed = mgr.resume(txn).expect("re-adopt the long txn");
    resumed.commit().expect("finish the conversation");
}

#[test]
fn served_traces_lint_clean() {
    colock_trace::enable();
    let mark = colock_trace::current_seq();
    let server = start(ServerConfig::default());
    for i in 0..4 {
        let mut c = Client::connect(server.addr(), "lintgen", Role::Engineer).expect("connect");
        c.begin(if i % 2 == 0 { BeginKind::Short } else { BeginKind::Long }).expect("begin");
        let cell = (i % 4) + 1;
        let traj =
            parse_target(&format!("rel:cells/obj:c{cell}/attr:robots/elem:r1/attr:trajectory"))
                .unwrap();
        let v = c.get(&traj).expect("get");
        c.put(&traj, v).expect("put");
        c.commit().expect("commit");
        c.quit();
    }
    let catalog = server.manager().store().catalog();
    let events = colock_trace::events_since(mark);
    assert!(!events.is_empty());
    let report = colock_check::Linter::with_catalog(catalog).lint(&events);
    assert!(report.is_clean(), "served trace must lint clean:\n{}", report.render());
    server.kill();
}
