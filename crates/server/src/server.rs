//! The thread-per-connection TCP listener (PROTOCOL.md §1, §7).
//!
//! One OS thread accepts; each admitted connection gets its own thread
//! running the frame-read → [`crate::session::Session::handle`] → frame-write
//! loop. Sockets carry a short read timeout so every session thread wakes a
//! few times a second to check the idle clock and the drain flag without
//! needing an async runtime — the whole layer is `std`-only.
//!
//! Shutdown comes in two flavours:
//!
//! - [`Server::drain`] — graceful. The listener stops accepting, the lock
//!   manager starts refusing *parked* waiters (granted locks are untouched),
//!   and every session is told to wrap up: short transactions abort, long
//!   transactions are leaked so their durable long locks stay journaled and
//!   §3.1 recovery re-adopts them at the next start. Sessions that do not
//!   finish within the drain budget are closed anyway.
//! - [`Server::kill`] — simulated crash. Connections are severed with no
//!   protocol goodbye and *nothing* is released: exactly the state a real
//!   crash leaves on the medium, which is what the stress harness feeds back
//!   through recovery.

use crate::frame::{encode_frame, FrameError, FrameReader};
use crate::session::{AdmissionGate, AdmissionPolicy, CloseReason, Reply, Session, SessionTable};
use crate::wire::{ErrorCode, Response};
use colock_txn::TransactionManager;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a session thread wakes to check idle/drain state.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Server tunables. [`ServerConfig::from_env`] reads the `COLOCK_*`
/// environment documented in the README.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`COLOCK_LISTEN`, default `127.0.0.1:0` = ephemeral).
    pub listen: String,
    /// Session-table capacity (`COLOCK_MAX_SESSIONS`, default 4096).
    pub max_sessions: usize,
    /// In-flight transaction bound (`COLOCK_MAX_INFLIGHT`, default 256).
    pub max_inflight: usize,
    /// Over-limit `BEGIN` policy (`COLOCK_ADMISSION`: `queue` | `refuse`).
    pub admission: AdmissionPolicy,
    /// How long a queued `BEGIN` may wait before being refused.
    pub queue_budget: Duration,
    /// Idle-session timeout; `None` disables (`COLOCK_IDLE_TIMEOUT` seconds,
    /// default disabled).
    pub idle_timeout: Option<Duration>,
    /// Graceful-drain budget (`COLOCK_DRAIN_TIMEOUT` seconds, default 5).
    pub drain_timeout: Duration,
    /// Per-request lock-wait budget handed to every transaction.
    pub lock_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            max_sessions: 4096,
            max_inflight: 256,
            admission: AdmissionPolicy::Queue,
            queue_budget: Duration::from_millis(500),
            idle_timeout: None,
            drain_timeout: Duration::from_secs(5),
            lock_wait: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by the `COLOCK_*` environment (unparsable values
    /// fall back silently — a server must come up even with a typo'd env).
    pub fn from_env() -> ServerConfig {
        let mut cfg = ServerConfig::default();
        if let Ok(v) = std::env::var("COLOCK_LISTEN") {
            cfg.listen = v;
        }
        if let Some(v) = env_parse::<usize>("COLOCK_MAX_SESSIONS") {
            cfg.max_sessions = v;
        }
        if let Some(v) = env_parse::<usize>("COLOCK_MAX_INFLIGHT") {
            cfg.max_inflight = v;
        }
        if let Ok(v) = std::env::var("COLOCK_ADMISSION") {
            if let Some(p) = AdmissionPolicy::parse(&v) {
                cfg.admission = p;
            }
        }
        if let Some(v) = env_parse::<u64>("COLOCK_IDLE_TIMEOUT") {
            cfg.idle_timeout = Some(Duration::from_secs(v));
        }
        if let Some(v) = env_parse::<u64>("COLOCK_DRAIN_TIMEOUT") {
            cfg.drain_timeout = Duration::from_secs(v);
        }
        cfg
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

struct Shared {
    manager: Arc<TransactionManager>,
    table: Arc<SessionTable>,
    gate: Arc<AdmissionGate>,
    draining: Arc<AtomicBool>,
    /// Kill switch: sever connections with no goodbye (crash simulation).
    killed: AtomicBool,
    idle_timeout: Option<Duration>,
    lock_wait: Duration,
    /// Connections ever accepted (STAT `server.accepted` via sessions table;
    /// kept for the drain log line).
    accepted: AtomicU64,
}

/// A running server. Dropping it kills it (crash semantics); call
/// [`Server::drain`] first for a graceful stop.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the accept thread, returns immediately.
    pub fn start(manager: Arc<TransactionManager>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            manager,
            table: Arc::new(SessionTable::new(cfg.max_sessions)),
            gate: AdmissionGate::new(cfg.max_inflight, cfg.admission, cfg.queue_budget),
            draining: Arc::new(AtomicBool::new(false)),
            killed: AtomicBool::new(false),
            idle_timeout: cfg.idle_timeout,
            lock_wait: cfg.lock_wait,
            accepted: AtomicU64::new(0),
        });
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_workers = Arc::clone(&workers);
        let accept_thread = std::thread::Builder::new()
            .name("colock-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_workers))
            .expect("spawn accept thread");
        Ok(Server { shared, addr, accept_thread: Some(accept_thread), workers })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Open sessions right now.
    pub fn session_count(&self) -> usize {
        self.shared.table.open_count()
    }

    /// The manager this server fronts.
    pub fn manager(&self) -> &Arc<TransactionManager> {
        &self.shared.manager
    }

    /// Graceful drain: stop accepting, refuse new `BEGIN`s, wake parked lock
    /// waiters, give in-flight sessions up to the budget to finish, then
    /// close stragglers (short txns abort, long txns leak their journaled
    /// locks for recovery). Returns the number of sessions that had to be
    /// closed forcibly.
    pub fn drain(mut self, budget: Duration) -> usize {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.manager.lock_manager().begin_drain();
        self.stop_accepting();
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline && self.shared.table.open_count() > 0 {
            std::thread::sleep(POLL_TICK / 2);
        }
        let stragglers = self.shared.table.open_count();
        // Sever remaining connections; their session threads abort/leak as
        // they notice (worker join below waits for that).
        self.shared.killed.store(true, Ordering::SeqCst);
        self.join_workers();
        self.shared.manager.lock_manager().end_drain();
        stragglers
    }

    /// Simulated crash: sever every connection with no goodbye and release
    /// nothing. Long locks stay on the journal medium exactly as a real
    /// crash would leave them; §3.1 recovery decides their fate.
    pub fn kill(mut self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        self.stop_accepting();
        self.join_workers();
    }

    fn stop_accepting(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }

    fn join_workers(&self) {
        let handles: Vec<_> = {
            let mut ws = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            ws.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.killed.store(true, Ordering::SeqCst);
        self.stop_accepting();
        self.join_workers();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) || shared.killed.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("colock-session".into())
            .spawn(move || serve_connection(stream, conn_shared));
        if let Ok(h) = handle {
            workers.lock().unwrap_or_else(PoisonError::into_inner).push(h);
        }
    }
}

/// Writes one reply's frames; `false` on a dead socket.
fn write_reply(stream: &mut TcpStream, reply: &Reply) -> bool {
    let mut out = String::new();
    for frame in &reply.frames {
        out.push_str(&encode_frame(&frame.encode()));
    }
    stream.write_all(out.as_bytes()).is_ok() && stream.flush().is_ok()
}

fn refuse(mut stream: TcpStream, response: Response) {
    let _ = stream.write_all(encode_frame(&response.encode()).as_bytes());
}

fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    // Short read timeout = the poll tick for idle/drain checks.
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);

    let manager = Arc::clone(&shared.manager);
    let mut session = match Session::open(
        &manager,
        Arc::clone(&shared.table),
        Arc::clone(&shared.gate),
        Arc::clone(&shared.draining),
        shared.lock_wait,
        peer,
    ) {
        Ok(s) => s,
        Err(response) => {
            refuse(stream, response);
            return;
        }
    };

    let mut writer = stream.try_clone().expect("clone stream for writing");
    let mut reader = FrameReader::new(stream);
    let mut last_activity = Instant::now();

    loop {
        if shared.killed.load(Ordering::SeqCst) {
            // Crash semantics when a kill is in progress, graceful close
            // when this is the tail end of a drain (long txns leak either
            // way; the distinction is only the trace reason).
            let reason = if shared.draining.load(Ordering::SeqCst) {
                CloseReason::Drain
            } else {
                CloseReason::Disconnect
            };
            session.close(reason);
            return;
        }
        if shared.draining.load(Ordering::SeqCst) && !session.in_txn() {
            // Drain: sessions with no open transaction are closed eagerly;
            // in-txn sessions get until the drain budget to finish.
            session.close(CloseReason::Drain);
            let _ = write_reply(
                &mut writer,
                &Reply {
                    frames: vec![Response::err(ErrorCode::ShuttingDown, "server is draining")],
                    close: true,
                },
            );
            return;
        }
        if let Some(limit) = shared.idle_timeout {
            if last_activity.elapsed() > limit && !session.in_txn() {
                session.close(CloseReason::IdleTimeout);
                let _ = write_reply(
                    &mut writer,
                    &Reply {
                        frames: vec![Response::err(ErrorCode::IdleTimeout, "session idle too long")],
                        close: true,
                    },
                );
                return;
            }
        }
        let payload = match reader.read_frame() {
            Ok(Some(p)) => p,
            Ok(None) => {
                session.close(CloseReason::Disconnect);
                return;
            }
            Err(e) if e.is_timeout() => continue,
            Err(e) => {
                // Torn stream: report if the socket still works, then drop.
                let code = match &e {
                    FrameError::Oversized { .. } => ErrorCode::Oversized,
                    _ => ErrorCode::BadFrame,
                };
                let _ = write_reply(
                    &mut writer,
                    &Reply { frames: vec![Response::err(code, e.to_string())], close: true },
                );
                session.close(CloseReason::Disconnect);
                return;
            }
        };
        last_activity = Instant::now();
        let reply = match crate::wire::Request::parse(&payload) {
            Ok(req) => session.handle(req),
            Err(e) => {
                let code = match &e {
                    crate::wire::WireError::BadCommand(_) => ErrorCode::BadCommand,
                    crate::wire::WireError::BadRecord(_) => ErrorCode::BadFrame,
                    crate::wire::WireError::BadArg { .. } => ErrorCode::BadArg,
                };
                Reply { frames: vec![Response::err(code, e.to_string())], close: false }
            }
        };
        let close = reply.close;
        if !write_reply(&mut writer, &reply) || close {
            session.close(CloseReason::Disconnect);
            return;
        }
    }
}
