//! Zero-dependency TCP serving layer for the colock engine.
//!
//! Everything before this crate ran in-process: a benchmark thread held an
//! `Arc<TransactionManager>` and called it directly. This crate puts the
//! same manager behind a socket so the paper's *conversational* usage — a
//! designer checks out a cell, disconnects, comes back tomorrow — can be
//! exercised end to end over real connections:
//!
//! - [`frame`] — length-prefixed framing (`<len> SP <payload> LF`),
//!   PROTOCOL.md §2;
//! - [`wire`] — typed requests/responses, error codes, and the text codecs
//!   for lock targets and NF² values, PROTOCOL.md §3–§6;
//! - [`session`] — the per-connection state machine, roles feeding rule 4′
//!   authorization, the bounded session table and admission control,
//!   PROTOCOL.md §3.1;
//! - [`server`] — the thread-per-connection listener, idle timeouts and
//!   graceful drain (long locks are journaled, not released, so §3.1
//!   recovery re-adopts them after restart);
//! - [`client`] — a small blocking client used by the load generator, the
//!   stress harness and `colock_client --demo`.
//!
//! The wire protocol is text over TCP on purpose: you can drive a server
//! with `nc` (see README "Run the server"), and every frame payload is a
//! `colock-testkit` codec record, the same format the trace and journal
//! layers already use. The full specification lives in `docs/PROTOCOL.md`;
//! rustdoc here documents the *implementation*, the markdown documents the
//! *contract*.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;
pub mod session;
pub mod wire;

pub use client::Client;
pub use server::{Server, ServerConfig};
