//! Typed requests, responses, error codes and the text codecs for lock
//! targets and NF² values (PROTOCOL.md §3–§5).
//!
//! A frame payload is one `colock-testkit` codec record: tab-separated,
//! backslash-escaped fields. The first field of a request is the verb; of a
//! response, `OK`, `ERR`, `EVENT`, `STAT` or `END`. Targets and values have
//! their own single-field text syntaxes (percent-escaped, so they survive
//! the record codec untouched) defined in [`encode_target`] /
//! [`parse_target`] and [`encode_value`] / [`parse_value`].

use colock_core::protocol::ProtocolError;
use colock_core::{AccessMode, InstanceTarget};
use colock_lockmgr::{LockError, TxnId};
use colock_nf2::{ObjectKey, Value};
use colock_storage::StorageError;
use colock_testkit::codec::{decode_record, encode_record};
use colock_txn::TxnError;
use std::fmt;

/// Protocol version spoken by this build; `HELLO` carries the client's and
/// the server refuses mismatches (PROTOCOL.md §7).
pub const PROTOCOL_VERSION: u32 = 1;

/// Wire-level parse failure (distinct from [`crate::frame::FrameError`]:
/// the frame was intact, its contents were not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The record could not be decoded (bad escapes).
    BadRecord(String),
    /// Unknown verb or response head.
    BadCommand(String),
    /// A verb got the wrong argument count or a malformed argument.
    BadArg {
        /// The verb.
        verb: String,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadRecord(s) => write!(f, "undecodable record: {s}"),
            WireError::BadCommand(v) => write!(f, "unknown command {v:?}"),
            WireError::BadArg { verb, reason } => write!(f, "bad argument to {verb}: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

fn bad_arg(verb: &str, reason: impl Into<String>) -> WireError {
    WireError::BadArg { verb: verb.to_string(), reason: reason.into() }
}

/// Session role announced at `HELLO`; decides the rule 4′ rights granted to
/// every transaction the session begins (PROTOCOL.md §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// May read everything, update nothing.
    Reader,
    /// May update cells; the effectors library stays read-only (the paper's
    /// standard environment — rule 4′ weakens entry-point locks on it).
    #[default]
    Engineer,
    /// May also update the effectors library (rule 4′ ≡ rule 4 for it).
    Librarian,
}

impl Role {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Reader => "reader",
            Role::Engineer => "engineer",
            Role::Librarian => "librarian",
        }
    }

    /// Inverse of [`Role::as_str`].
    pub fn parse(s: &str) -> Option<Role> {
        Some(match s {
            "reader" => Role::Reader,
            "engineer" => Role::Engineer,
            "librarian" => Role::Librarian,
            _ => return None,
        })
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Transaction kind requested by `BEGIN` (PROTOCOL.md §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BeginKind {
    /// Conventional short transaction.
    #[default]
    Short,
    /// Long (conversational) transaction: its explicit locks are durable
    /// long locks and survive a server crash.
    Long,
    /// Read-only snapshot transaction (multiversion overlay).
    ReadOnly,
}

/// One client request (PROTOCOL.md §3 lists each with examples).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `HELLO <name> <version> [role]` — first frame on every connection.
    Hello {
        /// Client-chosen display name (shows up in session traces).
        name: String,
        /// Client's [`PROTOCOL_VERSION`].
        version: u32,
        /// Announced role.
        role: Role,
    },
    /// `BEGIN [LONG|READONLY]`.
    Begin {
        /// Requested kind.
        kind: BeginKind,
    },
    /// `GET <target>` — read the subvalue at a lock target.
    Get {
        /// The target.
        target: InstanceTarget,
    },
    /// `PUT <target> <value>` — update the subvalue (or insert a fresh
    /// complex object when the target names only a relation).
    Put {
        /// The target.
        target: InstanceTarget,
        /// New value.
        value: Value,
    },
    /// `DEL <target>` — delete a complex object or one set/list element.
    Del {
        /// The target.
        target: InstanceTarget,
    },
    /// `CHECKOUT <target> [READ|UPDATE]` — long lock + private copy.
    Checkout {
        /// The target.
        target: InstanceTarget,
        /// Check-out access (default `UPDATE`).
        access: AccessMode,
    },
    /// `CHECKIN <target> <value>` — write the modified copy back.
    Checkin {
        /// The target (must have been checked out).
        target: InstanceTarget,
        /// Modified value.
        value: Value,
    },
    /// `COMMIT`.
    Commit,
    /// `ABORT`.
    Abort,
    /// `RESUME <txnid>` — re-attach to a long transaction that survived a
    /// disconnect or a server crash (after §3.1 recovery re-adopted it).
    Resume {
        /// The transaction to re-attach.
        txn: TxnId,
    },
    /// `EXPLAIN` — stream the rendered lock timeline of this session's
    /// transactions since the session opened.
    Explain,
    /// `TRACE` — stream raw trace-event lines since the session opened.
    Trace,
    /// `STATS` — stream server and lock-manager counters.
    Stats,
    /// `QUIT` — close the session cleanly.
    Quit,
}

impl Request {
    /// Encodes to one record payload (frame it with
    /// [`crate::frame::encode_frame`]).
    pub fn encode(&self) -> String {
        let fields: Vec<String> = match self {
            Request::Hello { name, version, role } => {
                vec!["HELLO".into(), name.clone(), version.to_string(), role.to_string()]
            }
            Request::Begin { kind } => match kind {
                BeginKind::Short => vec!["BEGIN".into()],
                BeginKind::Long => vec!["BEGIN".into(), "LONG".into()],
                BeginKind::ReadOnly => vec!["BEGIN".into(), "READONLY".into()],
            },
            Request::Get { target } => vec!["GET".into(), encode_target(target)],
            Request::Put { target, value } => {
                vec!["PUT".into(), encode_target(target), encode_value(value)]
            }
            Request::Del { target } => vec!["DEL".into(), encode_target(target)],
            Request::Checkout { target, access } => vec![
                "CHECKOUT".into(),
                encode_target(target),
                match access {
                    AccessMode::Read => "READ".into(),
                    AccessMode::Update => "UPDATE".into(),
                },
            ],
            Request::Checkin { target, value } => {
                vec!["CHECKIN".into(), encode_target(target), encode_value(value)]
            }
            Request::Commit => vec!["COMMIT".into()],
            Request::Abort => vec!["ABORT".into()],
            Request::Resume { txn } => vec!["RESUME".into(), txn.0.to_string()],
            Request::Explain => vec!["EXPLAIN".into()],
            Request::Trace => vec!["TRACE".into()],
            Request::Stats => vec!["STATS".into()],
            Request::Quit => vec!["QUIT".into()],
        };
        encode_record(&fields)
    }

    /// Parses one record payload.
    pub fn parse(payload: &str) -> Result<Request, WireError> {
        let fields =
            decode_record(payload).map_err(|e| WireError::BadRecord(e.to_string()))?;
        let verb = fields.first().map(String::as_str).unwrap_or("");
        let args = &fields[1.min(fields.len())..];
        let arity = |want: &[usize]| -> Result<(), WireError> {
            if want.contains(&args.len()) {
                Ok(())
            } else {
                Err(bad_arg(verb, format!("got {} argument(s)", args.len())))
            }
        };
        match verb {
            "HELLO" => {
                arity(&[2, 3])?;
                let version = args[1]
                    .parse::<u32>()
                    .map_err(|_| bad_arg(verb, format!("bad version {:?}", args[1])))?;
                let role = match args.get(2) {
                    None => Role::default(),
                    Some(r) => Role::parse(r)
                        .ok_or_else(|| bad_arg(verb, format!("unknown role {r:?}")))?,
                };
                Ok(Request::Hello { name: args[0].clone(), version, role })
            }
            "BEGIN" => {
                arity(&[0, 1])?;
                let kind = match args.first().map(String::as_str) {
                    None => BeginKind::Short,
                    Some("LONG") => BeginKind::Long,
                    Some("READONLY") => BeginKind::ReadOnly,
                    Some(other) => return Err(bad_arg(verb, format!("unknown kind {other:?}"))),
                };
                Ok(Request::Begin { kind })
            }
            "GET" => {
                arity(&[1])?;
                Ok(Request::Get { target: parse_target(&args[0])? })
            }
            "PUT" => {
                arity(&[2])?;
                Ok(Request::Put { target: parse_target(&args[0])?, value: parse_value(&args[1])? })
            }
            "DEL" => {
                arity(&[1])?;
                Ok(Request::Del { target: parse_target(&args[0])? })
            }
            "CHECKOUT" => {
                arity(&[1, 2])?;
                let access = match args.get(1).map(String::as_str) {
                    None | Some("UPDATE") => AccessMode::Update,
                    Some("READ") => AccessMode::Read,
                    Some(other) => return Err(bad_arg(verb, format!("unknown access {other:?}"))),
                };
                Ok(Request::Checkout { target: parse_target(&args[0])?, access })
            }
            "CHECKIN" => {
                arity(&[2])?;
                Ok(Request::Checkin {
                    target: parse_target(&args[0])?,
                    value: parse_value(&args[1])?,
                })
            }
            "COMMIT" => arity(&[0]).map(|_| Request::Commit),
            "ABORT" => arity(&[0]).map(|_| Request::Abort),
            "RESUME" => {
                arity(&[1])?;
                let id = args[0]
                    .trim_start_matches('T')
                    .parse::<u64>()
                    .map_err(|_| bad_arg(verb, format!("bad txn id {:?}", args[0])))?;
                Ok(Request::Resume { txn: TxnId(id) })
            }
            "EXPLAIN" => arity(&[0]).map(|_| Request::Explain),
            "TRACE" => arity(&[0]).map(|_| Request::Trace),
            "STATS" => arity(&[0]).map(|_| Request::Stats),
            "QUIT" => arity(&[0]).map(|_| Request::Quit),
            other => Err(WireError::BadCommand(other.to_string())),
        }
    }
}

/// Machine-readable error class carried by every `ERR` response
/// (PROTOCOL.md §6 tabulates each with its source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Unframeable or undecodable request.
    BadFrame,
    /// Unknown verb, or a verb illegal in the current session state.
    BadCommand,
    /// Malformed argument (target/value syntax, arity).
    BadArg,
    /// Frame exceeded [`crate::frame::FRAME_MAX`].
    Oversized,
    /// Protocol version mismatch at `HELLO`.
    VersionMismatch,
    /// Session table full — retry against another server.
    SessionLimit,
    /// Admission control refused `BEGIN`; retry after the hinted backoff.
    Busy,
    /// Server is draining; no new work.
    ShuttingDown,
    /// Session closed after exceeding the idle timeout.
    IdleTimeout,
    /// No transaction open (data verb outside `BEGIN`…`COMMIT`).
    NoTxn,
    /// A transaction is already open on this session.
    TxnOpen,
    /// Target does not exist.
    NotFound,
    /// Target or value does not fit the schema.
    BadTarget,
    /// The session's role forbids the access (rule 4′ rights check).
    Unauthorized,
    /// Non-blocking request would have waited.
    WouldBlock,
    /// This transaction was chosen as deadlock victim; it has been aborted.
    Deadlock,
    /// Lock wait exceeded the server's per-request budget.
    LockTimeout,
    /// Transaction was victimized earlier and must abort.
    Victim,
    /// The long-lock journal crashed; grant unacknowledged.
    Crashed,
    /// Lock manager is draining for shutdown.
    Draining,
    /// Transaction not active (committed, aborted, or never begun).
    NotActive,
    /// Lock request after release (strict 2PL violation).
    TwoPhase,
    /// `CHECKIN` of a target that was never checked out.
    NotCheckedOut,
    /// Write or lock on a read-only snapshot transaction.
    ReadOnly,
    /// `RESUME` of an id the manager does not know.
    UnknownTxn,
    /// Journal replay failed during recovery.
    Recovery,
    /// Internal error (storage invariant broke mid-request).
    Internal,
}

impl ErrorCode {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "BAD_FRAME",
            ErrorCode::BadCommand => "BAD_COMMAND",
            ErrorCode::BadArg => "BAD_ARG",
            ErrorCode::Oversized => "OVERSIZED",
            ErrorCode::VersionMismatch => "VERSION_MISMATCH",
            ErrorCode::SessionLimit => "SESSION_LIMIT",
            ErrorCode::Busy => "BUSY",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::IdleTimeout => "IDLE_TIMEOUT",
            ErrorCode::NoTxn => "NO_TXN",
            ErrorCode::TxnOpen => "TXN_OPEN",
            ErrorCode::NotFound => "NOT_FOUND",
            ErrorCode::BadTarget => "BAD_TARGET",
            ErrorCode::Unauthorized => "UNAUTHORIZED",
            ErrorCode::WouldBlock => "WOULD_BLOCK",
            ErrorCode::Deadlock => "DEADLOCK",
            ErrorCode::LockTimeout => "LOCK_TIMEOUT",
            ErrorCode::Victim => "VICTIM",
            ErrorCode::Crashed => "CRASHED",
            ErrorCode::Draining => "DRAINING",
            ErrorCode::NotActive => "NOT_ACTIVE",
            ErrorCode::TwoPhase => "TWO_PHASE",
            ErrorCode::NotCheckedOut => "NOT_CHECKED_OUT",
            ErrorCode::ReadOnly => "READ_ONLY",
            ErrorCode::UnknownTxn => "UNKNOWN_TXN",
            ErrorCode::Recovery => "RECOVERY",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// Inverse of [`ErrorCode::as_str`].
    pub fn parse(s: &str) -> Option<ErrorCode> {
        ALL_ERROR_CODES.iter().copied().find(|c| c.as_str() == s)
    }

    /// Whether the client may retry the whole transaction (transient
    /// contention rather than a caller bug).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Busy
                | ErrorCode::WouldBlock
                | ErrorCode::Deadlock
                | ErrorCode::LockTimeout
                | ErrorCode::Victim
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Every error code (PROTOCOL.md §6 must list exactly these).
pub const ALL_ERROR_CODES: &[ErrorCode] = &[
    ErrorCode::BadFrame,
    ErrorCode::BadCommand,
    ErrorCode::BadArg,
    ErrorCode::Oversized,
    ErrorCode::VersionMismatch,
    ErrorCode::SessionLimit,
    ErrorCode::Busy,
    ErrorCode::ShuttingDown,
    ErrorCode::IdleTimeout,
    ErrorCode::NoTxn,
    ErrorCode::TxnOpen,
    ErrorCode::NotFound,
    ErrorCode::BadTarget,
    ErrorCode::Unauthorized,
    ErrorCode::WouldBlock,
    ErrorCode::Deadlock,
    ErrorCode::LockTimeout,
    ErrorCode::Victim,
    ErrorCode::Crashed,
    ErrorCode::Draining,
    ErrorCode::NotActive,
    ErrorCode::TwoPhase,
    ErrorCode::NotCheckedOut,
    ErrorCode::ReadOnly,
    ErrorCode::UnknownTxn,
    ErrorCode::Recovery,
    ErrorCode::Internal,
];

/// Maps a transaction-layer error onto its wire code and message.
pub fn map_txn_error(e: &TxnError) -> (ErrorCode, String) {
    let code = match e {
        TxnError::Protocol(ProtocolError::Lock(l)) => match l {
            LockError::WouldBlock { .. } => ErrorCode::WouldBlock,
            LockError::Deadlock { .. } => ErrorCode::Deadlock,
            LockError::Timeout => ErrorCode::LockTimeout,
            LockError::VictimPending(_) => ErrorCode::Victim,
            LockError::UnknownTxn(_) => ErrorCode::UnknownTxn,
            LockError::Crashed => ErrorCode::Crashed,
            LockError::Draining => ErrorCode::Draining,
        },
        TxnError::Protocol(ProtocolError::UnknownRelation(_)) => ErrorCode::BadTarget,
        TxnError::Protocol(ProtocolError::Unauthorized { .. }) => ErrorCode::Unauthorized,
        TxnError::Storage(s) => match s {
            StorageError::UnknownRelation(_) | StorageError::UnknownObject { .. } => {
                ErrorCode::NotFound
            }
            _ => ErrorCode::BadTarget,
        },
        TxnError::NotActive(_) => ErrorCode::NotActive,
        TxnError::TwoPhaseViolation(_) => ErrorCode::TwoPhase,
        TxnError::NotCheckedOut(_) => ErrorCode::NotCheckedOut,
        TxnError::Recovery(_) => ErrorCode::Recovery,
        TxnError::ReadOnlyTxn(_) => ErrorCode::ReadOnly,
    };
    (code, e.to_string())
}

/// One server response (PROTOCOL.md §4). `EVENT`/`STAT` frames stream ahead
/// of a closing `END`; everything else is a single frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; the fields depend on the verb (txn id, value, …).
    Ok(Vec<String>),
    /// Failure.
    Err {
        /// Error class.
        code: ErrorCode,
        /// Human-readable message.
        message: String,
        /// Suggested client backoff (admission control only).
        backoff_ms: Option<u64>,
    },
    /// One streamed trace line (`TRACE`) or timeline line (`EXPLAIN`).
    Event(String),
    /// One streamed counter (`STATS`).
    Stat {
        /// Counter name.
        name: String,
        /// Counter value.
        value: String,
    },
    /// End of a stream; counts the `EVENT`/`STAT` frames that preceded it.
    End(u64),
}

impl Response {
    /// Shorthand for a field-less success.
    pub fn ok0() -> Response {
        Response::Ok(Vec::new())
    }

    /// Shorthand for an error without backoff hint.
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Err { code, message: message.into(), backoff_ms: None }
    }

    /// Encodes to one record payload.
    pub fn encode(&self) -> String {
        let fields: Vec<String> = match self {
            Response::Ok(fs) => {
                let mut v = vec!["OK".to_string()];
                v.extend(fs.iter().cloned());
                v
            }
            Response::Err { code, message, backoff_ms } => {
                let mut v = vec!["ERR".to_string(), code.to_string(), message.clone()];
                if let Some(ms) = backoff_ms {
                    v.push(ms.to_string());
                }
                v
            }
            Response::Event(line) => vec!["EVENT".to_string(), line.clone()],
            Response::Stat { name, value } => {
                vec!["STAT".to_string(), name.clone(), value.clone()]
            }
            Response::End(n) => vec!["END".to_string(), n.to_string()],
        };
        encode_record(&fields)
    }

    /// Parses one record payload.
    pub fn parse(payload: &str) -> Result<Response, WireError> {
        let fields =
            decode_record(payload).map_err(|e| WireError::BadRecord(e.to_string()))?;
        let head = fields.first().map(String::as_str).unwrap_or("");
        match head {
            "OK" => Ok(Response::Ok(fields[1..].to_vec())),
            "ERR" => {
                if fields.len() < 3 || fields.len() > 4 {
                    return Err(bad_arg("ERR", format!("got {} field(s)", fields.len())));
                }
                let code = ErrorCode::parse(&fields[1])
                    .ok_or_else(|| bad_arg("ERR", format!("unknown code {:?}", fields[1])))?;
                let backoff_ms = match fields.get(3) {
                    None => None,
                    Some(ms) => Some(
                        ms.parse::<u64>()
                            .map_err(|_| bad_arg("ERR", format!("bad backoff {ms:?}")))?,
                    ),
                };
                Ok(Response::Err { code, message: fields[2].clone(), backoff_ms })
            }
            "EVENT" => {
                if fields.len() != 2 {
                    return Err(bad_arg("EVENT", format!("got {} field(s)", fields.len())));
                }
                Ok(Response::Event(fields[1].clone()))
            }
            "STAT" => {
                if fields.len() != 3 {
                    return Err(bad_arg("STAT", format!("got {} field(s)", fields.len())));
                }
                Ok(Response::Stat { name: fields[1].clone(), value: fields[2].clone() })
            }
            "END" => {
                if fields.len() != 2 {
                    return Err(bad_arg("END", format!("got {} field(s)", fields.len())));
                }
                let n = fields[1]
                    .parse::<u64>()
                    .map_err(|_| bad_arg("END", format!("bad count {:?}", fields[1])))?;
                Ok(Response::End(n))
            }
            other => Err(WireError::BadCommand(other.to_string())),
        }
    }
}

// ---------------------------------------------------------------------------
// Target codec (PROTOCOL.md §5.1)
// ---------------------------------------------------------------------------

/// Percent-escapes the characters that delimit target and value syntax.
fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '%' => out.push_str("%25"),
            '/' => out.push_str("%2F"),
            ':' => out.push_str("%3A"),
            ',' => out.push_str("%2C"),
            '(' => out.push_str("%28"),
            ')' => out.push_str("%29"),
            '{' => out.push_str("%7B"),
            '}' => out.push_str("%7D"),
            '[' => out.push_str("%5B"),
            ']' => out.push_str("%5D"),
            '=' => out.push_str("%3D"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_name`].
fn unescape_name(text: &str) -> Result<String, WireError> {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'%' {
            // Safe: we walk char boundaries by re-slicing below.
            let c = text[i..].chars().next().expect("in-bounds index");
            out.push(c);
            i += c.len_utf8();
            continue;
        }
        let hex = text.get(i + 1..i + 3).ok_or_else(|| WireError::BadArg {
            verb: "target".into(),
            reason: format!("dangling percent escape in {text:?}"),
        })?;
        let v = u8::from_str_radix(hex, 16).map_err(|_| WireError::BadArg {
            verb: "target".into(),
            reason: format!("bad percent escape %{hex} in {text:?}"),
        })?;
        out.push(v as char);
        i += 3;
    }
    Ok(out)
}

fn encode_key(tag: &str, key: &ObjectKey) -> String {
    match key {
        ObjectKey::Str(s) => format!("{tag}:{}", escape_name(s)),
        ObjectKey::Int(i) => format!("{tag}#{i}"),
    }
}

fn parse_key(tag: &str, step: &str) -> Result<Option<ObjectKey>, WireError> {
    if let Some(rest) = step.strip_prefix(&format!("{tag}#")) {
        let i = rest.parse::<i64>().map_err(|_| WireError::BadArg {
            verb: "target".into(),
            reason: format!("bad integer key {rest:?}"),
        })?;
        return Ok(Some(ObjectKey::Int(i)));
    }
    if let Some(rest) = step.strip_prefix(&format!("{tag}:")) {
        return Ok(Some(ObjectKey::Str(unescape_name(rest)?)));
    }
    Ok(None)
}

/// Encodes an [`InstanceTarget`] in the tagged-step syntax the persisted
/// `ResourcePath` codec uses, relation-rooted:
/// `rel:cells/obj:c1/attr:robots/elem:r1`. Integer keys swap `:` for `#`
/// (`obj#7`); names are percent-escaped.
///
/// ```
/// use colock_core::InstanceTarget;
/// let t = InstanceTarget::object("cells", "c1").elem("robots", "r1");
/// assert_eq!(colock_server::wire::encode_target(&t), "rel:cells/obj:c1/attr:robots/elem:r1");
/// ```
pub fn encode_target(t: &InstanceTarget) -> String {
    let mut out = format!("rel:{}", escape_name(&t.relation));
    if let Some(k) = &t.object {
        out.push('/');
        out.push_str(&encode_key("obj", k));
        for s in &t.steps {
            out.push_str(&format!("/attr:{}", escape_name(&s.attr)));
            if let Some(e) = &s.elem {
                out.push('/');
                out.push_str(&encode_key("elem", e));
            }
        }
    }
    out
}

/// Parses the [`encode_target`] syntax. Leading `db:`/`seg:` steps are
/// accepted and ignored (the engine re-derives placement from the catalog),
/// so a path printed by the trace layer can be pasted back as a target.
pub fn parse_target(text: &str) -> Result<InstanceTarget, WireError> {
    let bad = |reason: String| WireError::BadArg { verb: "target".into(), reason };
    let mut relation: Option<String> = None;
    let mut object: Option<ObjectKey> = None;
    let mut steps: Vec<colock_core::TargetStep> = Vec::new();
    let mut pending_attr: Option<String> = None;

    for seg in text.split('/') {
        if seg.starts_with("db:") || seg.starts_with("seg:") {
            if relation.is_some() {
                return Err(bad(format!("misplaced placement step {seg:?}")));
            }
            continue;
        }
        if let Some(rest) = seg.strip_prefix("rel:") {
            if relation.is_some() {
                return Err(bad(format!("second relation step {seg:?}")));
            }
            relation = Some(unescape_name(rest)?);
            continue;
        }
        if relation.is_none() {
            return Err(bad(format!("target must start with rel: (got {seg:?})")));
        }
        if let Some(k) = parse_key("obj", seg)? {
            if object.is_some() || !steps.is_empty() || pending_attr.is_some() {
                return Err(bad(format!("misplaced object step {seg:?}")));
            }
            object = Some(k);
            continue;
        }
        if let Some(rest) = seg.strip_prefix("attr:") {
            if object.is_none() {
                return Err(bad(format!("attribute step {seg:?} before any object step")));
            }
            if let Some(a) = pending_attr.take() {
                steps.push(colock_core::TargetStep::attr(a));
            }
            pending_attr = Some(unescape_name(rest)?);
            continue;
        }
        if let Some(k) = parse_key("elem", seg)? {
            let attr = pending_attr
                .take()
                .ok_or_else(|| bad(format!("element step {seg:?} without attribute")))?;
            steps.push(colock_core::TargetStep { attr, elem: Some(k) });
            continue;
        }
        return Err(bad(format!("unknown step {seg:?}")));
    }
    if let Some(a) = pending_attr.take() {
        steps.push(colock_core::TargetStep::attr(a));
    }
    let relation = relation.ok_or_else(|| bad("empty target".into()))?;
    Ok(InstanceTarget { relation, object, steps })
}

// ---------------------------------------------------------------------------
// Value codec (PROTOCOL.md §5.2)
// ---------------------------------------------------------------------------

/// Encodes an NF² [`Value`] as a single field of tagged text:
/// atoms `s:`/`i:`/`r:`/`b:`, references `ref:rel:s:key` (or `ref:rel:i:7`),
/// `{a,b}` sets, `[a,b]` lists, `(name=value,...)` tuples. Strings and names
/// are percent-escaped, so the syntax characters never collide with data.
///
/// ```
/// use colock_nf2::Value;
/// use colock_nf2::value::build::tup;
/// let v = tup(vec![("tool", Value::str("gripper"))]);
/// assert_eq!(colock_server::wire::encode_value(&v), "(tool=s:gripper)");
/// ```
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("s:{}", escape_name(s)),
        Value::Int(i) => format!("i:{i}"),
        Value::Real(r) => format!("r:{r}"),
        Value::Bool(b) => format!("b:{b}"),
        Value::Ref(r) => {
            let key = match &r.key {
                ObjectKey::Str(s) => format!("s:{}", escape_name(s)),
                ObjectKey::Int(i) => format!("i:{i}"),
            };
            format!("ref:{}:{key}", escape_name(&r.relation))
        }
        Value::Set(es) => {
            format!("{{{}}}", es.iter().map(encode_value).collect::<Vec<_>>().join(","))
        }
        Value::List(es) => {
            format!("[{}]", es.iter().map(encode_value).collect::<Vec<_>>().join(","))
        }
        Value::Tuple(fs) => format!(
            "({})",
            fs.iter()
                .map(|(n, v)| format!("{}={}", escape_name(n), encode_value(v)))
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

/// Parses the [`encode_value`] syntax (recursive descent).
pub fn parse_value(text: &str) -> Result<Value, WireError> {
    let mut p = ValueParser { text, pos: 0 };
    let v = p.value()?;
    if p.pos != text.len() {
        return Err(p.err(format!("trailing garbage at byte {}", p.pos)));
    }
    Ok(v)
}

struct ValueParser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> ValueParser<'a> {
    fn err(&self, reason: String) -> WireError {
        WireError::BadArg { verb: "value".into(), reason }
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> Result<(), WireError> {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?} at byte {} of {:?}", self.pos, self.text)))
        }
    }

    /// Reads a run of non-delimiter characters ( `,` `)` `}` `]` `=` end it).
    fn run(&mut self) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if matches!(c, ',' | ')' | '}' | ']' | '=') {
                break;
            }
            self.pos += c.len_utf8();
        }
        &self.text[start..self.pos]
    }

    fn value(&mut self) -> Result<Value, WireError> {
        match self.peek() {
            Some('{') => self.sequence('{', '}').map(Value::Set),
            Some('[') => self.sequence('[', ']').map(Value::List),
            Some('(') => self.tuple(),
            Some(_) => self.atom(),
            None => Err(self.err("empty value".into())),
        }
    }

    fn sequence(&mut self, open: char, close: char) -> Result<Vec<Value>, WireError> {
        self.eat(open)?;
        let mut out = Vec::new();
        if self.peek() == Some(close) {
            self.eat(close)?;
            return Ok(out);
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(',') => self.eat(',')?,
                Some(c) if c == close => {
                    self.eat(close)?;
                    return Ok(out);
                }
                _ => return Err(self.err(format!("unterminated sequence in {:?}", self.text))),
            }
        }
    }

    fn tuple(&mut self) -> Result<Value, WireError> {
        self.eat('(')?;
        let mut fields = Vec::new();
        if self.peek() == Some(')') {
            self.eat(')')?;
            return Ok(Value::Tuple(fields));
        }
        loop {
            let name = unescape_name(self.run())?;
            self.eat('=')?;
            let v = self.value()?;
            fields.push((name, v));
            match self.peek() {
                Some(',') => self.eat(',')?,
                Some(')') => {
                    self.eat(')')?;
                    return Ok(Value::Tuple(fields));
                }
                _ => return Err(self.err(format!("unterminated tuple in {:?}", self.text))),
            }
        }
    }

    fn atom(&mut self) -> Result<Value, WireError> {
        let run = self.run();
        if let Some(rest) = run.strip_prefix("s:") {
            return Ok(Value::Str(unescape_name(rest)?));
        }
        if let Some(rest) = run.strip_prefix("i:") {
            return rest
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("bad integer {rest:?}")));
        }
        if let Some(rest) = run.strip_prefix("r:") {
            return rest
                .parse::<f64>()
                .map(Value::Real)
                .map_err(|_| self.err(format!("bad real {rest:?}")));
        }
        if let Some(rest) = run.strip_prefix("b:") {
            return match rest {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                _ => Err(self.err(format!("bad boolean {rest:?}"))),
            };
        }
        if let Some(rest) = run.strip_prefix("ref:") {
            // rel : (s:key | i:int) — the relation may itself contain an
            // escaped colon, so split at the *last* unambiguous key tag.
            if let Some(idx) = rest.rfind(":s:") {
                let relation = unescape_name(&rest[..idx])?;
                let key = ObjectKey::Str(unescape_name(&rest[idx + 3..])?);
                return Ok(Value::Ref(colock_nf2::ObjectRef { relation, key }));
            }
            if let Some(idx) = rest.rfind(":i:") {
                let relation = unescape_name(&rest[..idx])?;
                let key = rest[idx + 3..]
                    .parse::<i64>()
                    .map(ObjectKey::Int)
                    .map_err(|_| self.err(format!("bad reference key in {run:?}")))?;
                return Ok(Value::Ref(colock_nf2::ObjectRef { relation, key }));
            }
            return Err(self.err(format!("bad reference {run:?}")));
        }
        Err(self.err(format!("unknown atom {run:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colock_nf2::value::build::{list, set, tup};

    #[test]
    fn target_roundtrip() {
        for t in [
            InstanceTarget::relation("cells"),
            InstanceTarget::object("cells", "c1"),
            InstanceTarget::object("cells", "c1").attr("robots"),
            InstanceTarget::object("cells", "c1").elem("robots", "r1").attr("trajectory"),
            InstanceTarget::object("parts", ObjectKey::Int(7)).elem("subparts", ObjectKey::Int(-2)),
            InstanceTarget::object("weird/rel", "a:b%c").attr("x=y"),
        ] {
            let text = encode_target(&t);
            assert_eq!(parse_target(&text).unwrap(), t, "{text}");
        }
    }

    #[test]
    fn target_accepts_placement_prefix() {
        let t = parse_target("db:db1/seg:seg1/rel:cells/obj:c1").unwrap();
        assert_eq!(t, InstanceTarget::object("cells", "c1"));
    }

    #[test]
    fn target_rejects_malformed_paths() {
        for bad in [
            "",
            "cells",
            "obj:c1",
            "rel:cells/elem:r1",
            "rel:cells/rel:cells",
            "rel:cells/obj:c1/obj:c2",
            "rel:cells/attr:robots",
            "rel:cells/obj:c1/db:d",
            "rel:cells/obj#notanint",
            "rel:cells/obj:c1/bogus:x",
            "rel:ce%zzlls",
        ] {
            assert!(parse_target(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn value_roundtrip() {
        let hostile = "a,b=c(d)e{f}g[h]i:j%k";
        for v in [
            Value::str(""),
            Value::str(hostile),
            Value::Int(-42),
            Value::Real(2.5),
            Value::Bool(true),
            Value::reference("effectors", "e1"),
            Value::Ref(colock_nf2::ObjectRef {
                relation: "pa:rts".into(),
                key: ObjectKey::Int(9),
            }),
            set(vec![]),
            list(vec![Value::Int(1), Value::Int(2)]),
            tup(vec![]),
            tup(vec![
                ("robot_id", Value::str("r1")),
                ("trajectory", Value::str(hostile)),
                (
                    "effectors",
                    set(vec![Value::reference("effectors", "e1"), Value::reference("effectors", "e2")]),
                ),
            ]),
            list(vec![set(vec![tup(vec![("k", Value::str("v"))])])]),
        ] {
            let text = encode_value(&v);
            assert_eq!(parse_value(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn value_rejects_malformed_text() {
        for bad in ["", "x:1", "i:ten", "r:x", "b:maybe", "{i:1", "(a=i:1", "(a)", "i:1garbage,", "ref:only"] {
            assert!(parse_value(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn request_roundtrip_every_command() {
        let t = InstanceTarget::object("cells", "c1").elem("robots", "r1");
        let v = tup(vec![("trajectory", Value::str("traj-9"))]);
        for req in [
            Request::Hello { name: "demo".into(), version: PROTOCOL_VERSION, role: Role::Librarian },
            Request::Begin { kind: BeginKind::Short },
            Request::Begin { kind: BeginKind::Long },
            Request::Begin { kind: BeginKind::ReadOnly },
            Request::Get { target: t.clone() },
            Request::Put { target: t.clone(), value: v.clone() },
            Request::Del { target: t.clone() },
            Request::Checkout { target: t.clone(), access: AccessMode::Read },
            Request::Checkout { target: t.clone(), access: AccessMode::Update },
            Request::Checkin { target: t.clone(), value: v },
            Request::Commit,
            Request::Abort,
            Request::Resume { txn: TxnId(17) },
            Request::Explain,
            Request::Trace,
            Request::Stats,
            Request::Quit,
        ] {
            let payload = req.encode();
            assert_eq!(Request::parse(&payload).unwrap(), req, "{payload}");
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Ok(vec!["T7".into()]),
            Response::ok0(),
            Response::err(ErrorCode::Deadlock, "deadlock: victim T2"),
            Response::Err { code: ErrorCode::Busy, message: "full".into(), backoff_ms: Some(25) },
            Response::Event("1\t2\tgrant\t3\t0\tX\ttarget\tr\timmediate".into()),
            Response::Stat { name: "requests".into(), value: "512".into() },
            Response::End(12),
        ] {
            let payload = resp.encode();
            assert_eq!(Response::parse(&payload).unwrap(), resp, "{payload}");
        }
    }

    #[test]
    fn error_codes_roundtrip_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in ALL_ERROR_CODES {
            assert!(seen.insert(c.as_str()), "duplicate wire name {}", c.as_str());
            assert_eq!(ErrorCode::parse(c.as_str()), Some(*c));
        }
    }

    #[test]
    fn unknown_verbs_and_bad_arity_are_typed() {
        assert!(matches!(Request::parse("FROB"), Err(WireError::BadCommand(_))));
        assert!(matches!(Request::parse("GET"), Err(WireError::BadArg { .. })));
        assert!(matches!(Request::parse("COMMIT\textra"), Err(WireError::BadArg { .. })));
        assert!(matches!(Request::parse("HELLO\tx\tnotanumber"), Err(WireError::BadArg { .. })));
    }
}
