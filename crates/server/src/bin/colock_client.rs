//! Interactive / demo client for the colock wire protocol.
//!
//! - `colock_client <addr> --demo` runs a scripted conversational session
//!   (the transcript quoted in the README) and exits non-zero if any step
//!   fails.
//! - `colock_client <addr>` reads commands from stdin, one per line, spaces
//!   standing in for the record separator (`BEGIN LONG`,
//!   `GET rel:cells/obj:c1`, …), and prints each response frame.

use colock_server::client::Client;
use colock_server::wire::{parse_target, BeginKind, Request, Response, Role};
use colock_core::AccessMode;
use colock_nf2::Value;
use std::io::BufRead;

fn fail(msg: &str) -> ! {
    eprintln!("colock_client: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .or_else(|| std::env::var("COLOCK_ADDR").ok())
        .unwrap_or_else(|| fail("usage: colock_client <addr> [--demo]"));
    let demo = args.iter().any(|a| a == "--demo");
    if demo {
        run_demo(&addr);
    } else {
        run_repl(&addr);
    }
}

/// The scripted conversational session: rename a cell, check a robot out
/// and back in under a long transaction, show the timeline.
fn run_demo(addr: &str) {
    let show = |dir: char, text: &str| println!("{dir} {text}");
    let mut c = Client::connect(addr, "demo", Role::Engineer)
        .unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    show('>', "HELLO demo 1 engineer");
    show('<', "OK sid v1 engineer");

    let txn = c.begin(BeginKind::Short).unwrap_or_else(|e| fail(&e.to_string()));
    show('>', "BEGIN");
    show('<', &format!("OK T{}", txn.0));

    let name = parse_target("rel:cells/obj:c1/attr:robots/elem:r1/attr:trajectory").expect("static target");
    let v = c.get(&name).unwrap_or_else(|e| fail(&e.to_string()));
    show('>', "GET rel:cells/obj:c1/attr:robots/elem:r1/attr:trajectory");
    show('<', &format!("OK {}", colock_server::client::value_text(&v)));

    c.put(&name, Value::str("traj-retuned")).unwrap_or_else(|e| fail(&e.to_string()));
    show('>', "PUT rel:cells/obj:c1/attr:robots/elem:r1/attr:trajectory s:traj-retuned");
    show('<', "OK");

    c.commit().unwrap_or_else(|e| fail(&e.to_string()));
    show('>', "COMMIT");
    show('<', "OK");

    // The conversational part: a long transaction checks a robot out.
    let txn = c.begin(BeginKind::Long).unwrap_or_else(|e| fail(&e.to_string()));
    show('>', "BEGIN LONG");
    show('<', &format!("OK T{}", txn.0));

    let robot = parse_target("rel:cells/obj:c1/attr:robots/elem:r1").expect("static target");
    let copy = c.checkout(&robot, AccessMode::Update).unwrap_or_else(|e| fail(&e.to_string()));
    show('>', "CHECKOUT rel:cells/obj:c1/attr:robots/elem:r1 UPDATE");
    show('<', "OK <robot tuple>");

    c.checkin(&robot, copy).unwrap_or_else(|e| fail(&e.to_string()));
    show('>', "CHECKIN rel:cells/obj:c1/attr:robots/elem:r1 <robot tuple>");
    show('<', "OK");

    c.commit().unwrap_or_else(|e| fail(&e.to_string()));
    show('>', "COMMIT");
    show('<', "OK");

    let timeline = c.explain().unwrap_or_else(|e| fail(&e.to_string()));
    show('>', "EXPLAIN");
    for line in &timeline {
        show('<', &format!("EVENT {line}"));
    }
    show('<', &format!("END {}", timeline.len()));

    c.quit();
    show('>', "QUIT");
    show('<', "OK");
}

/// Line-oriented REPL: space-separated words become record fields.
fn run_repl(addr: &str) {
    let mut c = Client::connect(addr, "repl", Role::Engineer)
        .unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let payload = line.split_whitespace().collect::<Vec<_>>().join("\t");
        let req = match Request::parse(&payload) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("! {e}");
                continue;
            }
        };
        let streaming = matches!(req, Request::Explain | Request::Trace | Request::Stats);
        if let Err(e) = c.send(&req) {
            fail(&e.to_string());
        }
        loop {
            match c.recv() {
                Ok(frame) => {
                    println!("{}", render(&frame));
                    let done = !streaming || matches!(frame, Response::End(_));
                    if streaming && !matches!(frame, Response::End(_)) {
                        continue;
                    }
                    if done {
                        break;
                    }
                }
                Err(e) => fail(&e.to_string()),
            }
        }
        if matches!(req, Request::Quit) {
            break;
        }
    }
}

fn render(frame: &Response) -> String {
    match frame {
        Response::Ok(fields) if fields.is_empty() => "OK".into(),
        Response::Ok(fields) => format!("OK {}", fields.join(" ")),
        Response::Err { code, message, backoff_ms } => match backoff_ms {
            Some(ms) => format!("ERR {code} {message} (retry in {ms}ms)"),
            None => format!("ERR {code} {message}"),
        },
        Response::Event(line) => format!("EVENT {line}"),
        Response::Stat { name, value } => format!("STAT {name} {value}"),
        Response::End(n) => format!("END {n}"),
    }
}
