//! Standalone colock server over the paper's standard cells environment.
//!
//! Builds the Fig. 1 robot-cells store (`COLOCK_CELLS`/`COLOCK_OBJECTS`/…
//! size knobs), attaches a durable long-lock journal, and serves the wire
//! protocol until stdin closes — at which point it drains gracefully and,
//! if `COLOCK_JOURNAL` names a file, saves the journal so the next start
//! re-adopts surviving long locks (§3.1 recovery).
//!
//! Prints `LISTENING <addr>` on stdout once the socket is bound so scripts
//! (and `scripts/check.sh`) can discover an ephemeral port.

use colock_core::authorization::{Authorization, Right};
use colock_lockmgr::persistent::Journal;
use colock_server::{Server, ServerConfig};
use colock_sim::{build_cells_store, CellsConfig};
use colock_txn::{ProtocolKind, TransactionManager};
use std::io::BufRead;
use std::sync::{Arc, Mutex};

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    colock_trace::enable_from_env();
    let cfg = ServerConfig::from_env();

    let cells = CellsConfig {
        n_cells: env_parse("COLOCK_CELLS", 8),
        c_objects_per_cell: env_parse("COLOCK_OBJECTS", 32),
        ..Default::default()
    };
    let mut authz = Authorization::allow_all();
    authz.set_relation_default("effectors", Right::Read);
    let manager = Arc::new(TransactionManager::over_store(
        build_cells_store(&cells),
        authz,
        ProtocolKind::Proposed,
    ));

    // Durable long locks: an in-memory journal medium, seeded from (and
    // saved back to) COLOCK_JOURNAL when set, so long locks survive a
    // graceful restart of this process too.
    let journal_path = std::env::var("COLOCK_JOURNAL").ok();
    let medium = Arc::new(Mutex::new(String::new()));
    if let Some(path) = &journal_path {
        if let Ok(text) = std::fs::read_to_string(path) {
            *medium.lock().expect("fresh medium") = text;
        }
    }
    let seed = medium.lock().expect("fresh medium").clone();
    let journal = Arc::new(Journal::over_medium(Arc::clone(&medium)));
    manager.attach_journal(Arc::clone(&journal));
    if !seed.is_empty() {
        match manager.recover(&seed) {
            Ok(report) => eprintln!(
                "recovered {} long-lock owner(s) from {}",
                report.owners.len(),
                journal_path.as_deref().unwrap_or("journal"),
            ),
            Err(e) => eprintln!("journal replay failed ({e}); starting clean"),
        }
    }

    let drain_budget = cfg.drain_timeout;
    let server = match Server::start(manager, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", server.addr());

    // Serve until stdin closes (or a line saying "drain" arrives); that is
    // the graceful-shutdown signal scripts can deliver portably.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line.as_deref().map(str::trim) {
            Ok("drain") | Err(_) => break,
            _ => {}
        }
    }
    let stragglers = server.drain(drain_budget);
    if stragglers > 0 {
        eprintln!("drain budget expired with {stragglers} session(s) still open");
    }
    if let Some(path) = &journal_path {
        let text = medium.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("journal save failed: {e}");
        }
    }
}
