//! A small blocking client over the wire protocol.
//!
//! This is the client the load generator, the stress harness and
//! `colock_client` use: one [`Client`] per connection, one request in
//! flight at a time (the typed helpers like [`Client::get`] hide the
//! frame/record plumbing). It deliberately stays as thin as the protocol —
//! no retries, no pooling — so the harnesses above it control those knobs.

use crate::frame::{encode_frame, FrameError, FrameReader};
use crate::wire::{
    encode_target, encode_value, parse_value, BeginKind, ErrorCode, Request, Response, Role,
    WireError, PROTOCOL_VERSION,
};
use colock_core::{AccessMode, InstanceTarget};
use colock_lockmgr::TxnId;
use colock_nf2::Value;
use std::fmt;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: transport, framing, or a server `ERR`.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / connect failure.
    Io(std::io::Error),
    /// Framing failure (torn stream).
    Frame(FrameError),
    /// The response did not parse or was not the expected shape.
    Wire(WireError),
    /// The server answered `ERR`.
    Server {
        /// Error class.
        code: ErrorCode,
        /// Server message.
        message: String,
        /// Backoff hint, when the server gave one.
        backoff_ms: Option<u64>,
    },
    /// The server closed the connection mid-exchange.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message, .. } => write!(f, "server error {code}: {message}"),
            ClientError::Disconnected => f.write_str("server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server error code, when this is a server `ERR`.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Whether retrying the whole transaction makes sense (contention,
    /// admission refusal — not a caller bug).
    pub fn is_retryable(&self) -> bool {
        self.code().is_some_and(ErrorCode::is_retryable)
    }
}

/// Blocking connection to a colock server.
pub struct Client {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client").field("peer", &self.writer.peer_addr().ok()).finish()
    }
}

impl Client {
    /// Connects and performs the `HELLO` exchange.
    pub fn connect(
        addr: impl ToSocketAddrs,
        name: &str,
        role: Role,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut client = Client { reader: FrameReader::new(stream), writer };
        client.request_ok(&Request::Hello {
            name: name.into(),
            version: PROTOCOL_VERSION,
            role,
        })?;
        Ok(client)
    }

    /// Sets the socket read timeout (for harnesses that must not hang).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request frame.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.writer.write_all(encode_frame(&req.encode()).as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one response frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = match self.reader.read_frame() {
            Ok(Some(p)) => p,
            Ok(None) => return Err(ClientError::Disconnected),
            Err(e) => return Err(ClientError::Frame(e)),
        };
        Response::parse(&payload).map_err(ClientError::Wire)
    }

    /// Sends a request and insists on a single `OK`, returning its fields.
    pub fn request_ok(&mut self, req: &Request) -> Result<Vec<String>, ClientError> {
        self.send(req)?;
        match self.recv()? {
            Response::Ok(fields) => Ok(fields),
            Response::Err { code, message, backoff_ms } => {
                Err(ClientError::Server { code, message, backoff_ms })
            }
            other => Err(ClientError::Wire(WireError::BadCommand(format!("{other:?}")))),
        }
    }

    /// Sends a streaming request and collects `EVENT`/`STAT` frames up to
    /// `END`.
    pub fn request_stream(&mut self, req: &Request) -> Result<Vec<Response>, ClientError> {
        self.send(req)?;
        let mut out = Vec::new();
        loop {
            match self.recv()? {
                Response::End(_) => return Ok(out),
                Response::Err { code, message, backoff_ms } => {
                    return Err(ClientError::Server { code, message, backoff_ms })
                }
                frame => out.push(frame),
            }
        }
    }

    /// `BEGIN`; returns the transaction id.
    pub fn begin(&mut self, kind: BeginKind) -> Result<TxnId, ClientError> {
        let fields = self.request_ok(&Request::Begin { kind })?;
        parse_txn_field(fields.first())
    }

    /// `RESUME <txn>`.
    pub fn resume(&mut self, txn: TxnId) -> Result<(), ClientError> {
        self.request_ok(&Request::Resume { txn }).map(|_| ())
    }

    /// `GET`; returns the decoded value.
    pub fn get(&mut self, target: &InstanceTarget) -> Result<Value, ClientError> {
        let fields = self.request_ok(&Request::Get { target: target.clone() })?;
        parse_value_field(fields.first())
    }

    /// `PUT` on an existing target.
    pub fn put(&mut self, target: &InstanceTarget, value: Value) -> Result<(), ClientError> {
        self.request_ok(&Request::Put { target: target.clone(), value }).map(|_| ())
    }

    /// `PUT` on a bare relation target: inserts and returns the new
    /// object's target text.
    pub fn insert(&mut self, relation: &str, value: Value) -> Result<String, ClientError> {
        let target = InstanceTarget::relation(relation);
        let fields = self.request_ok(&Request::Put { target, value })?;
        fields.into_iter().next().ok_or(ClientError::Disconnected)
    }

    /// `DEL`.
    pub fn del(&mut self, target: &InstanceTarget) -> Result<(), ClientError> {
        self.request_ok(&Request::Del { target: target.clone() }).map(|_| ())
    }

    /// `CHECKOUT`; returns the checked-out value.
    pub fn checkout(
        &mut self,
        target: &InstanceTarget,
        access: AccessMode,
    ) -> Result<Value, ClientError> {
        let fields = self.request_ok(&Request::Checkout { target: target.clone(), access })?;
        parse_value_field(fields.first())
    }

    /// `CHECKIN`.
    pub fn checkin(&mut self, target: &InstanceTarget, value: Value) -> Result<(), ClientError> {
        self.request_ok(&Request::Checkin { target: target.clone(), value }).map(|_| ())
    }

    /// `COMMIT`.
    pub fn commit(&mut self) -> Result<(), ClientError> {
        self.request_ok(&Request::Commit).map(|_| ())
    }

    /// `ABORT`.
    pub fn abort(&mut self) -> Result<(), ClientError> {
        self.request_ok(&Request::Abort).map(|_| ())
    }

    /// `EXPLAIN`; returns the rendered timeline lines.
    pub fn explain(&mut self) -> Result<Vec<String>, ClientError> {
        Ok(self
            .request_stream(&Request::Explain)?
            .into_iter()
            .filter_map(|f| match f {
                Response::Event(line) => Some(line),
                _ => None,
            })
            .collect())
    }

    /// `TRACE`; returns the raw event lines.
    pub fn trace(&mut self) -> Result<Vec<String>, ClientError> {
        Ok(self
            .request_stream(&Request::Trace)?
            .into_iter()
            .filter_map(|f| match f {
                Response::Event(line) => Some(line),
                _ => None,
            })
            .collect())
    }

    /// `STATS`; returns `(name, value)` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, String)>, ClientError> {
        Ok(self
            .request_stream(&Request::Stats)?
            .into_iter()
            .filter_map(|f| match f {
                Response::Stat { name, value } => Some((name, value)),
                _ => None,
            })
            .collect())
    }

    /// `QUIT` (best effort — the server may already be gone).
    pub fn quit(&mut self) {
        let _ = self.request_ok(&Request::Quit);
    }
}

fn parse_txn_field(field: Option<&String>) -> Result<TxnId, ClientError> {
    let text = field.ok_or(ClientError::Disconnected)?;
    text.trim_start_matches('T')
        .parse::<u64>()
        .map(TxnId)
        .map_err(|_| ClientError::Wire(WireError::BadCommand(format!("bad txn id {text:?}"))))
}

fn parse_value_field(field: Option<&String>) -> Result<Value, ClientError> {
    let text = field.ok_or(ClientError::Disconnected)?;
    parse_value(text).map_err(ClientError::Wire)
}

/// Re-export so callers can build targets without importing `colock-core`.
pub use crate::wire::parse_target;

/// Convenience: encodes a target for display (mirrors [`parse_target`]).
pub fn target_text(target: &InstanceTarget) -> String {
    encode_target(target)
}

/// Convenience: encodes a value for display (mirrors
/// [`crate::wire::parse_value`]).
pub fn value_text(value: &Value) -> String {
    encode_value(value)
}
