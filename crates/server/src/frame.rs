//! Length-prefixed framing (PROTOCOL.md §2).
//!
//! One frame is `<len> SP <payload> LF`: the payload's byte length in ASCII
//! decimal, one space, the payload, one newline. The payload is a
//! `colock-testkit` codec record (tab-separated, backslash-escaped fields),
//! which guarantees it never contains a raw newline — so the terminator
//! doubles as a cheap resynchronization check: a frame whose `len`th payload
//! byte is not followed by `\n` means the stream is torn and the connection
//! must be dropped.
//!
//! The explicit length prefix is what makes pipelining safe: a reader can
//! sit on a buffer holding three and a half requests and peel off exactly
//! three without guessing where records end.

use std::fmt;
use std::io::{self, Read};

/// Hard cap on payload bytes per frame. A `PUT` carrying a whole checked-out
/// cell stays far below this; anything larger is a protocol error
/// ([`FrameError::Oversized`]), not a buffering problem.
pub const FRAME_MAX: usize = 1 << 20;

/// Maximum digits in the length prefix (enough for [`FRAME_MAX`]).
const LEN_DIGITS_MAX: usize = 8;

/// Framing failure. Everything except [`FrameError::Io`] is fatal for the
/// connection: after a malformed prefix or a missing terminator there is no
/// reliable way to find the next frame boundary.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error. `WouldBlock`/`TimedOut` are retryable (the
    /// reader keeps any partial frame buffered); everything else is fatal.
    Io(io::Error),
    /// The length prefix is not `<digits> SP` (or is absurdly long).
    BadLength(String),
    /// The declared payload length exceeds [`FRAME_MAX`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes the frame still needed.
        missing: usize,
    },
    /// The byte after the payload is not `\n` — the declared length lied.
    BadTerminator,
    /// The payload is not valid UTF-8.
    NotUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadLength(s) => write!(f, "malformed length prefix {s:?}"),
            FrameError::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {FRAME_MAX}-byte cap")
            }
            FrameError::Truncated { missing } => {
                write!(f, "stream ended mid-frame ({missing} bytes missing)")
            }
            FrameError::BadTerminator => f.write_str("frame not terminated by newline"),
            FrameError::NotUtf8 => f.write_str("frame payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// Whether this error is a retryable read timeout rather than a torn
    /// stream (the session loop's idle tick).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Encodes one payload as a wire frame: `<len> SP <payload> LF`.
///
/// ```
/// assert_eq!(colock_server::frame::encode_frame("HELLO"), "5 HELLO\n");
/// ```
pub fn encode_frame(payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "codec records never contain raw newlines");
    format!("{} {}\n", payload.len(), payload)
}

/// Incremental frame reader over any byte stream.
///
/// Keeps its own buffer so a read timeout mid-frame loses nothing: the next
/// [`FrameReader::read_frame`] call resumes where the stream paused. Multiple
/// pipelined frames read in one syscall are handed out one at a time.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Read chunk size (small to exercise resumption in tests).
    chunk: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader { inner, buf: Vec::new(), chunk: 4096 }
    }

    /// Wraps a byte stream with a custom read-chunk size (tests).
    pub fn with_chunk(inner: R, chunk: usize) -> Self {
        FrameReader { inner, buf: Vec::new(), chunk: chunk.max(1) }
    }

    /// The underlying stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads the next complete frame's payload. `Ok(None)` is clean EOF (no
    /// partial frame pending). Retryable timeouts surface as
    /// [`FrameError::Io`] with the partial frame still buffered.
    pub fn read_frame(&mut self) -> Result<Option<String>, FrameError> {
        loop {
            if let Some(parsed) = self.try_parse()? {
                return Ok(Some(parsed));
            }
            let mut chunk = vec![0u8; self.chunk];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    // We know the frame is incomplete (try_parse said so).
                    return Err(FrameError::Truncated { missing: self.missing_bytes() });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Whether a partial frame is sitting in the buffer.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to peel one frame off the front of the buffer. `Ok(None)` means
    /// "need more bytes".
    fn try_parse(&mut self) -> Result<Option<String>, FrameError> {
        let Some((len, header)) = self.parse_prefix()? else {
            return Ok(None);
        };
        if len > FRAME_MAX {
            return Err(FrameError::Oversized { len });
        }
        let total = header + len + 1; // prefix + payload + '\n'
        if self.buf.len() < total {
            return Ok(None);
        }
        if self.buf[header + len] != b'\n' {
            return Err(FrameError::BadTerminator);
        }
        let payload = std::str::from_utf8(&self.buf[header..header + len])
            .map_err(|_| FrameError::NotUtf8)?
            .to_string();
        self.buf.drain(..total);
        Ok(Some(payload))
    }

    /// Parses `<digits> SP` at the buffer front. Returns `(len, header_len)`
    /// where `header_len` includes the space; `Ok(None)` means the prefix is
    /// not complete yet.
    fn parse_prefix(&self) -> Result<Option<(usize, usize)>, FrameError> {
        let mut digits = 0usize;
        for (i, b) in self.buf.iter().enumerate() {
            match b {
                b'0'..=b'9' => {
                    digits += 1;
                    if digits > LEN_DIGITS_MAX {
                        return Err(self.bad_length());
                    }
                }
                b' ' if digits > 0 => {
                    let text = std::str::from_utf8(&self.buf[..i]).expect("digits are ASCII");
                    let len =
                        text.parse::<usize>().map_err(|_| self.bad_length())?;
                    return Ok(Some((len, i + 1)));
                }
                _ => return Err(self.bad_length()),
            }
        }
        Ok(None)
    }

    fn bad_length(&self) -> FrameError {
        let upto = self.buf.len().min(24);
        FrameError::BadLength(String::from_utf8_lossy(&self.buf[..upto]).into_owned())
    }

    /// Bytes still missing from the currently buffered partial frame (best
    /// effort; 1 when even the prefix is incomplete).
    fn missing_bytes(&self) -> usize {
        match self.parse_prefix() {
            Ok(Some((len, header))) => (header + len + 1).saturating_sub(self.buf.len()),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(bytes: &[u8]) -> FrameReader<Cursor<Vec<u8>>> {
        FrameReader::new(Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn roundtrip_single_frame() {
        let f = encode_frame("BEGIN\tLONG");
        let mut r = reader(f.as_bytes());
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("BEGIN\tLONG"));
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn empty_payload_is_legal() {
        let mut r = reader(b"0 \n");
        assert_eq!(r.read_frame().unwrap().as_deref(), Some(""));
    }

    #[test]
    fn pipelined_frames_come_out_one_at_a_time() {
        let mut bytes = String::new();
        for p in ["GET\ta", "GET\tb", "COMMIT"] {
            bytes.push_str(&encode_frame(p));
        }
        let mut r = reader(bytes.as_bytes());
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("GET\ta"));
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("GET\tb"));
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("COMMIT"));
        assert!(r.read_frame().unwrap().is_none());
    }

    #[test]
    fn tiny_chunks_resume_mid_frame() {
        let f = encode_frame("HELLO\tloadgen\t1\tengineer");
        let mut r = FrameReader::with_chunk(Cursor::new(f.clone().into_bytes()), 1);
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("HELLO\tloadgen\t1\tengineer"));
    }

    #[test]
    fn bad_prefixes_are_rejected() {
        for bad in ["x5 HELLO\n", " 5 HELLO\n", "5x HELLO\n", "-3 a\n", "999999999 x\n"] {
            let err = reader(bad.as_bytes()).read_frame().unwrap_err();
            assert!(matches!(err, FrameError::BadLength(_)), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn oversized_declared_length_is_refused_before_buffering() {
        let prefix = format!("{} ", FRAME_MAX + 1);
        let err = reader(prefix.as_bytes()).read_frame().unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }), "{err}");
    }

    #[test]
    fn truncated_frame_is_detected_at_eof() {
        let err = reader(b"10 HELLO").read_frame().unwrap_err();
        assert!(matches!(err, FrameError::Truncated { .. }), "{err}");
    }

    #[test]
    fn wrong_length_is_caught_by_the_terminator_check() {
        // Payload says 3 bytes but 5 were written before the newline.
        let err = reader(b"3 HELLO\n").read_frame().unwrap_err();
        assert!(matches!(err, FrameError::BadTerminator), "{err}");
    }

    #[test]
    fn non_utf8_payload_is_refused() {
        let mut bytes = b"2 ".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        let err = reader(&bytes).read_frame().unwrap_err();
        assert!(matches!(err, FrameError::NotUtf8), "{err}");
    }
}
